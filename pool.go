package xennuma

import (
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/guest"
	"repro/internal/workload"
	"repro/internal/xen"
)

// fiPoolReset is the fault site at the warm lease's reset step: an
// injected fault (error or panic) exercises the pool's degradation
// path — drop the machine, count it, cold-build — without a real
// divergence.
var fiPoolReset = faultinject.Register("pool.reset")

// poolKey is the run-constant shape of a machine: everything that
// determines the sizes of the allocations a cell builds — the scaled
// topology, the hypervisor configuration that varies per run (IOMMU),
// the VM count and each VM's memory size. Cells of the same shape reuse
// each other's machines; the key is purely a performance choice (reset
// machines are pristine, so a collision would still be correct — the
// recycled buckets would just be the wrong size).
type poolKey struct {
	scale   int
	xenplus bool
	vms     int
	mem0    int64
	mem1    int64
}

// machine is one poolable world: a hypervisor plus the per-VM guest
// backends and engine instances of its previous lease, kept so the next
// lease of the same shape rebuilds them in place.
type machine struct {
	hv    *xen.Hypervisor
	backs [2]*guest.Backend
	insts [2]*engine.Instance
}

// Pool is a deterministic warm-machine pool: Xen runs with Options.Pool
// set lease a pre-built machine of matching shape instead of
// cold-building one, reset it to its just-booted state, and return it
// when the run completes. Leases are exclusive, so a pool is safe at
// any worker count; results are bit-for-bit identical with or without
// one (pinned by TestPooledCellsMatchFreshSuites). Sweeps attach one
// pool per suite.
type Pool struct {
	mu     sync.Mutex
	free   map[poolKey][]*machine
	hits   uint64
	misses uint64
	drops  uint64
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{free: make(map[poolKey][]*machine)} }

// Stats reports how many leases found a warm machine (hits) and how
// many had to cold-build one (misses). A lease whose reset failed
// counts as a miss (the run cold-built after all) plus a ResetDrops.
func (p *Pool) Stats() (hits, misses uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// ResetDrops reports how many leased machines were dropped because
// their reset diverged or panicked — the pool's degraded-mode counter:
// each drop is one warm lease that fell back to a cold build instead
// of killing the process.
func (p *Pool) ResetDrops() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drops
}

// count bumps one of the pool's counters under its lock.
func (p *Pool) count(c *uint64) {
	p.mu.Lock()
	*c++
	p.mu.Unlock()
}

// lease pops a free machine of the given shape, or returns nil when the
// caller must cold-build one. Counters are the caller's job: a popped
// machine only becomes a hit once its reset succeeds.
func (p *Pool) lease(key poolKey) *machine {
	p.mu.Lock()
	defer p.mu.Unlock()
	l := p.free[key]
	if n := len(l); n > 0 {
		m := l[n-1]
		l[n-1] = nil
		p.free[key] = l[:n-1]
		return m
	}
	return nil
}

// release returns a machine to the free list after a completed run.
func (p *Pool) release(key poolKey, m *machine) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free[key] = append(p.free[key], m)
}

// pool returns the effective pool for the run: nil when none is
// attached or the NoPool reference path is selected.
func (o Options) pool() *Pool {
	if o.NoPool {
		return nil
	}
	return o.Pool
}

// acquire produces the run's machine: a reset warm one when the pool
// has a matching shape, a cold-built one otherwise. A leased machine
// whose reset fails — a replay divergence, a panic anywhere in the
// reset protocol, or an injected fault — is dropped (counted in
// ResetDrops) and the run degrades to a cold build; the divergence
// never reaches the caller, and results stay bit-identical because a
// cold-built machine is the reference the reset protocol reproduces.
func acquire(o Options, key poolKey) (*machine, error) {
	p := o.pool()
	if p != nil {
		if m := p.lease(key); m != nil {
			if err := resetMachine(m); err == nil {
				p.count(&p.hits)
				return m, nil
			}
			p.count(&p.drops)
		}
	}
	hv, err := newHypervisor(scaledTopo(o.Scale), o)
	if err != nil {
		return nil, err
	}
	if p != nil {
		p.count(&p.misses)
	}
	return &machine{hv: hv}, nil
}

// resetMachine returns a leased machine to its just-booted state,
// degrading panics from the reset protocol into errors so a corrupt
// machine costs the pool one drop, never the process.
func resetMachine(m *machine) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("pool: reset panicked: %v", p)
		}
	}()
	if err := fiPoolReset.Fire(); err != nil {
		return err
	}
	return m.hv.Reset()
}

// releaseMachine hands the machine back to the pool, if any. Machines
// of runs that failed mid-build are dropped instead: their state is
// neither pristine nor resettable-by-construction.
func releaseMachine(o Options, key poolKey, m *machine) {
	if p := o.pool(); p != nil {
		p.release(key, m)
	}
}

// runShape is the cached per-cell constant state derived from
// (scale, app, vms): the workload profile and the VM memory size.
// Sweeps rebuild the same handful of shapes thousands of times, so —
// like topoCache one level down — the derivation runs once per shape
// instead of once per cell.
type runShape struct {
	prof     workload.Profile
	memBytes int64
}

type shapeKey struct {
	scale int
	app   string
	vms   int
}

var shapeCache sync.Map // shapeKey -> runShape

// cellShape returns the cached profile and VM memory size for one cell.
// o must be normalized.
func cellShape(o Options, app string, vms int) (runShape, error) {
	key := shapeKey{scale: o.Scale, app: app, vms: vms}
	if s, ok := shapeCache.Load(key); ok {
		return s.(runShape), nil
	}
	prof, err := workload.Get(app)
	if err != nil {
		return runShape{}, err
	}
	shape := runShape{prof: prof, memBytes: vmMemBytes(scaledTopo(o.Scale), prof, o, vms)}
	s, _ := shapeCache.LoadOrStore(key, shape)
	return s.(runShape), nil
}
