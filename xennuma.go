// Package xennuma is the public facade of the reproduction of "An
// interface to implement NUMA policies in the Xen hypervisor" (Voron,
// Thomas, Quéma, Sens — EuroSys 2017).
//
// It wires the simulated AMD48 machine, the Xen-like hypervisor with the
// paper's two-hypercall NUMA-policy interface, the para-virtualized
// guest, the native-Linux baseline and the workload engine into a few
// high-level entry points:
//
//	res, err := xennuma.RunXen("cg.C", xennuma.MustPolicy("first-touch"), xennuma.Options{XenPlus: true})
//	base, _ := xennuma.RunXen("cg.C", xennuma.MustPolicy("round-1g"), xennuma.Options{XenPlus: true})
//	fmt.Printf("speedup: %.2fx\n", float64(base.Completion)/float64(res.Completion))
//
// Every run is deterministic for a given Options.Seed.
package xennuma

import (
	"fmt"
	"sync"

	"repro/internal/carrefour"
	"repro/internal/engine"
	"repro/internal/guest"
	"repro/internal/linux"
	"repro/internal/numa"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xen"
)

// Policy re-exports the policy configuration (static policy plus
// optional Carrefour).
type Policy = policy.Config

// Result re-exports the engine's per-run outcome.
type Result = engine.Result

// ParsePolicy parses any policy registered in internal/policy —
// "round-1g", "round-4k", "first-touch", "interleave", "bind:<node>",
// "least-loaded", "adaptive", … — optionally suffixed with "/carrefour"
// (e.g. "round-4k/carrefour") for policies Carrefour may stack on, with
// an optional heuristic variant ("/carrefour:migration",
// "/carrefour:replication", §7). Run `xnuma policies` for the full
// registry.
func ParsePolicy(s string) (Policy, error) { return policy.Parse(s) }

// carrefourMode maps a policy configuration's Carrefour variant to the
// engine's controller mode.
func carrefourMode(pol Policy) carrefour.Mode {
	switch pol.CarrefourVariant {
	case policy.CarrefourMigrationOnly:
		return carrefour.ModeMigrationOnly
	case policy.CarrefourReplicationOnly:
		return carrefour.ModeReplicationOnly
	default:
		return carrefour.ModeFull
	}
}

// MustPolicy is ParsePolicy that panics on error, for literals.
func MustPolicy(s string) Policy {
	cfg, err := ParsePolicy(s)
	if err != nil {
		panic(err)
	}
	return cfg
}

// Options tunes a run. The zero value gives the paper's single-VM
// setting on a 1/64-scale AMD48 under stock Xen (no passthrough, no MCS
// locks).
type Options struct {
	// Scale divides node memory banks and application footprints
	// (power of two; default 64). Scale 1 is the full-size machine.
	Scale int
	// Seed makes runs reproducible (default 1).
	Seed uint64
	// Threads overrides the thread/vCPU count (default: all 48 CPUs).
	Threads int
	// XenPlus enables the paper's improved baseline: IOMMU + PCI
	// passthrough for I/O and MCS spin locks for the pthread-blocking
	// applications (§5.3). Ignored by native runs.
	XenPlus bool
	// MCS forces the MCS-lock mitigation for pthread applications in
	// native runs (the paper's LinuxNUMA baseline uses it).
	MCS bool
	// Queue overrides the page-queue driver configuration (§4.2.4).
	Queue guest.QueueConfig
	// MaxTime bounds a run in virtual time (default 300 s).
	MaxTime sim.Time
	// TLB enables the address-translation cost model of the paper's §7
	// large-page extension; LargePages then maps the workload with
	// 2 MiB pages. Both default off (the paper's baseline).
	TLB        bool
	LargePages bool
	// Replication enables Carrefour's replication heuristic, which the
	// paper deliberately leaves out (§3.4); off by default.
	Replication bool
	// Pool, when non-nil, lends warm machines to Xen runs: the run
	// leases a pre-built machine of matching shape, resets it and
	// rebuilds only the seed/app/policy-dependent state, returning it on
	// completion. Results are bit-for-bit identical with or without a
	// pool. Sweeps attach one per suite.
	Pool *Pool
	// NoPool forces cold-built machines even when Pool is set — the
	// always-fresh reference path the pooled-vs-fresh equivalence tests
	// pin against, mirroring noBatch.
	NoPool bool
	// noBatch selects the engine's per-instance reference kernel, for
	// the batched-kernel equivalence tests. Unexported on purpose: it is
	// bit-for-bit identical to the default, just slower.
	noBatch bool
}

// topoCache shares one immutable AMD48 topology per scale: every sweep
// cell on the same scale then reuses one node/link graph and, further
// down, one engine cost model, instead of rebuilding them per run.
// Built topologies are never written after construction (the backends
// only read them), so sharing is safe across concurrent runs.
var topoCache sync.Map // int -> *numa.Topology

// scaledTopo returns the shared AMD48 topology for scale.
func scaledTopo(scale int) *numa.Topology {
	if t, ok := topoCache.Load(scale); ok {
		return t.(*numa.Topology)
	}
	t, _ := topoCache.LoadOrStore(scale, numa.AMD48Scaled(scale))
	return t.(*numa.Topology)
}

func (o Options) normalized() Options {
	if o.Scale == 0 {
		o.Scale = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Threads == 0 {
		o.Threads = 48
	}
	if o.Queue.Queues == 0 {
		o.Queue = guest.DefaultQueueConfig()
	}
	if o.MaxTime == 0 {
		o.MaxTime = 300 * sim.Second
	}
	return o
}

// RunXen runs one application alone in one virtual machine spanning the
// whole machine (the paper's single-VM setting, §5.4.1) under the given
// NUMA policy, and returns its completion time and placement statistics.
func RunXen(app string, pol Policy, o Options) (Result, error) {
	o = o.normalized()
	shape, err := cellShape(o, app, 1)
	if err != nil {
		return Result{}, err
	}
	topo := scaledTopo(o.Scale)
	key := poolKey{scale: o.Scale, xenplus: o.XenPlus, vms: 1, mem0: shape.memBytes}
	m, err := acquire(o, key)
	if err != nil {
		return Result{}, err
	}
	inst, err := buildXenInstance(m, 0, shape.prof, pol, o, nil, shape.memBytes)
	if err != nil {
		return Result{}, err
	}
	cfg := engineConfig(topo, o)
	res, err := engine.Run(cfg, inst)
	if err != nil {
		return Result{}, err
	}
	releaseMachine(o, key, m)
	return res[0], nil
}

// engineConfig builds the run configuration from the options.
func engineConfig(topo *numa.Topology, o Options) engine.Config {
	cfg := engine.DefaultConfig(topo, o.Scale)
	cfg.Seed = o.Seed
	cfg.MaxTime = o.MaxTime
	cfg.Carrefour.EnableReplication = o.Replication
	cfg.NoBatch = o.noBatch
	if o.TLB {
		tlb := numa.DefaultTLB()
		cfg.TLB = &tlb
	}
	return cfg
}

// RunLinux runs one application natively under a Linux NUMA policy
// (first-touch or round-4K, optionally with Carrefour).
func RunLinux(app string, pol Policy, o Options) (Result, error) {
	o = o.normalized()
	prof, err := workload.Get(app)
	if err != nil {
		return Result{}, err
	}
	topo := scaledTopo(o.Scale)
	b, err := linux.New(topo, pol)
	if err != nil {
		return Result{}, err
	}
	inst := &engine.Instance{
		Prof:          prof,
		Backend:       b,
		NThreads:      o.Threads,
		Carrefour:     pol.Carrefour,
		CarrefourMode: carrefourMode(pol),
		MCS:           o.MCS && prof.UsesPthreadSync,
		LargePages:    o.LargePages,
	}
	cfg := engineConfig(topo, o)
	res, err := engine.Run(cfg, inst)
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// PairMode selects how two virtual machines share the machine.
type PairMode int

const (
	// Colocated gives each VM half the nodes and 24 vCPUs (Figure 8).
	Colocated PairMode = iota
	// Consolidated gives each VM all 48 vCPUs; every physical CPU runs
	// two vCPUs (Figure 9).
	Consolidated
)

// RunXenPair runs two applications in two virtual machines (the
// consolidated-workload settings of §5.4.2) and returns one result per
// VM. For the colocated mode the paper averages two runs with the node
// halves swapped; pass swap=true for the second run.
func RunXenPair(app1 string, pol1 Policy, app2 string, pol2 Policy, mode PairMode, swap bool, o Options) (Result, Result, error) {
	o = o.normalized()
	// Memory sizing counts VMs per memory partition: colocated VMs split
	// the machine (each sized as one of two), consolidated VMs each span
	// all of it (each sized as if alone), matching the paper's setups.
	memVMs := 1
	if mode == Colocated {
		memVMs = 2
	}
	shape1, err := cellShape(o, app1, memVMs)
	if err != nil {
		return Result{}, Result{}, err
	}
	shape2, err := cellShape(o, app2, memVMs)
	if err != nil {
		return Result{}, Result{}, err
	}
	topo := scaledTopo(o.Scale)
	key := poolKey{scale: o.Scale, xenplus: o.XenPlus, vms: 2, mem0: shape1.memBytes, mem1: shape2.memBytes}
	m, err := acquire(o, key)
	if err != nil {
		return Result{}, Result{}, err
	}
	var pins1, pins2 []numa.CPUID
	threads := o.Threads
	switch mode {
	case Colocated:
		threads = 24
		half := topo.NumNodes() / 2
		for n, node := range topo.Nodes {
			for _, c := range node.CPUs {
				if n < half {
					pins1 = append(pins1, c)
				} else {
					pins2 = append(pins2, c)
				}
			}
		}
		if swap {
			pins1, pins2 = pins2, pins1
		}
	case Consolidated:
		for c := 0; c < topo.NumCPUs(); c++ {
			pins1 = append(pins1, numa.CPUID(c))
			pins2 = append(pins2, numa.CPUID(c))
		}
	default:
		return Result{}, Result{}, fmt.Errorf("xennuma: unknown pair mode %d", mode)
	}
	o1, o2 := o, o
	o1.Threads, o2.Threads = threads, threads
	inst1, err := buildXenInstance(m, 0, shape1.prof, pol1, o1, pins1, shape1.memBytes)
	if err != nil {
		return Result{}, Result{}, err
	}
	inst2, err := buildXenInstance(m, 1, shape2.prof, pol2, o2, pins2, shape2.memBytes)
	if err != nil {
		return Result{}, Result{}, err
	}
	cfg := engineConfig(topo, o)
	res, err := engine.Run(cfg, inst1, inst2)
	if err != nil {
		return Result{}, Result{}, err
	}
	releaseMachine(o, key, m)
	return res[0], res[1], nil
}

func newHypervisor(topo *numa.Topology, o Options) (*xen.Hypervisor, error) {
	cfg := xen.ScaledConfig(o.Scale)
	cfg.IOMMU = o.XenPlus
	dom0Mem := int64(2<<30) / int64(o.Scale)
	if dom0Mem < 8<<20 {
		dom0Mem = 8 << 20
	}
	return xen.New(topo, sim.NewEngine(), cfg, dom0Mem)
}

// vmMemBytes sizes a VM: the scaled footprint plus headroom, clamped to
// what the machine can still give out.
func vmMemBytes(topo *numa.Topology, prof workload.Profile, o Options, vms int) int64 {
	foot := int64(prof.FootprintMB * (1 << 20) / float64(o.Scale))
	// Footprint with headroom, plus the guest kernel's low region (one
	// round-1G unit) and a matching tail.
	hugeBytes := int64(2<<30) / int64(o.Scale)
	memBytes := foot + foot/3 + hugeBytes
	limit := (topo.TotalMemory() - int64(2<<30)/int64(o.Scale)) / int64(vms)
	limit = limit * 9 / 10
	if memBytes > limit {
		memBytes = limit
	}
	return memBytes
}

// buildXenInstance creates the VM for one instance slot of m's machine
// and (re)builds its guest backend and engine instance. On a warm lease
// the slot's previous backend and instance are recycled in place; the
// result is bit-for-bit identical to a cold build either way.
func buildXenInstance(m *machine, slot int, prof workload.Profile, pol Policy, o Options, pins []numa.CPUID, memBytes int64) (*engine.Instance, error) {
	boot, err := policy.BootKind(pol.Static)
	if err != nil {
		return nil, err
	}
	topo := m.hv.Topo
	if len(pins) == 0 {
		for c := 0; c < o.Threads && c < topo.NumCPUs(); c++ {
			pins = append(pins, numa.CPUID(c))
		}
	}
	spec := xen.DomainSpec{
		Name:     prof.Name,
		VCPUs:    len(pins),
		MemBytes: memBytes,
		PinCPUs:  pins,
		Boot:     boot,
	}
	dom, err := m.hv.CreateDomain(spec)
	if err != nil {
		return nil, err
	}
	b, _, err := guest.RebuildBackend(m.backs[slot], m.hv, dom, o.Queue, pol)
	if err != nil {
		return nil, err
	}
	m.backs[slot] = b
	in := m.insts[slot]
	if in == nil {
		in = &engine.Instance{}
		m.insts[slot] = in
	} else {
		in.Recycle()
	}
	in.Prof = prof
	in.Backend = b
	in.NThreads = o.Threads
	in.Carrefour = pol.Carrefour
	in.CarrefourMode = carrefourMode(pol)
	in.MCS = o.XenPlus && prof.UsesPthreadSync
	in.LargePages = o.LargePages
	return in, nil
}

// Apps returns the 29 application names of the paper's evaluation.
func Apps() []string { return workload.Names() }
