package xennuma

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the current results")

// goldenResult is the serialized view of one engine.Result, flattened so
// the fixture captures every externally observable field bit-for-bit
// (floats survive a JSON round trip exactly: Go emits the shortest
// representation that round-trips).
type goldenResult struct {
	App              string
	Backend          string
	Completion       int64
	TimedOut         bool
	InitTime         int64
	Imbalance        float64
	InterconnectLoad float64
	Locality         float64
	Migrated         uint64
	TotalAccesses    float64
	RemoteAccesses   float64
}

func toGolden(r Result) goldenResult {
	return goldenResult{
		App:              r.App,
		Backend:          r.Backend,
		Completion:       int64(r.Completion),
		TimedOut:         r.TimedOut,
		InitTime:         int64(r.InitTime),
		Imbalance:        r.Imbalance,
		InterconnectLoad: r.InterconnectLoad,
		Locality:         r.Locality,
		Migrated:         r.Migrated,
		TotalAccesses:    r.Stats.TotalAccesses,
		RemoteAccesses:   r.Stats.RemoteAccesses,
	}
}

// TestGoldenEngineResults locks the engine's observable behaviour to a
// committed fixture: a multi-instance Xen pair and a native run, all
// with Carrefour on and migrating (facesim is master-heavy, so both
// heuristics fire), misleading bursts firing (psearchy and dc.B have
// Burstiness > 0), disk I/O demand, and the TLB model enabled — every
// stream the epoch loop emits. Any change to the epoch loop that is
// meant to be a pure refactor must leave this fixture untouched; an
// intentional behaviour change must regenerate it with
// `go test -run TestGoldenEngineResults -update .` and justify the diff.
func TestGoldenEngineResults(t *testing.T) {
	o := Options{Scale: 64, Seed: 7, XenPlus: true, TLB: true, LargePages: true}
	a, b, err := RunXenPair("facesim", MustPolicy("first-touch/carrefour"),
		"psearchy", MustPolicy("round-4k/carrefour"), Consolidated, false, o)
	if err != nil {
		t.Fatal(err)
	}
	native, err := RunLinux("dc.B", MustPolicy("first-touch/carrefour"),
		Options{Scale: 64, Seed: 7, TLB: true})
	if err != nil {
		t.Fatal(err)
	}
	got := []goldenResult{toGolden(a), toGolden(b), toGolden(native)}

	path := filepath.Join("testdata", "golden_engine.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with -update): %v", err)
	}
	var want []goldenResult
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("result count = %d, golden has %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("result %d (%s on %s) diverged from golden:\n got  %+v\n want %+v",
				i, got[i].App, got[i].Backend, got[i], want[i])
		}
	}
}
