package xennuma

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with the current results")

// goldenResult is the serialized view of one engine.Result, flattened so
// the fixture captures every externally observable field bit-for-bit
// (floats survive a JSON round trip exactly: Go emits the shortest
// representation that round-trips).
type goldenResult struct {
	App              string
	Backend          string
	Completion       int64
	TimedOut         bool
	InitTime         int64
	Imbalance        float64
	InterconnectLoad float64
	Locality         float64
	Migrated         uint64
	TotalAccesses    float64
	RemoteAccesses   float64
}

func toGolden(r Result) goldenResult {
	return goldenResult{
		App:              r.App,
		Backend:          r.Backend,
		Completion:       int64(r.Completion),
		TimedOut:         r.TimedOut,
		InitTime:         int64(r.InitTime),
		Imbalance:        r.Imbalance,
		InterconnectLoad: r.InterconnectLoad,
		Locality:         r.Locality,
		Migrated:         r.Migrated,
		TotalAccesses:    r.Stats.TotalAccesses,
		RemoteAccesses:   r.Stats.RemoteAccesses,
	}
}

// TestGoldenEngineResults locks the engine's observable behaviour to a
// committed fixture: a multi-instance Xen pair and a native run, all
// with Carrefour on and migrating (facesim is master-heavy, so both
// heuristics fire), misleading bursts firing (psearchy and dc.B have
// Burstiness > 0), disk I/O demand, and the TLB model enabled — every
// stream the epoch loop emits. Any change to the epoch loop that is
// meant to be a pure refactor must leave this fixture untouched; an
// intentional behaviour change must regenerate it with
// `go test -run TestGoldenEngineResults -update .` and justify the diff.
func TestGoldenEngineResults(t *testing.T) {
	o := Options{Scale: 64, Seed: 7, XenPlus: true, TLB: true, LargePages: true}
	a, b, err := RunXenPair("facesim", MustPolicy("first-touch/carrefour"),
		"psearchy", MustPolicy("round-4k/carrefour"), Consolidated, false, o)
	if err != nil {
		t.Fatal(err)
	}
	native, err := RunLinux("dc.B", MustPolicy("first-touch/carrefour"),
		Options{Scale: 64, Seed: 7, TLB: true})
	if err != nil {
		t.Fatal(err)
	}
	got := []goldenResult{toGolden(a), toGolden(b), toGolden(native)}

	path := filepath.Join("testdata", "golden_engine.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture (regenerate with -update): %v", err)
	}
	var want []goldenResult
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("result count = %d, golden has %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("result %d (%s on %s) diverged from golden:\n got  %+v\n want %+v",
				i, got[i].App, got[i].Backend, got[i], want[i])
		}
	}
}

// TestGoldenDriftVsPreRowFold bounds the fixture regeneration that came
// with folding the stream table into per-thread node rows (the folded
// accumulation order differs from the per-stream walk, so float sums
// drift at the last bit). The pre-fold fixture is frozen as
// golden_engine_prerowfold.json; every numeric field of the live fixture
// must stay within a 1e-6 relative drift of it, proving the regeneration
// absorbed rounding noise and not a behaviour change (integer fields —
// completion times, migration counts — must not move at all by this
// bound, since their values are ≫ 1e6).
func TestGoldenDriftVsPreRowFold(t *testing.T) {
	load := func(name string) []goldenResult {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		var out []goldenResult
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	checkGoldenDrift(t, load("golden_engine.json"), load("golden_engine_prerowfold.json"))
}

// TestGoldenDriftVsPreDedup bounds the regeneration that came with the
// row-dedup emission: charging one summed row per identical-row thread
// group reorders the float accumulation ((Σ units)·share instead of
// Σ(units·share)), so sums drift at the last bit. The pre-dedup fixture
// is frozen as golden_engine_prededup.json; the live fixture must stay
// within 1e-6 relative drift of it.
func TestGoldenDriftVsPreDedup(t *testing.T) {
	load := func(name string) []goldenResult {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		var out []goldenResult
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	checkGoldenDrift(t, load("golden_engine.json"), load("golden_engine_prededup.json"))
}

// checkGoldenDrift asserts every numeric field of cur stays within a
// 1e-6 relative drift of the frozen snapshot old, proving a fixture
// regeneration absorbed rounding noise and not a behaviour change
// (integer fields — completion times, migration counts — must not move
// at all by this bound, since their values are ≫ 1e6).
func checkGoldenDrift(t *testing.T, cur, old []goldenResult) {
	t.Helper()
	if len(cur) != len(old) {
		t.Fatalf("fixture has %d results, frozen snapshot has %d", len(cur), len(old))
	}
	const tol = 1e-6
	check := func(i int, field string, a, b float64) {
		t.Helper()
		if a == b {
			return
		}
		denom := math.Max(math.Abs(a), math.Abs(b))
		if drift := math.Abs(a-b) / denom; drift >= tol {
			t.Errorf("result %d: %s drifted by %.3g (%v vs snapshot %v), tolerance %g",
				i, field, drift, a, b, tol)
		}
	}
	for i := range cur {
		c, o := cur[i], old[i]
		if c.App != o.App || c.Backend != o.Backend || c.TimedOut != o.TimedOut {
			t.Fatalf("result %d: identity changed: %+v vs %+v", i, c, o)
		}
		check(i, "Completion", float64(c.Completion), float64(o.Completion))
		check(i, "InitTime", float64(c.InitTime), float64(o.InitTime))
		check(i, "Imbalance", c.Imbalance, o.Imbalance)
		check(i, "InterconnectLoad", c.InterconnectLoad, o.InterconnectLoad)
		check(i, "Locality", c.Locality, o.Locality)
		check(i, "Migrated", float64(c.Migrated), float64(o.Migrated))
		check(i, "TotalAccesses", c.TotalAccesses, o.TotalAccesses)
		check(i, "RemoteAccesses", c.RemoteAccesses, o.RemoteAccesses)
	}
}
