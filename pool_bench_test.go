package xennuma

import "testing"

// BenchmarkCellConstruction isolates the per-cell machine cost from the
// simulation itself: one op is acquire (hypervisor build or warm-pool
// lease + reset), VM creation with guest backend and engine instance,
// and release. The fresh variant is the pre-pool cost every cell used
// to pay; the pooled variant is the steady-state cost of a sweep whose
// cells reuse one machine shape. scripts/bench_suite.sh records both in
// BENCH_suite.json — the gap between them is the warm pool's win.
func BenchmarkCellConstruction(b *testing.B) {
	pol, err := ParsePolicy("first-touch")
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, o Options) {
		o = o.normalized()
		shape, err := cellShape(o, "swaptions", 1)
		if err != nil {
			b.Fatal(err)
		}
		key := poolKey{scale: o.Scale, xenplus: o.XenPlus, vms: 1, mem0: shape.memBytes}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := acquire(o, key)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := buildXenInstance(m, 0, shape.prof, pol, o, nil, shape.memBytes); err != nil {
				b.Fatal(err)
			}
			releaseMachine(o, key, m)
		}
	}
	b.Run("fresh", func(b *testing.B) {
		run(b, Options{Scale: 256, XenPlus: true, NoPool: true})
	})
	b.Run("pooled", func(b *testing.B) {
		run(b, Options{Scale: 256, XenPlus: true, Pool: NewPool()})
	})
}
