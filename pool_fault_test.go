package xennuma

import (
	"reflect"
	"testing"

	"repro/internal/faultinject"
)

// installPlan arms a fault plan for one test and disarms it on cleanup.
func installPlan(t *testing.T, spec string) *faultinject.Plan {
	t.Helper()
	p, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Install(p)
	t.Cleanup(func() { faultinject.Install(nil) })
	return p
}

// TestPoolResetFaultDegrades pins the warm pool's core robustness
// invariant: a lease whose reset fails — via the pool.reset site
// (error and panic) and via the xen.replay site inside Reset itself —
// is dropped and cold-built, the result stays bit-identical to the
// fault-free run, ResetDrops counts exactly the injected faults, and
// the process never dies.
func TestPoolResetFaultDegrades(t *testing.T) {
	const app, pol = "swaptions", "first-touch"
	o := Options{Scale: 256}
	p := MustPolicy(pol)
	ref, err := RunXen(app, p, o) // no pool: the reference result
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct{ name, spec string }{
		{"reset error", "pool.reset:hit=1:action=error"},
		{"reset panic", "pool.reset:hit=1:action=panic"},
		{"replay error", "xen.replay:hit=1:action=error"},
		{"replay panic", "xen.replay:hit=1:action=panic"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			po := o
			po.Pool = NewPool()
			// First run cold-builds (empty pool: no reset, no fault hit)
			// and releases the machine warm.
			first, err := RunXen(app, p, po)
			if err != nil {
				t.Fatalf("cold run: %v", err)
			}
			plan := installPlan(t, tc.spec)
			// Second run leases warm; the injected fault kills the reset
			// and the run must degrade to a cold build with identical
			// results.
			second, err := RunXen(app, p, po)
			if err != nil {
				t.Fatalf("faulted run: %v", err)
			}
			if !reflect.DeepEqual(first, ref) || !reflect.DeepEqual(second, ref) {
				t.Fatal("pooled results diverged from the fault-free reference")
			}
			if got := plan.TotalFired(); got != 1 {
				t.Fatalf("fired %d faults, want 1", got)
			}
			if drops := po.Pool.ResetDrops(); drops != 1 {
				t.Fatalf("ResetDrops = %d, want 1", drops)
			}
			hits, misses := po.Pool.Stats()
			if hits != 0 || misses != 2 {
				t.Fatalf("hits/misses = %d/%d, want 0/2 (both runs cold-built)", hits, misses)
			}
			// With the fault exhausted, the next lease resets and serves
			// warm again: degradation is per-lease, not sticky.
			faultinject.Install(nil)
			third, err := RunXen(app, p, po)
			if err != nil {
				t.Fatalf("recovered run: %v", err)
			}
			if !reflect.DeepEqual(third, ref) {
				t.Fatal("post-recovery result diverged")
			}
			if hits, _ := po.Pool.Stats(); hits != 1 {
				t.Fatalf("post-recovery hits = %d, want 1 (warm lease resumed)", hits)
			}
		})
	}
}
