// Command xnuma-vet runs the repo's invariant analyzers (maporder,
// detrand, noalloc, aliasretain — see internal/analysis). It works
// standalone over package patterns:
//
//	go run ./cmd/xnuma-vet ./...
//	go run ./cmd/xnuma-vet -suppressions ./...
//
// and as a vettool, which is how CI runs it (scripts/vet.sh):
//
//	go build -o bin/xnuma-vet ./cmd/xnuma-vet
//	go vet -vettool=$(pwd)/bin/xnuma-vet ./...
package main

import "repro/internal/analysis"

func main() {
	analysis.VetMain()
}
