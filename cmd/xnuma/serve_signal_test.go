package main

import (
	"encoding/json"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// lockedBuilder is a goroutine-safe strings.Builder: serve writes
// responses from concurrent handlers while the test polls.
type lockedBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuilder) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuilder) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestServeSIGTERMDrains sends a real SIGTERM to a running serve
// session: the already-answered request's bytes are intact, the
// service drains instead of dying, and the process exits 0 with its
// summary — the contract a supervisor (systemd, a container runtime)
// relies on.
func TestServeSIGTERMDrains(t *testing.T) {
	// Pre-arm our own handler so the signal can never kill the test
	// binary even if it lands before runServe installs its
	// NotifyContext.
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	pr, pw := io.Pipe()
	var out lockedBuilder
	var errb lockedBuilder
	done := make(chan int, 1)
	go func() {
		done <- runIO([]string{"-scale", "256", "serve"}, pr, &out, &errb)
	}()

	if _, err := io.WriteString(pw, `{"id":"q","op":"stats"}`+"\n"); err != nil {
		t.Fatal(err)
	}
	for !strings.Contains(out.String(), `"id":"q"`) {
		time.Sleep(time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("serve exit %d after SIGTERM, want 0; stderr:\n%s", code, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain on SIGTERM")
	}
	pw.Close()

	var resp struct {
		ID string `json:"id"`
		OK bool   `json:"ok"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(out.String())), &resp); err != nil {
		t.Fatalf("bad response: %v\n%s", err, out.String())
	}
	if !resp.OK || resp.ID != "q" {
		t.Fatalf("response = %+v", resp)
	}
	if !strings.Contains(errb.String(), "requests") {
		t.Errorf("no summary on stderr after drain: %q", errb.String())
	}
}

// TestServeFaultsFlag: -faults arms a plan for the session (visible in
// the health op and on stderr), the injected degradation is contained,
// and a bad plan is a usage error.
func TestServeFaultsFlag(t *testing.T) {
	stdin := `{"id":"w","op":"sweep","app":"swaptions"}` + "\n" + `{"id":"h","op":"health"}` + "\n"
	byID, errb := serveIO(t, stdin, []string{"-scale", "256", "-parallel", "2"},
		[]string{"-faults", "exp.cell:hit=1:action=error"})
	if !strings.Contains(errb, "fault plan armed") {
		t.Errorf("no arming notice on stderr: %q", errb)
	}
	if _, ok := byID["w"]; !ok {
		t.Error("faulted sweep got no ok response (degradation not contained)")
	}
	var payload struct {
		Health struct {
			CellErrors int64  `json:"cell_errors"`
			FaultPlan  string `json:"fault_plan"`
		} `json:"health"`
	}
	if err := json.Unmarshal(byID["h"], &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Health.FaultPlan != "exp.cell:hit=1:action=error" {
		t.Errorf("health fault_plan = %q", payload.Health.FaultPlan)
	}

	var o, e strings.Builder
	if code := runIO([]string{"serve", "-faults", "bogus:hit=1:action=error"},
		strings.NewReader(""), &o, &e); code != 2 {
		t.Errorf("bad -faults plan: exit %d, want 2", code)
	}
}
