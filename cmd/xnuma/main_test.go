package main

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestList(t *testing.T) {
	code, out, _ := runCLI(t, "list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"fig8", "hcall", "cg.C", "streamcluster"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestPolicies(t *testing.T) {
	code, out, _ := runCLI(t, "policies")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"round-1G", "first-touch", "interleave", "bind:<arg>", "least-loaded", "R4K", "lazy", "eager"} {
		if !strings.Contains(out, want) {
			t.Errorf("policies output missing %q:\n%s", want, out)
		}
	}
}

func TestRunNewPolicy(t *testing.T) {
	code, out, errb := runCLI(t, "-scale", "256", "run", "swaptions", "least-loaded")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "backend:      xen/least-loaded") {
		t.Errorf("run output missing backend line:\n%s", out)
	}
}

func TestNoArgsUsage(t *testing.T) {
	code, _, errb := runCLI(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb, "usage") {
		t.Errorf("usage not printed: %q", errb)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCLI(t, "-nosuchflag", "list"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, errb := runCLI(t, "fig99")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb, "unknown experiment") {
		t.Errorf("stderr: %q", errb)
	}
}

func TestCheapExperiment(t *testing.T) {
	code, out, _ := runCLI(t, "table3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "== table3:") {
		t.Errorf("missing table header: %q", out)
	}
}

func TestMarkdownRender(t *testing.T) {
	code, out, _ := runCLI(t, "-md", "table2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "### table2:") {
		t.Errorf("missing markdown header: %q", out)
	}
}

func TestTopo(t *testing.T) {
	code, out, _ := runCLI(t, "-scale", "256", "topo")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "hop distance matrix") {
		t.Errorf("missing topology dump: %q", out)
	}
}

// TestRunTiny drives the full CLI path through flag parsing, suite
// construction and one real (small-scale) simulation.
func TestRunTiny(t *testing.T) {
	code, out, errb := runCLI(t, "-scale", "256", "-parallel", "2", "run", "swaptions", "round-4k")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	for _, want := range []string{"app:          swaptions", "completion:", "locality:"} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUsage(t *testing.T) {
	if code, _, _ := runCLI(t, "run", "swaptions"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRunUnknownApp(t *testing.T) {
	code, _, errb := runCLI(t, "run", "nosuch", "round-4k")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb, "unknown application") {
		t.Errorf("stderr: %q", errb)
	}
}

func TestRunBadPolicy(t *testing.T) {
	if code, _, _ := runCLI(t, "run", "swaptions", "nosuch-policy"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestSweepTiny(t *testing.T) {
	code, out, errb := runCLI(t, "-scale", "256", "sweep", "swaptions")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	// One row per registered policy, including the new ones.
	for _, want := range []string{"== sweep:", "round-1g", "bind:0", "least-loaded", "adaptive", "best:"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestSweepProgress(t *testing.T) {
	code, out, errb := runCLI(t, "-scale", "256", "-progress", "sweep", "swaptions")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "== sweep:") {
		t.Errorf("sweep output missing table:\n%s", out)
	}
	// The live reporter's final summary: run counts, throughput and the
	// warm-machine pool's hit/miss split on stderr (interim ticks only
	// appear when the sweep outlives the 2-second sampling interval).
	if !strings.Contains(errb, "new runs") || !strings.Contains(errb, "cells/sec") {
		t.Errorf("progress summary missing from stderr: %q", errb)
	}
	if !strings.Contains(errb, "hits") || !strings.Contains(errb, "misses") {
		t.Errorf("pool stats missing from progress summary: %q", errb)
	}
	// A single-app policy sweep repeats one machine shape, so the pool
	// must have served at least one warm lease.
	if !regexp.MustCompile(`pool [1-9]\d* hits`).MatchString(errb) {
		t.Errorf("pool reported no hits on a repeated-shape sweep: %q", errb)
	}
}

func TestSweepBindTiny(t *testing.T) {
	code, out, errb := runCLI(t, "-scale", "256", "sweep", "-bind", "swaptions")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	for _, want := range []string{"== sweep-bind:", "bind:7", "sensitivity:"} {
		if !strings.Contains(out, want) {
			t.Errorf("bind sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestSweepSeedsTiny(t *testing.T) {
	code, out, errb := runCLI(t, "-scale", "256", "sweep", "-seeds", "2", "swaptions")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	for _, want := range []string{"== sweep-seeds:", "wins/2", "modal best"} {
		if !strings.Contains(out, want) {
			t.Errorf("seed sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestSweepAppsTiny(t *testing.T) {
	code, out, errb := runCLI(t, "-scale", "256", "sweep", "-apps", "swaptions,ep.D")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	for _, want := range []string{"Policy sweep for swaptions", "Policy sweep for ep.D"} {
		if !strings.Contains(out, want) {
			t.Errorf("multi-app sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestSweepAppsSeedsTiny(t *testing.T) {
	code, out, errb := runCLI(t, "-scale", "256", "sweep", "-apps", "swaptions,ep.D", "-seeds", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	for _, want := range []string{"stability for swaptions", "stability for ep.D", "wins/2"} {
		if !strings.Contains(out, want) {
			t.Errorf("multi-app seed sweep output missing %q:\n%s", want, out)
		}
	}
}

func TestSweepUsage(t *testing.T) {
	if code, _, _ := runCLI(t, "sweep"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "sweep", "nosuch-app"); code != 2 {
		t.Fatalf("unknown app: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "sweep", "-bind", "-seeds", "3", "swaptions"); code != 2 {
		t.Fatalf("-bind with -seeds: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "sweep", "-apps", "swaptions", "ep.D"); code != 2 {
		t.Fatalf("-apps with positional app: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "sweep", "-bind", "-apps", "swaptions,ep.D"); code != 2 {
		t.Fatalf("-bind with -apps: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "sweep", "-apps", "swaptions,nosuch-app"); code != 2 {
		t.Fatalf("-apps with unknown app: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "sweep", "-apps", ","); code != 2 {
		t.Fatalf("-apps with empty list: exit %d, want 2", code)
	}
}

// TestProfileFlags: -cpuprofile/-memprofile must produce non-empty
// pprof files around a real (tiny) run.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, heap := dir+"/cpu.pprof", dir+"/heap.pprof"
	code, _, errb := runCLI(t, "-scale", "256",
		"-cpuprofile", cpu, "-memprofile", heap, "run", "swaptions", "round-4k")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	for _, path := range []string{cpu, heap} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestCPUProfileBadPath(t *testing.T) {
	if code, _, _ := runCLI(t, "-cpuprofile", t.TempDir()+"/no/such/dir/p", "table3"); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestAdviseTiny(t *testing.T) {
	code, out, errb := runCLI(t, "-scale", "256", "advise", "swaptions")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	for _, want := range []string{"== advise:", "swaptions", "advice gap"} {
		if !strings.Contains(out, want) {
			t.Errorf("advise output missing %q:\n%s", want, out)
		}
	}
}

func TestAdviseUnknownApp(t *testing.T) {
	if code, _, _ := runCLI(t, "advise", "nosuch-app"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
