package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// serveIO runs `xnuma [global] serve [serveArgs]` with stdin content and
// returns the raw response lines keyed by id plus the stderr text. Every
// response must be ok; protocol-level failures fail the test.
func serveIO(t *testing.T, stdin string, global, serveArgs []string) (map[string]json.RawMessage, string) {
	t.Helper()
	var out, errb strings.Builder
	argv := append(append([]string{}, global...), "serve")
	argv = append(argv, serveArgs...)
	code := runIO(argv, strings.NewReader(stdin), &out, &errb)
	if code != 0 {
		t.Fatalf("serve exit %d, stderr:\n%s", code, errb.String())
	}
	byID := map[string]json.RawMessage{}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var envelope struct {
			ID     string          `json:"id"`
			OK     bool            `json:"ok"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal([]byte(line), &envelope); err != nil {
			t.Fatalf("bad response line %q: %v", line, err)
		}
		if !envelope.OK {
			t.Fatalf("request %q failed: %s", envelope.ID, line)
		}
		byID[envelope.ID] = envelope.Result
	}
	return byID, errb.String()
}

// TestServeSmoke: the serve subcommand answers requests over
// stdin/stdout and drains cleanly on EOF with a summary on stderr.
func TestServeSmoke(t *testing.T) {
	stdin := `{"id":"p","op":"policies"}` + "\n" + `{"id":"s","op":"stats"}` + "\n"
	byID, errb := serveIO(t, stdin, []string{"-scale", "256"}, nil)
	if _, ok := byID["p"]; !ok {
		t.Error("no policies response")
	}
	if _, ok := byID["s"]; !ok {
		t.Error("no stats response")
	}
	if !strings.Contains(errb, "requests") {
		t.Errorf("no summary on stderr: %q", errb)
	}
}

// TestServeUsageErrors: bad serve flags and stray arguments are usage
// errors, consistent with the other subcommands.
func TestServeUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"serve", "extra"},
		{"serve", "-nope"},
	} {
		var out, errb strings.Builder
		if code := runIO(args, strings.NewReader(""), &out, &errb); code != 2 {
			t.Errorf("%v: exit %d, want 2", args, code)
		}
	}
}

// TestServedSweepMatchesCLI pins the service path to the batch path:
// the concatenated table texts of a served sweep response must be
// byte-identical to what the one-shot `xnuma sweep` CLI prints for the
// same app, seed, scale and worker count — the resident suite cannot
// drift from the throwaway one.
func TestServedSweepMatchesCLI(t *testing.T) {
	global := []string{"-scale", "256", "-seed", "3", "-parallel", "2"}

	var cliOut, cliErr strings.Builder
	if code := run(append(global, "sweep", "swaptions"), &cliOut, &cliErr); code != 0 {
		t.Fatalf("cli sweep exit %d: %s", code, cliErr.String())
	}

	stdin := `{"id":"w","op":"sweep","app":"swaptions"}` + "\n"
	byID, _ := serveIO(t, stdin, global, nil)
	var result struct {
		Tables []struct {
			Text string `json:"text"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(byID["w"], &result); err != nil {
		t.Fatal(err)
	}
	var served strings.Builder
	for _, tb := range result.Tables {
		served.WriteString(tb.Text)
		served.WriteString("\n")
	}
	if served.String() != cliOut.String() {
		t.Fatalf("served sweep drifted from the CLI:\n--- served ---\n%s\n--- cli ---\n%s",
			served.String(), cliOut.String())
	}
}

// TestServeCachePersistsAcrossRuns: with -cache-dir the first run saves
// its cells on exit and the second run starts warm from them.
func TestServeCachePersistsAcrossRuns(t *testing.T) {
	dir := t.TempDir()
	global := []string{"-scale", "256"}
	serveArgs := []string{"-cache-dir", dir}
	stdin := `{"id":"w","op":"sweep","app":"swaptions"}` + "\n"

	_, err1 := serveIO(t, stdin, global, serveArgs)
	if !strings.Contains(err1, "cache saved") {
		t.Fatalf("first run did not save cache: %q", err1)
	}
	_, err2 := serveIO(t, stdin, global, serveArgs)
	if !strings.Contains(err2, "warm start") {
		t.Fatalf("second run did not start warm: %q", err2)
	}
}
