// Command xnuma runs the paper's experiments on the simulated stack and
// prints the regenerated tables and figures.
//
// Usage:
//
//	xnuma list                 # list experiment ids and applications
//	xnuma all                  # run every experiment (shares a result cache)
//	xnuma fig7 table4          # run specific experiments
//	xnuma run cg.C first-touch # one single-VM run with details
//	xnuma topo                 # dump the machine topology
//
// Flags:
//
//	-scale N   machine/footprint scale divisor (default 64)
//	-seed N    simulation seed (default 1)
package main

import (
	"flag"
	"fmt"
	"os"

	xennuma "repro"
	"repro/internal/exp"
	"repro/internal/numa"
)

func main() {
	scale := flag.Int("scale", 64, "machine and footprint scale divisor (power of two)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	markdown := flag.Bool("md", false, "render tables as Markdown instead of ASCII")
	flag.Parse()
	render := func(t *exp.Table) string {
		if *markdown {
			return t.RenderMarkdown()
		}
		return t.Render()
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	s := exp.NewSuite(*scale)
	s.Opt.Seed = *seed
	switch args[0] {
	case "list":
		fmt.Println("experiments:")
		for _, id := range exp.IDs() {
			fmt.Println("  " + id)
		}
		fmt.Println("applications:")
		for _, a := range xennuma.Apps() {
			fmt.Println("  " + a)
		}
	case "all":
		for _, t := range exp.AllExperiments(s) {
			fmt.Println(render(t))
		}
	case "topo":
		dumpTopology(*scale)
	case "run":
		if len(args) != 3 {
			fmt.Fprintln(os.Stderr, "usage: xnuma run <app> <policy>")
			os.Exit(2)
		}
		runOne(s, args[1], args[2])
	default:
		for _, id := range args {
			fn := exp.ByID(id)
			if fn == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try: xnuma list)\n", id)
				os.Exit(2)
			}
			fmt.Println(render(fn(s)))
		}
	}
}

func runOne(s *exp.Suite, app, pol string) {
	if _, err := xennuma.ParsePolicy(pol); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r := s.Xen(app, pol, true)
	fmt.Printf("app:          %s\n", r.App)
	fmt.Printf("backend:      %s\n", r.Backend)
	fmt.Printf("completion:   %v\n", r.Completion)
	fmt.Printf("init phase:   %v\n", r.InitTime)
	fmt.Printf("imbalance:    %.0f%%\n", r.Imbalance)
	fmt.Printf("interconnect: %.0f%%\n", r.InterconnectLoad)
	fmt.Printf("locality:     %.2f\n", r.Locality)
	fmt.Printf("migrated:     %d pages\n", r.Migrated)
}

func dumpTopology(scale int) {
	t := numa.AMD48Scaled(scale)
	fmt.Printf("AMD48 (scale 1/%d): %d nodes, %d CPUs, %d MiB total\n",
		scale, t.NumNodes(), t.NumCPUs(), t.TotalMemory()>>20)
	for _, n := range t.Nodes {
		fmt.Printf("  node %d: cpus %v, %d MiB, pci=%v\n", n.ID, n.CPUs, n.MemBytes>>20, n.PCIBus)
	}
	fmt.Println("  hop distance matrix:")
	for i := 0; i < t.NumNodes(); i++ {
		fmt.Print("   ")
		for j := 0; j < t.NumNodes(); j++ {
			fmt.Printf(" %d", t.Distance(numa.NodeID(i), numa.NodeID(j)))
		}
		fmt.Println()
	}
	lm := t.Latency
	fmt.Printf("  latency (cycles): local %d, 1-hop %d, 2-hop %d\n",
		lm.BaseCycles(0), lm.BaseCycles(1), lm.BaseCycles(2))
}

func usage() {
	fmt.Fprintln(os.Stderr, `xnuma — regenerate the paper's evaluation on the simulated stack
usage:
  xnuma [flags] list | all | topo | <experiment-id>... | run <app> <policy>`)
	flag.PrintDefaults()
}
