// Command xnuma runs the paper's experiments on the simulated stack and
// prints the regenerated tables and figures.
//
// Usage:
//
//	xnuma list                 # list experiment ids and applications
//	xnuma policies             # enumerate the NUMA policy registry
//	xnuma all                  # run every experiment (shares a result cache)
//	xnuma fig7 table4          # run specific experiments
//	xnuma run cg.C first-touch # one single-VM run with details
//	xnuma run cg.C bind:3      # any registered policy works
//	xnuma sweep facesim        # every registered policy × {plain, Carrefour}
//	xnuma sweep -bind facesim  # per-node bind:0..7 placement sensitivity
//	xnuma sweep -seeds 5 cg.C  # best-policy stability across 5 seeds
//	xnuma sweep -apps cg.C,sp.C        # several apps' sweeps in one batch
//	xnuma sweep -apps all -seeds 3     # every app × every seed on one pool
//	xnuma advise               # §3.5.2 advisor vs exhaustive sweep
//	xnuma topo                 # dump the machine topology
//	xnuma serve                # resident sweep service on stdin/stdout
//	xnuma serve -listen :8080 -cache-dir ~/.cache/xnuma  # + HTTP, warm restarts
//
// Flags:
//
//	-scale N        machine/footprint scale divisor (default 64)
//	-seed N         simulation seed (default 1)
//	-parallel N     worker count for the experiment scheduler (default: all CPUs)
//	-progress       report per-experiment timing on stderr; sweeps also
//	                report live cells/sec while running
//	-md             render tables as Markdown
//	-cpuprofile f   write a CPU profile covering the whole invocation to f
//	-memprofile f   write an end-of-run heap profile to f
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	xennuma "repro"
	"repro/internal/advisor"
	"repro/internal/exp"
	"repro/internal/faultinject"
	"repro/internal/numa"
	"repro/internal/policy"
	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI entry point: it parses argv, executes one
// command and returns the process exit code (0 ok, 1 runtime error,
// 2 usage error). The serve subcommand reads requests from os.Stdin;
// tests inject their own reader through runIO.
func run(argv []string, stdout, stderr io.Writer) int {
	return runIO(argv, os.Stdin, stdout, stderr)
}

func runIO(argv []string, stdin io.Reader, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("xnuma", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 64, "machine and footprint scale divisor (power of two)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	markdown := fs.Bool("md", false, "render tables as Markdown instead of ASCII")
	parallel := fs.Int("parallel", 0, "max concurrent simulations (0 = one per CPU)")
	progress := fs.Bool("progress", false, "report per-experiment timing and run counts on stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile covering the whole invocation to this file")
	memprofile := fs.String("memprofile", "", "write an end-of-run heap profile to this file")
	fs.Usage = func() {
		fmt.Fprintln(stderr, `xnuma — regenerate the paper's evaluation on the simulated stack
usage:
  xnuma [flags] list | policies | all | topo | <experiment-id>... | run <app> <policy>
  xnuma [flags] sweep [-bind] [-seeds N] (<app> | -apps a,b,…|all) | advise [app...]
  xnuma [flags] serve [-listen addr] [-cache-dir dir] [-timeout d] [-max-flights n] [-max-pending n] [-faults plan]`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	args := fs.Args()
	if len(args) == 0 {
		fs.Usage()
		return 2
	}

	// Profiles bracket everything after flag parsing, so the hot loop is
	// measurable on any command without editing code. Deferred: the CPU
	// profile stops (and the heap snapshot is taken) after the command —
	// including a recovered panic — has run.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "xnuma:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "xnuma:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			if err := writeHeapProfile(*memprofile); err != nil {
				fmt.Fprintln(stderr, "xnuma:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	// A failing simulation cell surfaces as a panic from the suite;
	// report it as a clean error instead of a stack trace.
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(stderr, "xnuma: %v\n", p)
			code = 1
		}
	}()

	s := exp.NewSuiteParallel(*scale, *parallel)
	s.Opt.Seed = *seed
	render := func(t *exp.Table) string {
		if *markdown {
			return t.RenderMarkdown()
		}
		return t.Render()
	}
	report := func(id string, fn func(*exp.Suite) *exp.Table) {
		start := time.Now()
		before := s.CellsComputed()
		tbl := fn(s)
		if *progress {
			fmt.Fprintf(stderr, "xnuma: %s: %d new runs in %v (%d workers)\n",
				id, s.CellsComputed()-before, time.Since(start).Round(time.Millisecond), s.Workers())
		}
		fmt.Fprintln(stdout, render(tbl))
	}

	switch args[0] {
	case "list":
		fmt.Fprintln(stdout, "experiments:")
		for _, id := range exp.IDs() {
			fmt.Fprintln(stdout, "  "+id)
		}
		fmt.Fprintln(stdout, "applications:")
		for _, a := range xennuma.Apps() {
			fmt.Fprintln(stdout, "  "+a)
		}
		fmt.Fprintln(stdout, "policies (xnuma policies for details):")
		for _, p := range exp.RegisteredXenPolicies() {
			fmt.Fprintln(stdout, "  "+p)
		}
	case "policies":
		printPolicies(stdout)
	case "all":
		for _, id := range exp.IDs() {
			report(id, exp.ByID(id))
		}
	case "topo":
		dumpTopology(stdout, *scale)
	case "run":
		if len(args) != 3 {
			fmt.Fprintln(stderr, "usage: xnuma run <app> <policy>")
			return 2
		}
		if err := runOne(s, stdout, args[1], args[2]); err != nil {
			fmt.Fprintln(stderr, "xnuma:", err)
			return 2
		}
	case "sweep":
		if c := runSweep(s, stdout, stderr, render, *progress, args[1:]); c != 0 {
			return c
		}
	case "serve":
		if c := runServe(s, stdin, stdout, stderr, args[1:]); c != 0 {
			return c
		}
	case "advise":
		apps := args[1:]
		if len(apps) == 0 {
			apps = advisor.DefaultApps
		}
		for _, app := range apps {
			if err := knownApp(app); err != nil {
				fmt.Fprintln(stderr, "xnuma:", err)
				return 2
			}
		}
		fmt.Fprintln(stdout, render(advisor.Table(s, advisor.TargetXen, apps)))
	default:
		for _, id := range args {
			fn := exp.ByID(id)
			if fn == nil {
				fmt.Fprintf(stderr, "unknown experiment %q (try: xnuma list)\n", id)
				return 2
			}
			report(id, fn)
		}
	}
	return 0
}

// printPolicies renders the policy registry: one row per descriptor
// with its metadata, so users do not have to read ParsePolicy's source
// to learn what is runnable.
func printPolicies(w io.Writer) {
	fmt.Fprintf(w, "%-14s %-16s %-6s %-22s %-9s %-6s %s\n",
		"NAME", "ALIASES", "ABBREV", "BOOT", "CARREFOUR", "NATIVE", "FAULT BEHAVIOR")
	for _, d := range policy.List() {
		name := d.Name
		if d.Parameterized {
			name += ":<arg>"
		}
		boot := "lazy (faults in)"
		switch {
		case d.RuntimeOnly:
			boot = "round-4K, then switch"
		case d.BootOnly:
			boot = "eager (boot-only)"
		case d.Boot != nil:
			boot = "eager"
		}
		yn := func(b bool) string {
			if b {
				return "yes"
			}
			return "no"
		}
		fmt.Fprintf(w, "%-14s %-16s %-6s %-22s %-9s %-6s %s\n",
			name, strings.Join(d.Aliases, ","), d.Abbrev, boot,
			yn(d.Carrefour), yn(d.Native != nil), d.Fault)
	}
}

// writeHeapProfile records the end-of-run heap to path, after a GC so
// the profile reflects live memory rather than collectable garbage.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// knownApp rejects application names the workload set does not contain.
func knownApp(app string) error {
	for _, a := range xennuma.Apps() {
		if a == app {
			return nil
		}
	}
	return fmt.Errorf("unknown application %q (try: xnuma list)", app)
}

// runSweep parses the sweep subcommand's own flags and prints the
// selected sweep tables: the policy × Carrefour sweep by default, the
// per-node bind sweep with -bind, the seed-stability sweep with
// -seeds N. -apps batches several applications (or "all") in a single
// prefetch wave on the suite's shared pool and composes with -seeds.
// With the global -progress flag it reports live throughput (the
// scheduler's CellsComputed counter sampled every two seconds) and a
// final cells/sec summary on stderr. It reports its errors itself and
// returns the exit code.
func runSweep(s *exp.Suite, stdout, stderr io.Writer, render func(*exp.Table) string, progress bool, args []string) int {
	const usage = "usage: xnuma sweep [-bind] [-seeds N] (<app> | -apps a,b,…|all)"
	fs := flag.NewFlagSet("xnuma sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bind := fs.Bool("bind", false, "sweep bind:<node> over every node instead of the policy registry")
	seeds := fs.Int("seeds", 1, "average the sweep over N consecutive seeds and report best-policy stability")
	appsFlag := fs.String("apps", "", "comma-separated applications (or 'all') swept in one batch")
	fs.Usage = func() {
		fmt.Fprintln(stderr, usage)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0 // usage printed; asking for help is not a failure
		}
		return 2 // the FlagSet already reported the error
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "xnuma:", err)
		return 2
	}
	var apps []string
	switch {
	case *appsFlag == "":
		if fs.NArg() != 1 {
			return fail(fmt.Errorf("%s", usage))
		}
		apps = []string{fs.Arg(0)}
	case fs.NArg() != 0:
		return fail(fmt.Errorf("sweep: positional app and -apps are mutually exclusive"))
	case *appsFlag == "all":
		apps = exp.Apps()
	default:
		for _, app := range strings.Split(*appsFlag, ",") {
			if app = strings.TrimSpace(app); app != "" {
				apps = append(apps, app)
			}
		}
		if len(apps) == 0 {
			return fail(fmt.Errorf("sweep: -apps lists no applications"))
		}
	}
	for _, app := range apps {
		if err := knownApp(app); err != nil {
			return fail(err)
		}
	}
	printAll := func(tables []*exp.Table) {
		for _, t := range tables {
			fmt.Fprintln(stdout, render(t))
		}
	}
	switch {
	case *bind && *seeds > 1:
		return fail(fmt.Errorf("sweep: -bind and -seeds are mutually exclusive"))
	case *bind && *appsFlag != "":
		return fail(fmt.Errorf("sweep: -bind and -apps are mutually exclusive"))
	case *bind:
		sweepProgress(s, stderr, progress, func() {
			fmt.Fprintln(stdout, render(exp.BindSweep(s, apps[0])))
		})
	case *seeds > 1:
		sweepProgress(s, stderr, progress, func() {
			printAll(exp.SeedSweepApps(s, apps, *seeds))
		})
	default:
		sweepProgress(s, stderr, progress, func() {
			printAll(exp.PolicySweepApps(s, apps))
		})
	}
	return 0
}

// sweepProgress runs a sweep under the live-throughput reporter: while
// fn computes (and renders) the sweep, a ticker samples the suite's
// CellsComputed counter every two seconds and writes running cells/sec
// to stderr, followed by one final summary line that also reports the
// warm-machine pool's hit/miss split. Without -progress it just runs
// fn.
func sweepProgress(s *exp.Suite, stderr io.Writer, progress bool, fn func()) {
	if !progress {
		fn()
		return
	}
	start := time.Now()
	base := s.CellsComputed()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				cells := s.CellsComputed() - base
				if el := time.Since(start).Seconds(); el > 0 {
					fmt.Fprintf(stderr, "xnuma: sweep: %d cells, %.1f cells/sec\n",
						cells, float64(cells)/el)
				}
			}
		}
	}()
	fn()
	close(stop)
	<-done
	cells := s.CellsComputed() - base
	el := time.Since(start)
	rate := 0.0
	if sec := el.Seconds(); sec > 0 {
		rate = float64(cells) / sec
	}
	hits, misses := s.PoolStats()
	fmt.Fprintf(stderr, "xnuma: sweep: %d new runs in %v (%.1f cells/sec, %d workers, pool %d hits / %d misses)\n",
		cells, el.Round(time.Millisecond), rate, s.Workers(), hits, misses)
}

func runOne(s *exp.Suite, stdout io.Writer, app, pol string) error {
	if _, err := xennuma.ParsePolicy(pol); err != nil {
		return err
	}
	if err := knownApp(app); err != nil {
		return err
	}
	r := s.Xen(app, pol, true)
	fmt.Fprintf(stdout, "app:          %s\n", r.App)
	fmt.Fprintf(stdout, "backend:      %s\n", r.Backend)
	fmt.Fprintf(stdout, "completion:   %v\n", r.Completion)
	fmt.Fprintf(stdout, "init phase:   %v\n", r.InitTime)
	fmt.Fprintf(stdout, "imbalance:    %.0f%%\n", r.Imbalance)
	fmt.Fprintf(stdout, "interconnect: %.0f%%\n", r.InterconnectLoad)
	fmt.Fprintf(stdout, "locality:     %.2f\n", r.Locality)
	fmt.Fprintf(stdout, "migrated:     %d pages\n", r.Migrated)
	return nil
}

// runServe starts the resident sweep service on the suite: JSON-lines
// requests on stdin answered on stdout and, with -listen, the same
// protocol over HTTP (POST /rpc). The service drains gracefully on
// stdin EOF, SIGTERM or SIGINT — in-flight requests finish, the HTTP
// listener shuts down, and with -cache-dir the cell cache is persisted
// for the next start. Diagnostics (warm-start counts, listener address,
// the final summary) go to stderr; stdout carries only protocol lines.
// It reports its errors itself and returns the exit code.
func runServe(s *exp.Suite, stdin io.Reader, stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("xnuma serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "", "also serve the protocol over HTTP on this address (POST /rpc)")
	cacheDir := fs.String("cache-dir", "", "persist the cell cache in this directory across restarts")
	timeout := fs.Duration("timeout", 0, "per-request timeout (0 = none); timed-out work keeps computing")
	maxFlights := fs.Int("max-flights", 0, "retained completed-response cache bound (0 = default)")
	maxPending := fs.Int("max-pending", 0, "shed new work past this many concurrent computations (0 = no shedding)")
	faults := fs.String("faults", "", "inject faults per plan, e.g. pool.reset:hit=1:action=error (testing)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: xnuma serve [-listen addr] [-cache-dir dir] [-timeout d] [-max-flights n] [-max-pending n] [-faults plan]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "xnuma: serve takes no positional arguments")
		return 2
	}
	if *faults != "" {
		plan, err := faultinject.Parse(*faults)
		if err != nil {
			fmt.Fprintln(stderr, "xnuma: -faults:", err)
			return 2
		}
		faultinject.Install(plan)
		defer faultinject.Install(nil)
		fmt.Fprintf(stderr, "xnuma: serve: fault plan armed: %s\n", plan.Spec())
	}

	srv := serve.New(s, serve.Config{
		ModelVersion: xennuma.ModelVersion(),
		CacheDir:     *cacheDir,
		Timeout:      *timeout,
		MaxFlights:   *maxFlights,
		MaxPending:   *maxPending,
	})
	if *cacheDir != "" {
		switch n, err := srv.LoadCache(); {
		case err != nil:
			fmt.Fprintf(stderr, "xnuma: serve: cache: %v\n", err)
		case n > 0:
			fmt.Fprintf(stderr, "xnuma: serve: warm start: %d cells restored\n", n)
		}
	}

	var httpSrv *http.Server
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(stderr, "xnuma:", err)
			return 1
		}
		fmt.Fprintf(stderr, "xnuma: serve: listening on http://%s/rpc\n", ln.Addr())
		httpSrv = &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := srv.Serve(ctx, stdin, stdout)
	if httpSrv != nil {
		httpSrv.Shutdown(context.Background())
	}
	srv.Drain()
	code := 0
	if err != nil {
		fmt.Fprintln(stderr, "xnuma:", err)
		code = 1
	}
	if *cacheDir != "" {
		if n, serr := srv.SaveCache(); serr != nil {
			fmt.Fprintf(stderr, "xnuma: serve: cache: %v\n", serr)
			code = 1
		} else {
			fmt.Fprintf(stderr, "xnuma: serve: cache saved: %d cells\n", n)
		}
	}
	fmt.Fprintf(stderr, "xnuma: serve: %s\n", srv.Stats())
	return code
}

func dumpTopology(stdout io.Writer, scale int) {
	t := numa.AMD48Scaled(scale)
	fmt.Fprintf(stdout, "AMD48 (scale 1/%d): %d nodes, %d CPUs, %d MiB total\n",
		scale, t.NumNodes(), t.NumCPUs(), t.TotalMemory()>>20)
	for _, n := range t.Nodes {
		fmt.Fprintf(stdout, "  node %d: cpus %v, %d MiB, pci=%v\n", n.ID, n.CPUs, n.MemBytes>>20, n.PCIBus)
	}
	fmt.Fprintln(stdout, "  hop distance matrix:")
	for i := 0; i < t.NumNodes(); i++ {
		fmt.Fprint(stdout, "   ")
		for j := 0; j < t.NumNodes(); j++ {
			fmt.Fprintf(stdout, " %d", t.Distance(numa.NodeID(i), numa.NodeID(j)))
		}
		fmt.Fprintln(stdout)
	}
	lm := t.Latency
	fmt.Fprintf(stdout, "  latency (cycles): local %d, 1-hop %d, 2-hop %d\n",
		lm.BaseCycles(0), lm.BaseCycles(1), lm.BaseCycles(2))
}
