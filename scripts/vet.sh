#!/usr/bin/env sh
# vet.sh — build the xnuma-vet multichecker and run the invariant
# analyzers (maporder, detrand, noalloc, aliasretain) over the whole
# module through `go vet -vettool`, so each package is checked with the
# exact file set and build flags the compiler sees.
#
#   scripts/vet.sh                  # analyze ./...; exit non-zero on findings
#   scripts/vet.sh -suppressions    # standalone mode: inventory of
#                                   # //xnuma:*-ok suppressions instead
set -eu
cd "$(dirname "$0")/.."

mkdir -p bin
go build -o bin/xnuma-vet ./cmd/xnuma-vet

if [ "${1:-}" = "-suppressions" ]; then
	# The unitchecker protocol has no channel for non-diagnostic
	# output, so the inventory uses the standalone driver.
	exec ./bin/xnuma-vet -suppressions ./...
fi

exec go vet -vettool="$(pwd)/bin/xnuma-vet" ./...
