#!/usr/bin/env sh
# bench_suite.sh — run the experiment-suite throughput benchmark and
# track the trajectory against BENCH_suite.json (ns per fixed sweep
# batch, cells/sec).
#
#   scripts/bench_suite.sh             # one pass, rewrites BENCH_suite.json
#   scripts/bench_suite.sh check       # gate: exit 1 on a >25% ns/op
#                                      # regression vs the committed file
#   COUNT=3 scripts/bench_suite.sh     # more -count repetitions (best wins)
#
# Unlike bench_engine.sh there is no allocs gate: a sweep batch builds
# whole machines and suites, so it allocates by design; the number to
# watch is cells/sec.
set -eu
cd "$(dirname "$0")/.."

mode="${1:-record}"
case "$mode" in
record | check) ;;
*)
	echo "usage: scripts/bench_suite.sh [record|check]" >&2
	exit 2
	;;
esac

out=$(go test -run '^$' -bench BenchmarkSuiteSweep -benchmem -count "${COUNT:-1}" ./internal/exp/)
printf '%s\n' "$out"

# Keep the best (minimum-ns) repetition: the least-noisy estimate.
# With -benchmem the fields are: name iters ns "ns/op" cells
# "cells/sec" bytes "B/op" allocs "allocs/op".
line=$(printf '%s\n' "$out" | awk '
/^BenchmarkSuiteSweep/ {
	if (best == "" || $3 + 0 < best + 0) {
		best = $3
		name = $1; iters = $2; ns = $3; cells = $5; bytes = $7; allocs = $9
	}
}
END {
	if (name == "") {
		print "bench_suite.sh: no BenchmarkSuiteSweep line in output" > "/dev/stderr"
		exit 1
	}
	print name, iters, ns, cells, bytes, allocs
}')
set -- $line
name=$1 iters=$2 ns=$3 cells=$4 bytes=$5 allocs=$6

if [ "$mode" = check ]; then
	if [ ! -f BENCH_suite.json ]; then
		echo "bench_suite.sh: no committed BENCH_suite.json to compare against" >&2
		exit 1
	fi
	old=$(awk -F: '/"ns_per_op"/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_suite.json)
	# ns/op carries hardware variance, so the gate only catches gross
	# (>25%) slowdowns of the fixed batch against the committed file.
	awk -v new="$ns" -v old="$old" -v cells="$cells" 'BEGIN {
		if (old + 0 <= 0) {
			print "bench_suite.sh: bad ns_per_op in BENCH_suite.json" > "/dev/stderr"
			exit 1
		}
		ratio = new / old
		printf "bench_suite.sh: %s ns/batch vs committed %s (%.2fx), %s cells/sec\n", new, old, ratio, cells
		if (ratio > 1.25) {
			print "bench_suite.sh: REGRESSION — sweep batch more than 25% slower than BENCH_suite.json" > "/dev/stderr"
			exit 1
		}
	}'
	exit 0
fi

# bytes/allocs are trajectory only (no gate): a sweep batch builds whole
# machines and suites, so it allocates by design — the history just makes
# arena/caching wins visible.
cat >BENCH_suite.json <<EOF
{
  "benchmark": "$name",
  "iterations": $iters,
  "ns_per_op": $ns,
  "cells_per_sec": $cells,
  "bytes_per_op": $bytes,
  "allocs_per_op": $allocs
}
EOF

echo "wrote BENCH_suite.json:"
cat BENCH_suite.json
