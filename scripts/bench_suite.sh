#!/usr/bin/env sh
# bench_suite.sh — run the experiment-suite throughput benchmark and
# track the trajectory against BENCH_suite.json (ns per fixed sweep
# batch, cells/sec), plus the per-cell machine-construction cost
# (BenchmarkCellConstruction fresh vs pooled — the warm pool's win).
#
#   scripts/bench_suite.sh             # one pass, rewrites BENCH_suite.json
#   scripts/bench_suite.sh check       # gate: exit 1 on a >25% regression
#                                      # in ns/op, bytes/op or allocs/op
#                                      # vs the committed file
#   COUNT=3 scripts/bench_suite.sh     # more -count repetitions (best wins)
#
# A sweep batch builds whole suites so it still allocates, but with the
# warm-machine pool the per-cell churn is bounded: bytes/op and
# allocs/op get the same soft 25% gate as ns/op so pool regressions
# (missed leases, lost reuse in the reset protocol) fail check mode.
set -eu
cd "$(dirname "$0")/.."

mode="${1:-record}"
case "$mode" in
record | check) ;;
*)
	echo "usage: scripts/bench_suite.sh [record|check]" >&2
	exit 2
	;;
esac

out=$(go test -run '^$' -bench BenchmarkSuiteSweep -benchmem -count "${COUNT:-1}" ./internal/exp/)
printf '%s\n' "$out"
cellout=$(go test -run '^$' -bench BenchmarkCellConstruction -benchmem -count "${COUNT:-1}" .)
printf '%s\n' "$cellout"

# Keep the best (minimum-ns) repetition: the least-noisy estimate.
# With -benchmem the fields are: name iters ns "ns/op" cells
# "cells/sec" bytes "B/op" allocs "allocs/op".
line=$(printf '%s\n' "$out" | awk '
/^BenchmarkSuiteSweep/ {
	if (best == "" || $3 + 0 < best + 0) {
		best = $3
		name = $1; iters = $2; ns = $3; cells = $5; bytes = $7; allocs = $9
	}
}
END {
	if (name == "") {
		print "bench_suite.sh: no BenchmarkSuiteSweep line in output" > "/dev/stderr"
		exit 1
	}
	print name, iters, ns, cells, bytes, allocs
}')
set -- $line
name=$1 iters=$2 ns=$3 cells=$4 bytes=$5 allocs=$6

# Cell-construction sub-benchmarks (no cells/sec metric): fields are
# name iters ns "ns/op" bytes "B/op" allocs "allocs/op".
cell_best() {
	printf '%s\n' "$cellout" | awk -v want="$1" '
BEGIN { re = "^BenchmarkCellConstruction/" want "(-|$)" }
$1 ~ re {
	if (best == "" || $3 + 0 < best + 0) {
		best = $3
		ns = $3; bytes = $5; allocs = $7
	}
}
END {
	if (ns == "") {
		print "bench_suite.sh: no BenchmarkCellConstruction/" want " line" > "/dev/stderr"
		exit 1
	}
	print ns, bytes, allocs
}'
}
set -- $(cell_best fresh)
cell_fresh_ns=$1 cell_fresh_bytes=$2 cell_fresh_allocs=$3
set -- $(cell_best pooled)
cell_pooled_ns=$1 cell_pooled_bytes=$2 cell_pooled_allocs=$3

if [ "$mode" = check ]; then
	if [ ! -f BENCH_suite.json ]; then
		echo "bench_suite.sh: no committed BENCH_suite.json to compare against" >&2
		exit 1
	fi
	json_num() {
		awk -F: -v key="\"$1\"" '$1 ~ key { gsub(/[ ,]/, "", $2); print $2 }' BENCH_suite.json
	}
	old_ns=$(json_num ns_per_op)
	old_bytes=$(json_num bytes_per_op)
	old_allocs=$(json_num allocs_per_op)
	# All three carry some variance, so each gate only catches gross
	# (>25%) regressions of the fixed batch against the committed file.
	awk -v ns="$ns" -v old_ns="$old_ns" \
		-v bytes="$bytes" -v old_bytes="$old_bytes" \
		-v allocs="$allocs" -v old_allocs="$old_allocs" \
		-v cells="$cells" '
	function gate(label, new, old) {
		if (old + 0 <= 0) {
			printf "bench_suite.sh: bad committed value for %s\n", label > "/dev/stderr"
			fail = 1
			return
		}
		ratio = new / old
		printf "bench_suite.sh: %s %s vs committed %s (%.2fx)\n", label, new, old, ratio
		if (ratio > 1.25) {
			printf "bench_suite.sh: REGRESSION — %s more than 25%% above BENCH_suite.json\n", label > "/dev/stderr"
			fail = 1
		}
	}
	BEGIN {
		fail = 0
		gate("ns/batch", ns, old_ns)
		gate("bytes/batch", bytes, old_bytes)
		gate("allocs/batch", allocs, old_allocs)
		printf "bench_suite.sh: %s cells/sec\n", cells
		exit fail
	}'
	exit 0
fi

# The cell_* keys are trajectory only (no gate): they decompose the
# suite numbers into per-cell machine construction, fresh vs pooled.
cat >BENCH_suite.json <<EOF
{
  "benchmark": "$name",
  "iterations": $iters,
  "ns_per_op": $ns,
  "cells_per_sec": $cells,
  "bytes_per_op": $bytes,
  "allocs_per_op": $allocs,
  "cell_fresh_ns_per_op": $cell_fresh_ns,
  "cell_fresh_bytes_per_op": $cell_fresh_bytes,
  "cell_fresh_allocs_per_op": $cell_fresh_allocs,
  "cell_pooled_ns_per_op": $cell_pooled_ns,
  "cell_pooled_bytes_per_op": $cell_pooled_bytes,
  "cell_pooled_allocs_per_op": $cell_pooled_allocs
}
EOF

echo "wrote BENCH_suite.json:"
cat BENCH_suite.json
