#!/usr/bin/env sh
# bench_engine.sh — run the engine hot-loop benchmark and track the
# perf trajectory against BENCH_engine.json (ns/op, B/op, allocs/op).
#
#   scripts/bench_engine.sh            # one pass, rewrites BENCH_engine.json
#   scripts/bench_engine.sh check      # gate: exit 1 when allocs/op != 0
#                                      # (hard, machine-independent) or on a
#                                      # >25% ns/op regression vs the
#                                      # committed file
#   COUNT=5 scripts/bench_engine.sh    # more -count repetitions (best wins)
set -eu
cd "$(dirname "$0")/.."

mode="${1:-record}"
case "$mode" in
record | check) ;;
*)
	echo "usage: scripts/bench_engine.sh [record|check]" >&2
	exit 2
	;;
esac

out=$(go test -run '^$' -bench '^BenchmarkEpoch(UniqueRows)?$' -benchmem -count "${COUNT:-1}" ./internal/engine/)
printf '%s\n' "$out"

# Keep the best (minimum-ns) repetition of each benchmark: the
# least-noisy estimate. Names are matched exactly (modulo the -GOMAXPROCS
# suffix): BenchmarkEpoch must not swallow BenchmarkEpochUniqueRows.
line=$(printf '%s\n' "$out" | awk '
$1 ~ /^BenchmarkEpoch(-[0-9]+)?$/ {
	if (ns == "" || $3 + 0 < ns + 0) {
		name = $1; iters = $2; ns = $3; bytes = $5; allocs = $7
	}
}
$1 ~ /^BenchmarkEpochUniqueRows(-[0-9]+)?$/ {
	if (uns == "" || $3 + 0 < uns + 0) {
		uiters = $2; uns = $3; ubytes = $5; uallocs = $7
	}
}
END {
	if (name == "" || uns == "") {
		print "bench_engine.sh: missing BenchmarkEpoch or BenchmarkEpochUniqueRows in output" > "/dev/stderr"
		exit 1
	}
	print name, iters, ns, bytes, allocs, uiters, uns, ubytes, uallocs
}')
set -- $line
name=$1 iters=$2 ns=$3 bytes=$4 allocs=$5
uiters=$6 uns=$7 ubytes=$8 uallocs=$9

if [ "$mode" = check ]; then
	if [ ! -f BENCH_engine.json ]; then
		echo "bench_engine.sh: no committed BENCH_engine.json to compare against" >&2
		exit 1
	fi
	# Anchored on the two-space indent so "ns_per_op" does not also match
	# the uniquerows_ns_per_op line (and vice versa, matched by prefix).
	old=$(awk -F: '/^  "ns_per_op"/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_engine.json)
	uold=$(awk -F: '/^  "uniquerows_ns_per_op"/ { gsub(/[ ,]/, "", $2); print $2 }' BENCH_engine.json)
	# allocs/op is machine-independent and gates hard at zero: the
	# steady-state epoch loop must not allocate, full stop (the PR-2
	# invariant, not just "no worse than the committed file"). ns/op
	# carries hardware variance, so it only catches gross (>25%)
	# slowdowns against the committed baseline.
	awk -v new="$ns" -v old="$old" -v na="$allocs" \
		-v unew="$uns" -v uold="$uold" -v una="$uallocs" 'BEGIN {
		if (old + 0 <= 0 || uold + 0 <= 0) {
			print "bench_engine.sh: bad ns_per_op/uniquerows_ns_per_op in BENCH_engine.json" > "/dev/stderr"
			exit 1
		}
		ratio = new / old
		uratio = unew / uold
		printf "bench_engine.sh: %s ns/op vs committed %s (%.2fx), %s allocs/op (must be 0)\n", new, old, ratio, na
		printf "bench_engine.sh: uniquerows %s ns/op vs committed %s (%.2fx), %s allocs/op (must be 0)\n", unew, uold, uratio, una
		if (na + 0 != 0 || una + 0 != 0) {
			print "bench_engine.sh: REGRESSION — steady-state epochs must be allocation-free (allocs/op == 0)" > "/dev/stderr"
			exit 1
		}
		if (ratio > 1.25 || uratio > 1.25) {
			print "bench_engine.sh: REGRESSION — epoch loop more than 25% slower than BENCH_engine.json" > "/dev/stderr"
			exit 1
		}
	}'
	exit 0
fi

cat >BENCH_engine.json <<EOF
{
  "benchmark": "$name",
  "iterations": $iters,
  "ns_per_op": $ns,
  "bytes_per_op": $bytes,
  "allocs_per_op": $allocs,
  "uniquerows_iterations": $uiters,
  "uniquerows_ns_per_op": $uns,
  "uniquerows_bytes_per_op": $ubytes,
  "uniquerows_allocs_per_op": $uallocs
}
EOF

echo "wrote BENCH_engine.json:"
cat BENCH_engine.json
