#!/usr/bin/env sh
# bench_engine.sh — run the engine hot-loop benchmark and record the
# perf trajectory in BENCH_engine.json (ns/op, B/op, allocs/op).
#
#   scripts/bench_engine.sh            # one pass, rewrites BENCH_engine.json
#   COUNT=5 scripts/bench_engine.sh    # more -count repetitions (last wins)
set -eu
cd "$(dirname "$0")/.."

out=$(go test -run '^$' -bench BenchmarkEpoch -benchmem -count "${COUNT:-1}" ./internal/engine/)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk '
/^BenchmarkEpoch/ {
	name = $1; iters = $2; ns = $3; bytes = $5; allocs = $7
}
END {
	if (name == "") {
		print "bench_engine.sh: no BenchmarkEpoch line in output" > "/dev/stderr"
		exit 1
	}
	printf "{\n"
	printf "  \"benchmark\": \"%s\",\n", name
	printf "  \"iterations\": %s,\n", iters
	printf "  \"ns_per_op\": %s,\n", ns
	printf "  \"bytes_per_op\": %s,\n", bytes
	printf "  \"allocs_per_op\": %s\n", allocs
	printf "}\n"
}' >BENCH_engine.json

echo "wrote BENCH_engine.json:"
cat BENCH_engine.json
