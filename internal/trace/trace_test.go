package trace

import (
	"strings"
	"testing"
)

func TestNilRingIsNoOp(t *testing.T) {
	var r *Ring
	r.Record(Event{Kind: KindFault}) // must not panic
	if r.Len() != 0 || r.Total() != 0 || r.Count(KindFault) != 0 {
		t.Fatal("nil ring reported activity")
	}
	if r.Events() != nil {
		t.Fatal("nil ring returned events")
	}
	if r.Summary() != "trace: disabled" {
		t.Fatalf("nil summary = %q", r.Summary())
	}
}

func TestRingRetainsNewest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Record(Event{Time: 0, Kind: KindHypercall, Arg0: uint64(i)})
	}
	if r.Len() != 3 || r.Total() != 5 {
		t.Fatalf("len=%d total=%d", r.Len(), r.Total())
	}
	evs := r.Events()
	// Oldest-first: 2, 3, 4.
	for i, e := range evs {
		if e.Arg0 != uint64(i+2) {
			t.Fatalf("events = %v", evs)
		}
	}
}

func TestRingCounts(t *testing.T) {
	r := NewRing(10)
	r.Record(Event{Kind: KindFault})
	r.Record(Event{Kind: KindFault})
	r.Record(Event{Kind: KindMigrate})
	if r.Count(KindFault) != 2 || r.Count(KindMigrate) != 1 || r.Count(KindIO) != 0 {
		t.Fatal("per-kind counts wrong")
	}
	if !strings.Contains(r.Summary(), "fault=2") {
		t.Fatalf("summary = %q", r.Summary())
	}
}

func TestRingFilter(t *testing.T) {
	r := NewRing(10)
	r.Record(Event{Kind: KindFault, Arg0: 1})
	r.Record(Event{Kind: KindMigrate, Arg0: 2})
	r.Record(Event{Kind: KindFault, Arg0: 3})
	faults := r.Filter(KindFault)
	if len(faults) != 2 || faults[0].Arg0 != 1 || faults[1].Arg0 != 3 {
		t.Fatalf("filter = %v", faults)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestEventString(t *testing.T) {
	e := Event{Time: 1500, Kind: KindMigrate, Dom: 2, Arg0: 7, Arg1: 3}
	if got := e.String(); !strings.Contains(got, "dom2") || !strings.Contains(got, "migrate(7,3)") {
		t.Fatalf("event string = %q", got)
	}
}
