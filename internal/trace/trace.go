// Package trace provides a lightweight structured event ring used to
// observe the simulated stack: the events mirror the paper's mechanisms
// — the two hypercalls of the external interface (§4.2), page faults
// and migrations of the internal interface (§4.1), policy switches and
// Carrefour decisions (§4.3). Tracing is off unless a Ring is attached,
// and recording is allocation-free once the ring is built, so it can
// stay enabled in benchmarks.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Kind classifies events.
type Kind uint8

const (
	// KindHypercall is one guest→hypervisor call.
	KindHypercall Kind = iota
	// KindFault is a hypervisor page fault.
	KindFault
	// KindMigrate is one page migration.
	KindMigrate
	// KindPolicySwitch is a SetPolicy hypercall taking effect.
	KindPolicySwitch
	// KindCarrefour is one decision-loop interval.
	KindCarrefour
	// KindIO is a DMA-path event.
	KindIO
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindHypercall:
		return "hypercall"
	case KindFault:
		return "fault"
	case KindMigrate:
		return "migrate"
	case KindPolicySwitch:
		return "policy-switch"
	case KindCarrefour:
		return "carrefour"
	case KindIO:
		return "io"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded occurrence. Arg0/Arg1 are kind-specific (e.g.
// PFN and node for a migration).
type Event struct {
	Time sim.Time
	Kind Kind
	Dom  int
	Arg0 uint64
	Arg1 uint64
}

func (e Event) String() string {
	return fmt.Sprintf("%v dom%d %s(%d,%d)", e.Time, e.Dom, e.Kind, e.Arg0, e.Arg1)
}

// Ring is a fixed-capacity circular event buffer. The zero value is
// unusable; build one with NewRing.
type Ring struct {
	events []Event
	next   int
	total  uint64
	counts [numKinds]uint64
}

// NewRing returns a ring keeping the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("trace: ring capacity must be positive")
	}
	return &Ring{events: make([]Event, 0, capacity)}
}

// Record appends an event, overwriting the oldest when full. A nil ring
// is a no-op, so call sites need no guards.
func (r *Ring) Record(e Event) {
	if r == nil {
		return
	}
	r.total++
	r.counts[e.Kind]++
	if len(r.events) < cap(r.events) {
		r.events = append(r.events, e)
		return
	}
	r.events[r.next] = e
	r.next = (r.next + 1) % cap(r.events)
}

// Len reports the number of retained events.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Total reports all events ever recorded (including overwritten ones).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Count reports the events of one kind ever recorded.
func (r *Ring) Count(k Kind) uint64 {
	if r == nil {
		return 0
	}
	return r.counts[k]
}

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Filter returns the retained events of one kind, oldest-first.
func (r *Ring) Filter(k Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Summary renders per-kind totals.
func (r *Ring) Summary() string {
	if r == nil {
		return "trace: disabled"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events", r.total)
	for k := Kind(0); k < numKinds; k++ {
		if r.counts[k] > 0 {
			fmt.Fprintf(&b, ", %s=%d", k, r.counts[k])
		}
	}
	return b.String()
}
