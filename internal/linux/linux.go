// Package linux models the native baseline: the same workloads running
// directly on the machine under Linux's own NUMA policies (first-touch,
// round-4K, each optionally with Carrefour). There is no hypervisor
// layer: "physical" pages are machine frames, placement happens at guest
// fault time exactly as Linux's lazy allocator does (§3.1–3.2), and
// migrations move frames directly.
package linux

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/iosim"
	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Native page-fault path cost (lazy allocation + zeroing at first touch).
const costFault = 1 * sim.Microsecond

// Backend is the native-Linux placement backend.
type Backend struct {
	Topo  *numa.Topology
	Alloc *mem.Allocator
	cfg   policy.Config
	rr    int
	// Threads per node assignment mirrors pinning threads to CPUs in
	// machine order.
	Migrated uint64
}

// New builds a native backend on a dedicated machine. Only first-touch
// and round-4K are valid static policies: Linux has no round-1G.
func New(topo *numa.Topology, cfg policy.Config) (*Backend, error) {
	if cfg.Static == policy.Round1G {
		return nil, fmt.Errorf("linux: Linux has no round-1G policy")
	}
	return &Backend{Topo: topo, Alloc: mem.NewAllocator(topo), cfg: cfg}, nil
}

// Name reports the platform and policy.
func (b *Backend) Name() string { return "linux/" + b.cfg.String() }

// Policy returns the active policy configuration.
func (b *Backend) Policy() policy.Config { return b.cfg }

// Place allocates n frames according to the static policy: on the
// toucher's node for first-touch (with round-robin fallback when the
// bank is full), round-robin across all nodes for round-4K.
func (b *Backend) Place(r *engine.Region, n int, toucher numa.NodeID) (sim.Time, error) {
	var total sim.Time
	for i := 0; i < n; i++ {
		var node numa.NodeID
		switch b.cfg.Static {
		case policy.FirstTouch:
			node = toucher
		case policy.Round4K:
			node = numa.NodeID(b.rr % b.Topo.NumNodes())
			b.rr++
		default:
			return total, fmt.Errorf("linux: unsupported policy %v", b.cfg.Static)
		}
		mfn, err := b.allocNear(node)
		if err != nil {
			return total, err
		}
		r.AddPage(mem.PFN(mfn), b.Alloc.NodeOf(mfn))
		total += costFault
	}
	return total, nil
}

// allocNear allocates on node, falling back round-robin like Linux.
func (b *Backend) allocNear(node numa.NodeID) (mem.MFN, error) {
	if mfn, err := b.Alloc.Alloc(node, mem.Order4K); err == nil {
		return mfn, nil
	}
	for i := 0; i < b.Topo.NumNodes(); i++ {
		n := numa.NodeID(b.rr % b.Topo.NumNodes())
		b.rr++
		if mfn, err := b.Alloc.Alloc(n, mem.Order4K); err == nil {
			return mfn, nil
		}
	}
	return mem.NoMFN, fmt.Errorf("linux: out of memory: %w", mem.ErrNoMemory)
}

// Migrate moves one page's frame to another node (Linux's migrate_pages
// path, used by Carrefour's system component).
func (b *Backend) Migrate(r *engine.Region, i int, to numa.NodeID) bool {
	old := mem.MFN(r.Pages[i])
	if b.Alloc.NodeOf(old) == to {
		return false
	}
	mfn, err := b.Alloc.Alloc(to, mem.Order4K)
	if err != nil {
		return false
	}
	b.Alloc.Free(old, mem.Order4K)
	r.Pages[i] = mem.PFN(mfn)
	r.SetNode(i, to)
	b.Migrated++
	return true
}

// Release frees a region's frames.
func (b *Backend) Release(r *engine.Region) sim.Time {
	for _, p := range r.Pages {
		b.Alloc.Free(mem.MFN(p), mem.Order4K)
	}
	return sim.Time(len(r.Pages)) * 400 * sim.Nanosecond
}

// ChurnOverhead is zero natively: releases stay inside the kernel.
func (b *Backend) ChurnOverhead(float64, int) float64 { return 0 }

// IO is the native path with a physically contiguous single-node buffer
// (§5.3.3).
func (b *Backend) IO() (iosim.Path, iosim.BufferPlacement) {
	return iosim.PathNative, iosim.BufferSingleNode
}

// Virtualized is false natively.
func (b *Backend) Virtualized() bool { return false }

// ThreadNode pins thread i to CPU i in machine order.
func (b *Backend) ThreadNode(i int) numa.NodeID {
	return b.Topo.NodeOf(numa.CPUID(i % b.Topo.NumCPUs()))
}

// CPUShare is 1: native runs are never consolidated in the paper.
func (b *Backend) CPUShare(int) float64 { return 1 }

// HomeNodes is every node.
func (b *Backend) HomeNodes() []numa.NodeID {
	out := make([]numa.NodeID, b.Topo.NumNodes())
	for i := range out {
		out[i] = numa.NodeID(i)
	}
	return out
}
