// Package linux models the native baseline: the same workloads running
// directly on the machine under Linux's own NUMA policies (any
// registered policy with a native placer — first-touch, round-4K,
// interleave, bind:<node>, least-loaded — each optionally with
// Carrefour). There is no hypervisor layer: "physical" pages are
// machine frames, placement happens at guest fault time exactly as
// Linux's lazy allocator does (§3.1–3.2), and migrations move frames
// directly.
package linux

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/iosim"
	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Native page-fault path cost (lazy allocation + zeroing at first touch).
const costFault = 1 * sim.Microsecond

// Backend is the native-Linux placement backend.
type Backend struct {
	Topo  *numa.Topology
	Alloc *mem.Allocator
	cfg   policy.Config
	// placer is the policy's registered native placement hook; rr is
	// the backend's own fallback rotor for full banks.
	placer policy.NativePlacer
	rr     int
	// Threads per node assignment mirrors pinning threads to CPUs in
	// machine order.
	Migrated uint64
}

// New builds a native backend on a dedicated machine. The static policy
// must have a registered native placer (round-1G, a hypervisor boot
// layout, has none) and any parameter must fit the machine (a bind node
// out of range is rejected here), so an unsupported configuration fails
// at construction rather than mid-run.
func New(topo *numa.Topology, cfg policy.Config) (*Backend, error) {
	if err := policy.CheckConfig(cfg); err != nil {
		return nil, fmt.Errorf("linux: %w", err)
	}
	if canon, err := policy.Canonical(cfg.Static); err == nil {
		cfg.Static = canon
	}
	placer, err := policy.NewNative(cfg.Static, topo.NumNodes())
	if err != nil {
		return nil, fmt.Errorf("linux: %w", err)
	}
	return &Backend{Topo: topo, Alloc: mem.NewAllocator(topo), cfg: cfg, placer: placer}, nil
}

// Name reports the platform and policy.
func (b *Backend) Name() string { return "linux/" + b.cfg.String() }

// Policy returns the active policy configuration.
func (b *Backend) Policy() policy.Config { return b.cfg }

// Place allocates n frames, asking the policy's native placer for each
// page's preferred node (the toucher's node for first-touch, round-robin
// for round-4K/interleave, …) and falling back round-robin when the
// bank is full.
func (b *Backend) Place(r *engine.Region, n int, toucher numa.NodeID) (sim.Time, error) {
	var total sim.Time
	free := b.Alloc.FreeBytes // hoisted: one method-value allocation per call, not per page
	for i := 0; i < n; i++ {
		node := b.placer.PlaceNode(toucher, free)
		mfn, err := b.allocNear(node)
		if err != nil {
			return total, err
		}
		r.AddPage(mem.PFN(mfn), b.Alloc.NodeOf(mfn))
		total += costFault
	}
	return total, nil
}

// allocNear allocates on node, falling back round-robin like Linux.
func (b *Backend) allocNear(node numa.NodeID) (mem.MFN, error) {
	if mfn, err := b.Alloc.Alloc(node, mem.Order4K); err == nil {
		return mfn, nil
	}
	for i := 0; i < b.Topo.NumNodes(); i++ {
		n := numa.NodeID(b.rr % b.Topo.NumNodes())
		b.rr++
		if mfn, err := b.Alloc.Alloc(n, mem.Order4K); err == nil {
			return mfn, nil
		}
	}
	return mem.NoMFN, fmt.Errorf("linux: out of memory: %w", mem.ErrNoMemory)
}

// Migrate moves one page's frame to another node (Linux's migrate_pages
// path, used by Carrefour's system component).
func (b *Backend) Migrate(r *engine.Region, i int, to numa.NodeID) bool {
	old := mem.MFN(r.Pages[i])
	if b.Alloc.NodeOf(old) == to {
		return false
	}
	mfn, err := b.Alloc.Alloc(to, mem.Order4K)
	if err != nil {
		return false
	}
	b.Alloc.Free(old, mem.Order4K)
	r.Pages[i] = mem.PFN(mfn)
	r.SetNode(i, to)
	b.Migrated++
	return true
}

// Release frees a region's frames.
func (b *Backend) Release(r *engine.Region) sim.Time {
	for _, p := range r.Pages {
		b.Alloc.Free(mem.MFN(p), mem.Order4K)
	}
	return sim.Time(len(r.Pages)) * 400 * sim.Nanosecond
}

// ChurnOverhead is zero natively: releases stay inside the kernel.
func (b *Backend) ChurnOverhead(float64, int) float64 { return 0 }

// IO is the native path with a physically contiguous single-node buffer
// (§5.3.3).
func (b *Backend) IO() (iosim.Path, iosim.BufferPlacement) {
	return iosim.PathNative, iosim.BufferSingleNode
}

// Virtualized is false natively.
func (b *Backend) Virtualized() bool { return false }

// ThreadNode pins thread i to CPU i in machine order.
func (b *Backend) ThreadNode(i int) numa.NodeID {
	return b.Topo.NodeOf(numa.CPUID(i % b.Topo.NumCPUs()))
}

// CPUShare is 1: native runs are never consolidated in the paper.
func (b *Backend) CPUShare(int) float64 { return 1 }

// HomeNodes is every node.
func (b *Backend) HomeNodes() []numa.NodeID {
	out := make([]numa.NodeID, b.Topo.NumNodes())
	for i := range out {
		out[i] = numa.NodeID(i)
	}
	return out
}
