package linux

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/iosim"
	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/policy"
)

func TestRound1GRejected(t *testing.T) {
	if _, err := New(numa.AMD48(), policy.Config{Static: policy.Round1G}); err == nil {
		t.Fatal("Linux accepted round-1G")
	}
}

// TestUnsupportedConfigsFailAtConstruction: bad policies surface from
// New, not from the first Place mid-run.
func TestUnsupportedConfigsFailAtConstruction(t *testing.T) {
	topo := numa.SmallMachine(4, 2, 64<<20)
	for _, kind := range []policy.Kind{"nosuch", "bind:9", "bind:x", ""} {
		if _, err := New(topo, policy.Config{Static: kind}); err == nil {
			t.Errorf("New accepted %q", kind)
		}
	}
	if _, err := New(topo, policy.Config{Static: policy.Bind(1), Carrefour: true}); err == nil {
		t.Error("New stacked carrefour on bind")
	}
}

func TestInterleaveSpreads(t *testing.T) {
	topo := numa.SmallMachine(4, 2, 64<<20)
	b, err := New(topo, policy.Config{Static: policy.Interleave})
	if err != nil {
		t.Fatal(err)
	}
	r := engine.NewRegion("r", engine.RegionDist, 0, 4)
	if _, err := b.Place(r, 400, 0); err != nil {
		t.Fatal(err)
	}
	for n, share := range r.Dist() {
		if share != 0.25 {
			t.Fatalf("node %d share = %v, want exactly 0.25", n, share)
		}
	}
}

func TestBindPlacesOnBoundNode(t *testing.T) {
	topo := numa.SmallMachine(4, 2, 64<<20)
	b, err := New(topo, policy.Config{Static: policy.Bind(2)})
	if err != nil {
		t.Fatal(err)
	}
	r := engine.NewRegion("r", engine.RegionPrivate, 0, 4)
	if _, err := b.Place(r, 100, 0); err != nil { // toucher ignored
		t.Fatal(err)
	}
	if d := r.Dist(); d[2] != 1 {
		t.Fatalf("bind:2 distribution = %v, want all on node 2", d)
	}
}

// TestBindFallsBackWhenFull: the preferred node fills and the overflow
// lands elsewhere instead of failing (preferred-node semantics).
func TestBindFallsBackWhenFull(t *testing.T) {
	topo := numa.SmallMachine(2, 1, 1<<20) // 256 frames per node
	b, err := New(topo, policy.Config{Static: policy.Bind(0)})
	if err != nil {
		t.Fatal(err)
	}
	r := engine.NewRegion("r", engine.RegionPrivate, 0, 2)
	if _, err := b.Place(r, 400, 1); err != nil {
		t.Fatal(err)
	}
	d := r.Dist()
	if d[0] < 0.5 || d[1] == 0 {
		t.Fatalf("bind fallback distribution wrong: %v", d)
	}
}

// TestLeastLoadedBalancesFreeMemory: after skewing node 0 with a
// dedicated fill, least-loaded pours new pages into the other nodes
// first.
func TestLeastLoadedBalancesFreeMemory(t *testing.T) {
	topo := numa.SmallMachine(4, 2, 1<<20)
	b, err := New(topo, policy.Config{Static: policy.LeastLoaded})
	if err != nil {
		t.Fatal(err)
	}
	skew := engine.NewRegion("skew", engine.RegionPrivate, 0, 4)
	for i := 0; i < 64; i++ {
		mfn, err := b.Alloc.Alloc(0, mem.Order4K)
		if err != nil {
			t.Fatal(err)
		}
		skew.AddPage(mem.PFN(mfn), 0)
	}
	r := engine.NewRegion("r", engine.RegionDist, 0, 4)
	if _, err := b.Place(r, 96, 0); err != nil {
		t.Fatal(err)
	}
	d := r.Dist()
	if d[0] != 0 {
		t.Fatalf("least-loaded used the fullest node: %v", d)
	}
	for n := 1; n < 4; n++ {
		if d[n] == 0 {
			t.Fatalf("least-loaded left node %d empty: %v", n, d)
		}
	}
}

func TestFirstTouchPlacesOnToucher(t *testing.T) {
	topo := numa.SmallMachine(4, 2, 64<<20)
	b, err := New(topo, policy.Config{Static: policy.FirstTouch})
	if err != nil {
		t.Fatal(err)
	}
	r := engine.NewRegion("r", engine.RegionPrivate, 0, 4)
	if _, err := b.Place(r, 100, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Len(); i++ {
		if r.NodeOf(i) != 2 {
			t.Fatalf("page %d on node %d, want 2", i, r.NodeOf(i))
		}
	}
}

func TestRound4KSpreads(t *testing.T) {
	topo := numa.SmallMachine(4, 2, 64<<20)
	b, _ := New(topo, policy.Config{Static: policy.Round4K})
	r := engine.NewRegion("r", engine.RegionDist, 0, 4)
	if _, err := b.Place(r, 400, 0); err != nil {
		t.Fatal(err)
	}
	for n, share := range r.Dist() {
		if share < 0.24 || share > 0.26 {
			t.Fatalf("node %d share = %v, want 0.25", n, share)
		}
	}
}

func TestMigrateMovesFrame(t *testing.T) {
	topo := numa.SmallMachine(4, 2, 64<<20)
	b, _ := New(topo, policy.Config{Static: policy.FirstTouch})
	r := engine.NewRegion("r", engine.RegionPrivate, 0, 4)
	b.Place(r, 1, 0)
	old := mem.MFN(r.Pages[0])
	if !b.Migrate(r, 0, 3) {
		t.Fatal("migration refused")
	}
	if r.NodeOf(0) != 3 {
		t.Fatal("region placement not updated")
	}
	if b.Alloc.NodeOf(mem.MFN(r.Pages[0])) != 3 {
		t.Fatal("frame not on target node")
	}
	if mem.MFN(r.Pages[0]) == old {
		t.Fatal("page kept its old frame")
	}
	if b.Migrate(r, 0, 3) {
		t.Fatal("same-node migration reported success")
	}
}

// TestMigrateInvalidatesCachedDist: the engine hands out cached
// distribution slices, so a migration through the backend must be
// visible in a previously read distribution's successor.
func TestMigrateInvalidatesCachedDist(t *testing.T) {
	topo := numa.SmallMachine(4, 2, 64<<20)
	b, _ := New(topo, policy.Config{Static: policy.FirstTouch})
	r := engine.NewRegion("r", engine.RegionPrivate, 0, 4)
	b.Place(r, 10, 0)
	if d := r.Dist(); d[0] != 1 {
		t.Fatalf("dist after place = %v", d)
	}
	if !b.Migrate(r, 0, 3) {
		t.Fatal("migration refused")
	}
	if d := r.Dist(); d[0] != 0.9 || d[3] != 0.1 {
		t.Fatalf("cached dist stale after backend migration: %v", d)
	}
}

func TestReleaseRestoresMemory(t *testing.T) {
	topo := numa.SmallMachine(2, 2, 64<<20)
	b, _ := New(topo, policy.Config{Static: policy.Round4K})
	free := b.Alloc.TotalFreeBytes()
	r := engine.NewRegion("r", engine.RegionDist, 0, 2)
	b.Place(r, 1000, 0)
	if b.Alloc.TotalFreeBytes() != free-1000*mem.PageSize {
		t.Fatal("allocation not accounted")
	}
	b.Release(r)
	if b.Alloc.TotalFreeBytes() != free {
		t.Fatal("release leaked")
	}
}

func TestFallbackWhenNodeFull(t *testing.T) {
	topo := numa.SmallMachine(2, 1, 1<<20) // 256 frames per node
	b, _ := New(topo, policy.Config{Static: policy.FirstTouch})
	r := engine.NewRegion("r", engine.RegionPrivate, 0, 2)
	// Ask for more than node 0 holds: the overflow must land on node 1
	// rather than failing (§3.1).
	if _, err := b.Place(r, 400, 0); err != nil {
		t.Fatal(err)
	}
	d := r.Dist()
	if d[0] < 0.5 || d[1] == 0 {
		t.Fatalf("fallback distribution wrong: %v", d)
	}
}

func TestPlatformCharacteristics(t *testing.T) {
	topo := numa.AMD48()
	b, _ := New(topo, policy.Config{Static: policy.FirstTouch})
	if b.Virtualized() {
		t.Fatal("native backend claims virtualization")
	}
	path, placement := b.IO()
	if path != iosim.PathNative || placement != iosim.BufferSingleNode {
		t.Fatal("native I/O path wrong")
	}
	if b.ChurnOverhead(66667, 48) != 0 {
		t.Fatal("native churn overhead nonzero")
	}
	if b.CPUShare(0) != 1 {
		t.Fatal("native CPU share != 1")
	}
	if len(b.HomeNodes()) != 8 {
		t.Fatal("native home nodes wrong")
	}
	// Thread pinning walks CPUs in machine order.
	if b.ThreadNode(0) != 0 || b.ThreadNode(6) != 1 || b.ThreadNode(47) != 7 {
		t.Fatal("thread pinning wrong")
	}
}
