// Package workload models the 29 applications of the paper's evaluation
// (Parsec 2.1, NPB 3.3, Mosbench, X-Stream, YCSB on Cassandra and
// MongoDB) as synthetic memory-access profiles.
//
// A NUMA placement policy only ever observes an application through the
// page-level pattern of its memory accesses, so each profile captures
// exactly the characteristics the paper shows drive every result:
//
//   - how the address space is first-touched (by a master thread, by
//     each thread privately, or distributed), which determines placement
//     under first-touch — calibrated from the Table 1 imbalance columns;
//   - how concentrated the access stream is on a few hot pages, which
//     determines the residual imbalance under round-4K;
//   - how memory-bound the computation is, which scales the performance
//     effect of placement;
//   - disk demand, context-switch rate and footprint, taken directly
//     from Table 2;
//   - allocator churn (the Streamflow-based Mosbench suite releases a
//     page every ~15 µs per core, §4.2.3).
//
// The access-share decomposition inverts the Table 1 imbalance metric:
// with N nodes, a fraction f of accesses concentrated on one node gives
// a relative standard deviation of √(N−1)·f (≈ 265 % for N = 8), so the
// hot-page share is set to r4kImbalance/265 and the master share to
// ftImbalance/265 minus that.
package workload

import "fmt"

// MaxImbalancePct is the relative standard deviation (in percent) of a
// fully concentrated access distribution on an 8-node machine: √7 × 100.
const MaxImbalancePct = 264.575

// Profile describes one application.
type Profile struct {
	Name  string
	Suite string

	// FootprintMB is the resident memory footprint (Table 2).
	FootprintMB float64
	// DiskMBps is the sustained disk demand (Table 2).
	DiskMBps float64
	// DiskReqBytes is the average I/O request size.
	DiskReqBytes float64
	// IOPenalty divides the virtualized I/O path capacity for
	// applications with pathological virtual-I/O behaviour (psearchy,
	// §5.5). 1 means none.
	IOPenalty float64
	// CtxSwitchKps is intentional context switches per second per core
	// (Table 2, interpreted per-core).
	CtxSwitchKps float64
	// UsesPthreadSync marks blocking that goes through pthread mutexes
	// and condition variables, removable by the MCS-spin mitigation
	// (only facesim and streamcluster in the paper, §5.3.2).
	UsesPthreadSync bool
	// SyncAmplification scales the stall caused by one wakeup (convoy
	// effects).
	SyncAmplification float64
	// ReleasesPerSec is the page-release rate per core (Streamflow
	// churn, §4.2.3).
	ReleasesPerSec float64

	// MemIntensity is the fraction of ideal (local, uncontended)
	// execution time spent waiting on LLC-missing memory accesses;
	// it determines how strongly placement changes completion time.
	MemIntensity float64
	// ReadFrac is the fraction of misses that are reads.
	ReadFrac float64

	// Access-stream decomposition (fractions of LLC misses, summing
	// to 1):
	HotShare     float64 // hottest-page set, unbalanceable by static policies
	MasterShare  float64 // memory first-touched by the master thread
	PrivateShare float64 // per-thread private memory
	DistShare    float64 // shared memory first-touched by all threads

	// CrossShare is the fraction of distributed-shared accesses that
	// cross slice boundaries: near 0 for nearest-neighbour codes, near 1
	// for all-to-all patterns (FFT transpose, map-reduce shuffle).
	CrossShare float64

	// WorkingSet is the fraction of the footprint that carries the
	// accesses (1 = uniform). A small working set inside a large
	// footprint concentrates on few round-1G regions, which is what
	// makes Xen's default placement catastrophic for ft.C.
	WorkingSet float64

	// Burstiness is the per-interval probability of a temporary remote
	// access burst against a private region — the pattern that misleads
	// Carrefour on the paper's "low" applications (§3.5.2).
	Burstiness float64

	// BaselineSeconds is the virtual completion time of the native-Linux
	// first-touch run, which anchors the application's total work.
	BaselineSeconds float64

	// Paper reference values (Table 1), for side-by-side reporting.
	PaperFTImb   float64
	PaperR4KImb  float64
	PaperFTLink  float64
	PaperR4KLink float64

	// Paper best policies (Table 4), as strings for reporting:
	// "FT", "FT/C", "R4K", "R4K/C", "R1G".
	PaperBestLinux string
	PaperBestXen   string
}

// Validate checks internal consistency.
func (p *Profile) Validate() error {
	sum := p.HotShare + p.MasterShare + p.PrivateShare + p.DistShare
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("workload %s: access shares sum to %.4f", p.Name, sum)
	}
	if p.MemIntensity < 0 || p.MemIntensity > 1 {
		return fmt.Errorf("workload %s: MemIntensity %.3f out of range", p.Name, p.MemIntensity)
	}
	if p.FootprintMB <= 0 || p.BaselineSeconds <= 0 {
		return fmt.Errorf("workload %s: non-positive footprint or baseline", p.Name)
	}
	return nil
}

// CPUNsPerUnit returns the compute nanoseconds per work unit, defined so
// that one work unit also issues exactly one LLC miss: a fully
// memory-bound application (MemIntensity→1) has almost no compute per
// miss.
//
//xnuma:noalloc
func (p *Profile) CPUNsPerUnit() float64 {
	const localMissNs = 71.0 // 156 cycles at 2.2 GHz
	mi := p.MemIntensity
	if mi < 0.01 {
		mi = 0.01
	}
	return localMissNs * (1 - mi) / mi
}

// spec is the compact calibration row for one application.
type spec struct {
	name, suite    string
	footMB         float64
	diskMBps       float64
	reqBytes       float64
	ioPenalty      float64
	ctxKps         float64
	pthread        bool
	syncAmp        float64
	releases       float64
	mi             float64
	readFrac       float64
	privRatio      float64 // private share of the non-hot, non-master rest
	cross          float64 // CrossShare (0 = default 0.25)
	burst          float64
	baseSec        float64
	ftImb, r4kImb  float64
	ftLink, rkLink float64
	bestLinux      string
	bestXen        string
}

func (s spec) profile() Profile {
	hot := s.r4kImb / MaxImbalancePct
	if hot > 0.85 {
		hot = 0.85
	}
	master := s.ftImb/MaxImbalancePct - hot
	if master < 0 {
		master = 0
	}
	rest := 1 - hot - master
	if rest < 0 {
		rest = 0
	}
	p := Profile{
		Name: s.name, Suite: s.suite,
		FootprintMB: s.footMB, DiskMBps: s.diskMBps,
		DiskReqBytes: s.reqBytes, IOPenalty: max1(s.ioPenalty),
		CtxSwitchKps: s.ctxKps, UsesPthreadSync: s.pthread,
		SyncAmplification: s.syncAmp, ReleasesPerSec: s.releases,
		MemIntensity: s.mi, ReadFrac: s.readFrac,
		HotShare: hot, MasterShare: master,
		PrivateShare: rest * s.privRatio, DistShare: rest * (1 - s.privRatio),
		CrossShare: s.cross, Burstiness: s.burst, BaselineSeconds: s.baseSec,
		PaperFTImb: s.ftImb, PaperR4KImb: s.r4kImb,
		PaperFTLink: s.ftLink, PaperR4KLink: s.rkLink,
		PaperBestLinux: s.bestLinux, PaperBestXen: s.bestXen,
	}
	if p.CrossShare == 0 {
		p.CrossShare = 0.25
	}
	if p.WorkingSet == 0 {
		p.WorkingSet = 1
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func max1(x float64) float64 {
	if x < 1 {
		return 1
	}
	return x
}

// specs is the calibration table: one row per application of the paper.
// Columns map to the spec struct fields in order.
var specs = []spec{
	// Parsec 2.1
	{"bodytrack", "parsec", 7, 0, 0, 1, 17.7, false, 0.8, 0, 0.30, 0.7, 0.6, 0.25, 0, 2.5, 135, 48, 9, 8, "R4K/C", "R4K/C"},
	{"facesim", "parsec", 328, 0, 0, 1, 11.7, true, 2.0, 0, 0.82, 0.6, 0.6, 0.25, 0, 3.0, 253, 27, 39, 16, "R4K", "R4K"},
	{"fluidanimate", "parsec", 223, 0, 0, 1, 4.2, false, 1.0, 0, 0.30, 0.6, 0.7, 0.2, 0.30, 2.5, 65, 16, 18, 16, "R4K/C", "R4K/C"},
	{"streamcluster", "parsec", 106, 0, 0, 1, 29.5, true, 1.5, 0, 0.85, 0.7, 0.6, 0.7, 0, 3.0, 219, 45, 31, 18, "R4K", "R4K"},
	{"swaptions", "parsec", 4, 0, 0, 1, 0, false, 1.0, 0, 0.03, 0.6, 0.6, 0.25, 0, 2.0, 175, 180, 4, 5, "R4K", "R4K"},
	{"x264", "parsec", 1129, 0, 0, 1, 0.6, false, 1.0, 0, 0.12, 0.6, 0.7, 0.25, 0.25, 2.5, 84, 28, 17, 13, "FT", "R4K"},
	// NPB 3.3
	{"bt.C", "npb", 698, 0, 0, 1, 1.2, false, 1.0, 0, 0.60, 0.5, 0.4, 0.2, 0, 3.0, 89, 8, 51, 35, "FT/C", "FT/C"},
	{"cg.C", "npb", 889, 0, 0, 1, 5.9, false, 1.0, 0, 0.97, 0.7, 0.75, 0.15, 0.30, 3.5, 7, 5, 11, 46, "FT", "FT"},
	{"dc.B", "npb", 39273, 175, 262144, 1, 0.1, false, 1.0, 0, 0.15, 0.6, 0.7, 0.3, 0.20, 4.0, 45, 19, 10, 22, "FT", "R1G"},
	{"ep.D", "npb", 49, 0, 0, 1, 0, false, 1.0, 0, 0.15, 0.6, 0.6, 0.1, 0, 2.0, 263, 116, 48, 9, "R4K", "R4K"},
	{"ft.C", "npb", 5156, 0, 0, 1, 0.3, false, 1.0, 0, 0.92, 0.6, 0.15, 1.0, 0.35, 3.5, 60, 19, 17, 46, "R4K", "R4K"},
	{"lu.C", "npb", 600, 0, 0, 1, 1.5, false, 1.0, 0, 0.50, 0.6, 0.6, 0.3, 0.30, 3.0, 47, 30, 18, 41, "R4K", "FT"},
	{"mg.D", "npb", 27095, 0, 0, 1, 1.5, false, 1.0, 0, 0.70, 0.6, 0.7, 0.2, 0.30, 4.0, 8, 1, 12, 51, "FT", "FT"},
	{"sp.C", "npb", 869, 0, 0, 1, 2.0, false, 1.0, 0, 0.88, 0.5, 0.3, 0.5, 0, 3.0, 113, 4, 43, 58, "R4K/C", "R4K/C"},
	{"ua.C", "npb", 483, 0, 0, 1, 37.4, false, 1.5, 0, 0.50, 0.6, 0.75, 0.2, 0.25, 3.0, 5, 7, 14, 37, "FT", "FT"},
	// Mosbench (Streamflow allocator)
	{"wc", "mosbench", 16682, 0, 0, 1, 3.9, false, 1.0, 30000, 0.45, 0.6, 0.5, 0.5, 0, 3.0, 101, 41, 18, 17, "FT/C", "R4K"},
	{"wr", "mosbench", 19016, 1, 65536, 1, 5.2, false, 1.0, 40000, 0.45, 0.6, 0.5, 0.5, 0, 3.0, 110, 57, 18, 18, "FT", "R4K"},
	{"wrmem", "mosbench", 11610, 5, 65536, 1, 7.5, false, 1.0, 66667, 0.45, 0.6, 0.5, 0.5, 0, 3.0, 135, 102, 10, 11, "FT", "R4K"},
	{"pca", "mosbench", 5779, 0, 0, 1, 0.3, false, 1.0, 5000, 0.85, 0.6, 0.5, 0.3, 0, 3.5, 235, 14, 52, 41, "R4K", "R4K/C"},
	{"kmeans", "mosbench", 4178, 0, 0, 1, 0.1, false, 1.0, 3000, 0.88, 0.7, 0.5, 0.3, 0, 3.5, 251, 26, 61, 42, "R4K", "R4K"},
	{"psearchy", "mosbench", 28576, 54, 65536, 7, 0.8, false, 1.0, 25000, 0.30, 0.7, 0.7, 0.4, 0.20, 3.5, 19, 8, 6, 46, "FT", "R4K"},
	{"memcached", "mosbench", 2205, 0, 0, 1, 127.1, false, 0.45, 2000, 0.06, 0.6, 0.6, 0.4, 0.20, 3.0, 85, 74, 13, 12, "FT", "R1G"},
	// X-Stream
	{"belief", "xstream", 12292, 234, 1 << 20, 1, 0, false, 1.0, 0, 0.50, 0.7, 0.5, 0.6, 0, 4.0, 206, 80, 19, 10, "R4K", "R4K/C"},
	{"bfs", "xstream", 12291, 236, 1 << 20, 1, 0, false, 1.0, 0, 0.50, 0.7, 0.5, 0.6, 0, 4.0, 190, 24, 17, 12, "R4K", "R4K"},
	{"cc", "xstream", 12291, 249, 1 << 20, 1, 0, false, 1.0, 0, 0.50, 0.7, 0.5, 0.6, 0, 4.0, 185, 31, 17, 11, "R4K/C", "R4K/C"},
	{"pagerank", "xstream", 12291, 240, 1 << 20, 1, 0, false, 1.0, 0, 0.50, 0.7, 0.5, 0.6, 0, 4.0, 183, 23, 17, 11, "R4K/C", "R4K/C"},
	{"sssp", "xstream", 12291, 261, 1 << 20, 1, 0, false, 1.0, 0, 0.50, 0.7, 0.5, 0.6, 0, 4.0, 193, 10, 17, 11, "R4K/C", "R4K/C"},
	// YCSB
	{"cassandra", "ycsb", 1111, 16, 65536, 1, 10.7, false, 1.5, 0, 0.06, 0.6, 0.6, 0.4, 0.20, 3.0, 65, 50, 14, 14, "FT/C", "R1G"},
	{"mongodb", "ycsb", 1092, 184, 131072, 1, 14.6, false, 1.5, 0, 0.10, 0.6, 0.5, 0.4, 0, 3.0, 130, 95, 16, 14, "FT/C", "R1G"},
}

// workingSets overrides the default uniform working set for
// applications whose accesses concentrate in a fraction of their
// footprint.
var workingSets = map[string]float64{
	"ft.C":   0.25, // FFT transpose buffers within the 5 GiB footprint
	"kmeans": 0.20, // current chunk + centroids within the 4 GiB of points
	"pca":    0.25, // active matrix stripe
}

var byName = func() map[string]Profile {
	m := make(map[string]Profile, len(specs))
	for _, s := range specs {
		if _, dup := m[s.name]; dup {
			panic("workload: duplicate profile " + s.name)
		}
		p := s.profile()
		if ws, ok := workingSets[s.name]; ok {
			p.WorkingSet = ws
		}
		m[s.name] = p
	}
	return m
}()

// All returns the 29 profiles in the paper's presentation order.
func All() []Profile {
	out := make([]Profile, 0, len(specs))
	for _, s := range specs {
		out = append(out, byName[s.name])
	}
	return out
}

// Get returns the named profile.
func Get(name string) (Profile, error) {
	p, ok := byName[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown application %q", name)
	}
	return p, nil
}

// Names returns the application names in order.
func Names() []string {
	out := make([]string, 0, len(specs))
	for _, s := range specs {
		out = append(out, s.name)
	}
	return out
}
