package workload

import (
	"math"
	"testing"
)

func TestAllProfilesValid(t *testing.T) {
	all := All()
	if len(all) != 29 {
		t.Fatalf("have %d profiles, the paper evaluates 29", len(all))
	}
	for _, p := range all {
		p := p
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestSuites(t *testing.T) {
	counts := map[string]int{}
	for _, p := range All() {
		counts[p.Suite]++
	}
	want := map[string]int{"parsec": 6, "npb": 9, "mosbench": 7, "xstream": 5, "ycsb": 2}
	for suite, n := range want {
		if counts[suite] != n {
			t.Errorf("suite %s has %d apps, want %d", suite, counts[suite], n)
		}
	}
}

func TestGet(t *testing.T) {
	p, err := Get("cg.C")
	if err != nil || p.Name != "cg.C" {
		t.Fatalf("Get(cg.C) = %v, %v", p.Name, err)
	}
	if _, err := Get("nonexistent"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestImbalanceInversion(t *testing.T) {
	// HotShare + MasterShare must reconstruct the paper's first-touch
	// imbalance through the √(N−1) relation.
	for _, p := range All() {
		wantConcentration := p.PaperFTImb / MaxImbalancePct
		got := p.HotShare + p.MasterShare
		// HotShare is capped at 0.85, and when the round-4K imbalance
		// exceeds the first-touch one (swaptions) the hot share alone
		// already exceeds the target; skip those boundary rows.
		if p.HotShare == 0.85 || p.PaperR4KImb > p.PaperFTImb {
			continue
		}
		if math.Abs(got-wantConcentration) > 0.01 {
			t.Errorf("%s: hot+master = %.3f, want %.3f (ftImb %.0f%%)",
				p.Name, got, wantConcentration, p.PaperFTImb)
		}
	}
}

func TestTable2Anchors(t *testing.T) {
	// Spot-check exact Table 2 values.
	checks := []struct {
		app  string
		disk float64
		ctx  float64
		foot float64
	}{
		{"dc.B", 175, 0.1, 39273},
		{"memcached", 0, 127.1, 2205},
		{"sssp", 261, 0, 12291},
		{"swaptions", 0, 0, 4},
		{"psearchy", 54, 0.8, 28576},
	}
	for _, c := range checks {
		p, err := Get(c.app)
		if err != nil {
			t.Fatal(err)
		}
		if p.DiskMBps != c.disk || p.CtxSwitchKps != c.ctx || p.FootprintMB != c.foot {
			t.Errorf("%s: disk/ctx/foot = %v/%v/%v, want %v/%v/%v",
				c.app, p.DiskMBps, p.CtxSwitchKps, p.FootprintMB, c.disk, c.ctx, c.foot)
		}
	}
}

func TestWrmemReleaseRate(t *testing.T) {
	p, _ := Get("wrmem")
	// §4.2.3: wrmem releases a page every 15 µs per core.
	if math.Abs(p.ReleasesPerSec-1e9/15000) > 1 {
		t.Fatalf("wrmem releases/s = %v, want ~66667", p.ReleasesPerSec)
	}
}

func TestOnlyPthreadAppsAreMCSEligible(t *testing.T) {
	// §5.3.2: the MCS mitigation was applied to facesim and
	// streamcluster only.
	for _, p := range All() {
		want := p.Name == "facesim" || p.Name == "streamcluster"
		if p.UsesPthreadSync != want {
			t.Errorf("%s: UsesPthreadSync = %v, want %v", p.Name, p.UsesPthreadSync, want)
		}
	}
}

func TestMosbenchChurn(t *testing.T) {
	for _, name := range []string{"wc", "wr", "wrmem", "pca", "kmeans", "psearchy", "memcached"} {
		p, _ := Get(name)
		if p.ReleasesPerSec <= 0 {
			t.Errorf("%s (Streamflow allocator) has no release churn", name)
		}
	}
	for _, name := range []string{"cg.C", "facesim", "belief"} {
		p, _ := Get(name)
		if p.ReleasesPerSec != 0 {
			t.Errorf("%s has unexpected churn", name)
		}
	}
}

func TestBurstinessOnlyOnLowApps(t *testing.T) {
	// Carrefour-misleading bursts model the "low"-class degradation;
	// high-imbalance apps must not have them.
	for _, p := range All() {
		if p.Burstiness > 0 && p.PaperFTImb > 130 {
			t.Errorf("%s is high-class but bursty", p.Name)
		}
	}
}

func TestCPUNsPerUnit(t *testing.T) {
	p, _ := Get("swaptions") // nearly CPU-bound
	if p.CPUNsPerUnit() < 1000 {
		t.Fatalf("swaptions cpu/unit = %v, want compute-dominated", p.CPUNsPerUnit())
	}
	q, _ := Get("cg.C") // nearly memory-bound
	if q.CPUNsPerUnit() > 5 {
		t.Fatalf("cg.C cpu/unit = %v, want memory-dominated", q.CPUNsPerUnit())
	}
}

func TestWorkingSetDefaults(t *testing.T) {
	p, _ := Get("bodytrack")
	if p.WorkingSet != 1 {
		t.Fatalf("default working set = %v", p.WorkingSet)
	}
	q, _ := Get("kmeans")
	if q.WorkingSet >= 1 || q.WorkingSet <= 0 {
		t.Fatalf("kmeans working set = %v", q.WorkingSet)
	}
}

func TestNamesMatchAll(t *testing.T) {
	names := Names()
	all := All()
	if len(names) != len(all) {
		t.Fatal("Names/All length mismatch")
	}
	for i := range names {
		if names[i] != all[i].Name {
			t.Fatalf("order mismatch at %d: %s vs %s", i, names[i], all[i].Name)
		}
	}
}

func TestPaperBestPoliciesWellFormed(t *testing.T) {
	valid := map[string]bool{"FT": true, "FT/C": true, "R4K": true, "R4K/C": true, "R1G": true}
	for _, p := range All() {
		if !valid[p.PaperBestLinux] {
			t.Errorf("%s: bad PaperBestLinux %q", p.Name, p.PaperBestLinux)
		}
		if !valid[p.PaperBestXen] {
			t.Errorf("%s: bad PaperBestXen %q", p.Name, p.PaperBestXen)
		}
		if p.PaperBestLinux == "R1G" {
			t.Errorf("%s: Linux has no round-1G", p.Name)
		}
	}
}
