package mem

import (
	"reflect"
	"testing"

	"repro/internal/numa"
)

// TestResetRestoresPristineFreeLists pins the warm-pool reset invariant
// at the bottom layer: after an arbitrary alloc/free history — splits,
// partial frees, coalescing, cross-order churn — Reset must leave every
// node's free lists bit-identical to a freshly constructed allocator:
// same blocks, same orders, same per-order LIFO order, same free-set
// contents. Any deviation would make allocations on a pooled machine
// diverge from a cold-built one.
func TestResetRestoresPristineFreeLists(t *testing.T) {
	topo := numa.AMD48Scaled(256)
	a := NewAllocator(topo)
	fresh := NewAllocator(topo)

	// Churn: allocate a mix of orders on every node, free only some of
	// it (odd blocks), so the free lists end up far from pristine.
	var held []FreeBlock
	for n := 0; n < topo.NumNodes(); n++ {
		node := numa.NodeID(n)
		for i, order := range []int{0, 0, 3, 1, 0, 5, 2} {
			mfn, err := a.Alloc(node, order)
			if err != nil {
				t.Fatalf("node %d alloc order %d: %v", n, order, err)
			}
			if i%2 == 1 {
				a.Free(mfn, order)
			} else {
				held = append(held, FreeBlock{Start: mfn, Order: order})
			}
		}
	}
	if reflect.DeepEqual(a.nodes, fresh.nodes) {
		t.Fatal("churn did not perturb the allocator; test is vacuous")
	}
	// Leak the held blocks on purpose: Reset must restore pristine shape
	// regardless of outstanding allocations (the pool resets machines
	// whose domains were recycled, not individually freed).
	_ = held

	a.Reset()

	for n := range a.nodes {
		got, want := &a.nodes[n], &fresh.nodes[n]
		if got.freeBytes != want.freeBytes {
			t.Errorf("node %d freeBytes = %d, want %d", n, got.freeBytes, want.freeBytes)
		}
		for o := range got.freeList {
			g, w := got.freeList[o], want.freeList[o]
			if len(g) == 0 && len(w) == 0 {
				continue
			}
			if !reflect.DeepEqual(g, w) {
				t.Errorf("node %d order %d free list = %v, want %v", n, o, g, w)
			}
		}
		if !reflect.DeepEqual(got.freeSet, want.freeSet) {
			t.Errorf("node %d free set diverges after Reset", n)
		}
	}

	// And the restored allocator must behave identically: the next
	// allocation sequence matches a fresh allocator's bit-for-bit.
	for n := 0; n < topo.NumNodes(); n++ {
		node := numa.NodeID(n)
		for _, order := range []int{1, 0, 4} {
			got, err1 := a.Alloc(node, order)
			want, err2 := fresh.Alloc(node, order)
			if err1 != nil || err2 != nil {
				t.Fatalf("post-reset alloc: %v / %v", err1, err2)
			}
			if got != want {
				t.Fatalf("post-reset alloc on node %d order %d = %d, fresh gives %d", n, order, got, want)
			}
		}
	}
}
