package mem

import (
	"testing"

	"repro/internal/numa"
)

// churn drives the allocator through a deterministic alloc/free pattern
// that fragments node 0's free lists across several orders.
func churn(t *testing.T) *Allocator {
	t.Helper()
	a := NewAllocator(numa.SmallMachine(2, 2, 256<<20))
	var held []MFN
	for i := 0; i < 64; i++ {
		mfn, err := a.Alloc(0, Order4K)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, mfn)
	}
	// Free every other frame so the buddy allocator keeps singletons at
	// low orders instead of coalescing everything back.
	for i := 0; i < len(held); i += 2 {
		a.Free(held[i], Order4K)
	}
	return a
}

// TestFreeBlocksDeterministic is the regression test for the
// FreeBlocks map-iteration finding: the snapshot is now built from the
// per-order free lists. It must stay sorted, mirror the free-byte
// accounting exactly, and be identical across identical runs.
func TestFreeBlocksDeterministic(t *testing.T) {
	a := churn(t)
	blocks := churn(t).FreeBlocks(0)
	again := a.FreeBlocks(0)
	if len(blocks) != len(again) {
		t.Fatalf("snapshot lengths differ between identical runs: %d vs %d", len(blocks), len(again))
	}
	var freeBytes int64
	for i, b := range blocks {
		if again[i] != b {
			t.Fatalf("block %d differs between identical runs: %+v vs %+v", i, b, again[i])
		}
		if i > 0 && blocks[i-1].Start >= b.Start {
			t.Fatalf("snapshot not sorted: block %d start %d after %d", i, b.Start, blocks[i-1].Start)
		}
		freeBytes += (1 << b.Order) * PageSize
	}
	if got := a.FreeBytes(0); freeBytes != got {
		t.Fatalf("snapshot covers %d free bytes, accounting says %d", freeBytes, got)
	}
}
