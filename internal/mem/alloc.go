// Package mem manages the machine memory: each NUMA node's bank is carved
// into frames handed out by a per-node buddy allocator supporting the
// three region sizes Xen allocates (4 KiB pages, 2 MiB and 1 GiB
// regions). Frames are identified by machine frame numbers (MFNs) global
// to the machine; the node owning an MFN is recovered from the static
// NUMA-region map, exactly as hardware routes accesses (§3 of the paper).
package mem

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/numa"
)

// PageSize is the base frame size.
const PageSize = 4 << 10 // 4 KiB

// MFN is a machine frame number: a machine address divided by PageSize.
type MFN uint64

// PFN is a guest physical frame number: an address in a virtual machine's
// physical address space divided by PageSize.
type PFN uint64

// NoMFN is the sentinel for "not mapped".
const NoMFN = MFN(^uint64(0))

// Buddy orders for the three Xen allocation granularities.
const (
	Order4K  = 0  // 4 KiB
	Order2M  = 9  // 2 MiB = 512 frames
	Order1G  = 18 // 1 GiB = 262144 frames
	maxOrder = Order1G
)

// FramesOf returns the frame count of a block of the given order.
func FramesOf(order int) uint64 { return 1 << uint(order) }

// ErrNoMemory is returned when a node (or the machine) cannot satisfy an
// allocation at the requested order.
var ErrNoMemory = errors.New("mem: out of memory")

// Allocator owns the machine memory of a Topology.
type Allocator struct {
	topo          *numa.Topology
	framesPerNode uint64
	nodes         []nodeAlloc
}

type nodeAlloc struct {
	base      MFN // first frame of the node's bank
	frames    uint64
	freeList  [maxOrder + 1][]MFN // LIFO free lists per order
	freeSet   map[MFN]int         // free block start → order (for coalescing)
	freeBytes int64
}

// NewAllocator carves topo's memory into per-node buddy pools. All nodes
// must have the same bank size (true for every machine in this repo) and
// the bank size must be a multiple of the largest order.
func NewAllocator(topo *numa.Topology) *Allocator {
	a := &Allocator{topo: topo}
	if topo.NumNodes() == 0 {
		panic("mem: topology has no nodes")
	}
	per := uint64(topo.Nodes[0].MemBytes) / PageSize
	for _, n := range topo.Nodes {
		if uint64(n.MemBytes)/PageSize != per {
			panic("mem: heterogeneous node sizes not supported")
		}
	}
	a.framesPerNode = per
	for i := range topo.Nodes {
		na := nodeAlloc{
			base:    MFN(uint64(i) * per),
			frames:  per,
			freeSet: make(map[MFN]int),
		}
		na.seed()
		a.nodes = append(a.nodes, na)
	}
	return a
}

// seed fills the node's free lists with the largest aligned blocks that
// fit, lowest address first — the pristine shape every allocation
// sequence starts from. It assumes the lists and set are empty.
func (na *nodeAlloc) seed() {
	na.freeBytes = int64(na.frames) * PageSize
	start, remaining := na.base, na.frames
	for remaining > 0 {
		order := maxOrder
		for FramesOf(order) > remaining || uint64(start)%FramesOf(order) != 0 {
			order--
			if order < 0 {
				panic("mem: unalignable bank")
			}
		}
		na.freeList[order] = append(na.freeList[order], start)
		na.freeSet[start] = order
		start += MFN(FramesOf(order))
		remaining -= FramesOf(order)
	}
}

// Reset returns every node's free lists to the pristine shape
// NewAllocator seeds — same blocks, same per-order LIFO order — no
// matter what sequence of Alloc and Free calls ran in between. The
// existing list and set storage is reused, so a reset machine allocates
// nothing new. It is the bottom layer of the warm-machine reset
// protocol: every allocation after a Reset behaves bit-for-bit as on a
// freshly built allocator.
func (a *Allocator) Reset() {
	for i := range a.nodes {
		na := &a.nodes[i]
		for o := range na.freeList {
			na.freeList[o] = na.freeList[o][:0]
		}
		clear(na.freeSet)
		na.seed()
	}
}

// NodeOf returns the node owning mfn (the NUMA-region map).
func (a *Allocator) NodeOf(mfn MFN) numa.NodeID {
	n := uint64(mfn) / a.framesPerNode
	if n >= uint64(len(a.nodes)) {
		panic(fmt.Sprintf("mem: MFN %d outside machine memory", mfn))
	}
	return numa.NodeID(n)
}

// FramesPerNode returns each node's frame count.
func (a *Allocator) FramesPerNode() uint64 { return a.framesPerNode }

// FreeBytes returns the free memory on node.
func (a *Allocator) FreeBytes(node numa.NodeID) int64 { return a.nodes[node].freeBytes }

// TotalFreeBytes returns machine-wide free memory.
func (a *Allocator) TotalFreeBytes() int64 {
	var sum int64
	for i := range a.nodes {
		sum += a.nodes[i].freeBytes
	}
	return sum
}

// Alloc allocates a block of 2^order frames on node. It fails with
// ErrNoMemory when the node cannot satisfy the request even after
// splitting larger blocks; it never falls back to another node (callers
// implement their own fallback policy, e.g. first-touch round-robin).
func (a *Allocator) Alloc(node numa.NodeID, order int) (MFN, error) {
	if order < 0 || order > maxOrder {
		panic(fmt.Sprintf("mem: invalid order %d", order))
	}
	na := &a.nodes[node]
	// Find the smallest populated order >= requested.
	from := order
	for from <= maxOrder && len(na.freeList[from]) == 0 {
		from++
	}
	if from > maxOrder {
		return NoMFN, fmt.Errorf("%w: node %d order %d", ErrNoMemory, node, order)
	}
	// Pop and split down to the requested order.
	block := na.pop(from)
	for from > order {
		from--
		buddy := block + MFN(FramesOf(from))
		na.push(from, buddy)
	}
	na.freeBytes -= int64(FramesOf(order)) * PageSize
	return block, nil
}

// Free returns a block allocated at the given order, coalescing buddies.
func (a *Allocator) Free(mfn MFN, order int) {
	if order < 0 || order > maxOrder {
		panic(fmt.Sprintf("mem: invalid order %d", order))
	}
	node := a.NodeOf(mfn)
	na := &a.nodes[node]
	if uint64(mfn)%FramesOf(order) != 0 {
		panic(fmt.Sprintf("mem: freeing misaligned block %d at order %d", mfn, order))
	}
	if _, already := na.freeSet[mfn]; already {
		panic(fmt.Sprintf("mem: double free of MFN %d", mfn))
	}
	na.freeBytes += int64(FramesOf(order)) * PageSize
	// Coalesce upward while the buddy is free at the same order and the
	// merged block stays within the node bank.
	for order < maxOrder {
		buddy := mfn ^ MFN(FramesOf(order))
		bo, free := na.freeSet[buddy]
		if !free || bo != order {
			break
		}
		na.remove(order, buddy)
		if buddy < mfn {
			mfn = buddy
		}
		order++
	}
	na.push(order, mfn)
}

func (na *nodeAlloc) pop(order int) MFN {
	l := na.freeList[order]
	block := l[len(l)-1]
	na.freeList[order] = l[:len(l)-1]
	delete(na.freeSet, block)
	return block
}

func (na *nodeAlloc) push(order int, block MFN) {
	na.freeList[order] = append(na.freeList[order], block)
	na.freeSet[block] = order
}

func (na *nodeAlloc) remove(order int, block MFN) {
	l := na.freeList[order]
	for i, b := range l {
		if b == block {
			l[i] = l[len(l)-1]
			na.freeList[order] = l[:len(l)-1]
			delete(na.freeSet, block)
			return
		}
	}
	panic(fmt.Sprintf("mem: block %d not on free list at order %d", block, order))
}

// LargestFree returns the largest order with a free block on node, or -1
// when the node is exhausted.
func (a *Allocator) LargestFree(node numa.NodeID) int {
	na := &a.nodes[node]
	for o := maxOrder; o >= 0; o-- {
		if len(na.freeList[o]) > 0 {
			return o
		}
	}
	return -1
}

// FreeBlocks returns a sorted snapshot of node's free blocks (start,
// order) for inspection in tests.
func (a *Allocator) FreeBlocks(node numa.NodeID) []FreeBlock {
	na := &a.nodes[node]
	out := make([]FreeBlock, 0, len(na.freeSet))
	for o := range na.freeList {
		for _, b := range na.freeList[o] {
			out = append(out, FreeBlock{Start: b, Order: o})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// FreeBlock describes one free extent.
type FreeBlock struct {
	Start MFN
	Order int
}
