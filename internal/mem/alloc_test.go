package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/numa"
)

func testAlloc(t *testing.T) *Allocator {
	t.Helper()
	// 2 nodes × 256 MiB keeps tests fast; 256 MiB = 65536 frames/node.
	return NewAllocator(numa.SmallMachine(2, 2, 256<<20))
}

func TestAllocFreeRoundTrip(t *testing.T) {
	a := testAlloc(t)
	before := a.FreeBytes(0)
	mfn, err := a.Alloc(0, Order4K)
	if err != nil {
		t.Fatal(err)
	}
	if a.NodeOf(mfn) != 0 {
		t.Fatalf("frame %d not on node 0", mfn)
	}
	if got := a.FreeBytes(0); got != before-PageSize {
		t.Fatalf("free bytes %d, want %d", got, before-PageSize)
	}
	a.Free(mfn, Order4K)
	if got := a.FreeBytes(0); got != before {
		t.Fatalf("free bytes after free %d, want %d", got, before)
	}
}

func TestAllocRespectsNode(t *testing.T) {
	a := testAlloc(t)
	for i := 0; i < 1000; i++ {
		mfn, err := a.Alloc(1, Order4K)
		if err != nil {
			t.Fatal(err)
		}
		if a.NodeOf(mfn) != 1 {
			t.Fatalf("allocation on node 1 returned frame of node %d", a.NodeOf(mfn))
		}
	}
}

func TestAllocUniqueFrames(t *testing.T) {
	a := testAlloc(t)
	seen := make(map[MFN]bool)
	for i := 0; i < 10000; i++ {
		mfn, err := a.Alloc(0, Order4K)
		if err != nil {
			t.Fatal(err)
		}
		if seen[mfn] {
			t.Fatalf("frame %d handed out twice", mfn)
		}
		seen[mfn] = true
	}
}

func TestAllocLargeOrders(t *testing.T) {
	a := testAlloc(t)
	// 256 MiB per node cannot hold a 1 GiB block.
	if _, err := a.Alloc(0, Order1G); err == nil {
		t.Fatal("1 GiB allocation on a 256 MiB node succeeded")
	}
	mfn, err := a.Alloc(0, Order2M)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(mfn)%FramesOf(Order2M) != 0 {
		t.Fatalf("2 MiB block %d misaligned", mfn)
	}
	a.Free(mfn, Order2M)
}

func TestExhaustion(t *testing.T) {
	a := NewAllocator(numa.SmallMachine(1, 1, 1<<20)) // 256 frames
	var frames []MFN
	for {
		mfn, err := a.Alloc(0, Order4K)
		if err != nil {
			break
		}
		frames = append(frames, mfn)
	}
	if len(frames) != 256 {
		t.Fatalf("allocated %d frames from a 256-frame node", len(frames))
	}
	if a.FreeBytes(0) != 0 {
		t.Fatalf("free bytes = %d after exhaustion", a.FreeBytes(0))
	}
	for _, f := range frames {
		a.Free(f, Order4K)
	}
	if a.FreeBytes(0) != 1<<20 {
		t.Fatal("free bytes not restored after freeing everything")
	}
}

func TestCoalescing(t *testing.T) {
	a := NewAllocator(numa.SmallMachine(1, 1, 8<<20)) // 2048 frames
	// Fragment completely, then free: the allocator must coalesce back
	// to being able to serve a 2 MiB block.
	var frames []MFN
	for i := 0; i < 2048; i++ {
		mfn, err := a.Alloc(0, Order4K)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, mfn)
	}
	for _, f := range frames {
		a.Free(f, Order4K)
	}
	if _, err := a.Alloc(0, Order2M); err != nil {
		t.Fatalf("no 2 MiB block after full coalescing: %v", err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := testAlloc(t)
	mfn, _ := a.Alloc(0, Order4K)
	a.Free(mfn, Order4K)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(mfn, Order4K)
}

func TestMisalignedFreePanics(t *testing.T) {
	a := testAlloc(t)
	mfn, _ := a.Alloc(0, Order2M)
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned free did not panic")
		}
	}()
	a.Free(mfn+1, Order2M)
}

func TestNodeOfPartitions(t *testing.T) {
	a := testAlloc(t)
	per := a.FramesPerNode()
	if a.NodeOf(MFN(0)) != 0 || a.NodeOf(MFN(per-1)) != 0 {
		t.Fatal("node 0 bank misattributed")
	}
	if a.NodeOf(MFN(per)) != 1 {
		t.Fatal("node 1 bank misattributed")
	}
}

func TestFreeBlocksSnapshot(t *testing.T) {
	a := NewAllocator(numa.SmallMachine(1, 1, 4<<20))
	blocks := a.FreeBlocks(0)
	var total uint64
	for _, b := range blocks {
		total += FramesOf(b.Order)
	}
	if total != 1024 {
		t.Fatalf("free blocks cover %d frames, want 1024", total)
	}
}

// TestQuickAllocFreeInvariant property-tests the allocator: any sequence
// of allocations and frees preserves total memory and never double-
// allocates.
func TestQuickAllocFreeInvariant(t *testing.T) {
	check := func(ops []uint8) bool {
		a := NewAllocator(numa.SmallMachine(2, 1, 4<<20))
		totalBytes := a.TotalFreeBytes()
		type alloc struct {
			mfn   MFN
			order int
		}
		var live []alloc
		seen := make(map[MFN]bool)
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				node := numa.NodeID(op / 2 % 2)
				order := int(op/4) % 3 * 3 // orders 0, 3, 6
				mfn, err := a.Alloc(node, order)
				if err != nil {
					continue
				}
				if seen[mfn] {
					return false // double allocation
				}
				seen[mfn] = true
				if a.NodeOf(mfn) != node {
					return false
				}
				live = append(live, alloc{mfn, order})
			} else {
				i := int(op) % len(live)
				a.Free(live[i].mfn, live[i].order)
				delete(seen, live[i].mfn)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		var liveBytes int64
		for _, l := range live {
			liveBytes += int64(FramesOf(l.order)) * PageSize
		}
		return a.TotalFreeBytes() == totalBytes-liveBytes
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFramesOf(t *testing.T) {
	if FramesOf(Order4K) != 1 || FramesOf(Order2M) != 512 || FramesOf(Order1G) != 262144 {
		t.Fatal("order frame counts wrong")
	}
}
