package guest

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/pt"
	"repro/internal/sim"
)

// Process is one guest user process: a virtual address space backed
// lazily by physical pages. Mmap reserves virtual pages; the first touch
// of each page allocates a physical page (the guest-level first-touch of
// §3.1) and, when the hypervisor-level first-touch policy is active,
// notifies the hypervisor through the page queue. Munmap releases the
// physical pages back to the guest free list (zeroing them, §4.4.2) and
// notifies again — the exact alloc/release stream the paper's external
// interface is built to forward.
type Process struct {
	os    *OS
	PID   int
	table *pt.GuestTable
	// nextVPN is the mmap cursor; address spaces only grow, like the
	// Streamflow allocator's mmap churn.
	nextVPN pt.VPN
	// mappings tracks live Mmap regions for Munmap validation.
	mappings map[pt.VPN]int // start VPN → page count
}

// NewProcess creates a process on the guest.
func (g *OS) NewProcess(pid int) *Process {
	return &Process{
		os:       g,
		PID:      pid,
		table:    pt.NewGuestTable(),
		mappings: make(map[pt.VPN]int),
	}
}

// reset rebinds the process to a rebooted guest with an empty address
// space, keeping the page-table buckets and mapping-map storage.
func (p *Process) reset(g *OS) {
	p.os = g
	p.table.Reset()
	p.nextVPN = 0
	clear(p.mappings)
}

// Mmap reserves pages virtual pages and returns the start VPN. No
// physical memory is allocated yet (lazy allocation).
func (p *Process) Mmap(pages int) (pt.VPN, sim.Time, error) {
	if pages <= 0 {
		return 0, 0, fmt.Errorf("guest: mmap of %d pages", pages)
	}
	start := p.nextVPN
	p.nextVPN += pt.VPN(pages)
	p.mappings[start] = pages
	// Setting up VMAs is cheap and O(1) in this model.
	return start, 200 * sim.Nanosecond, nil
}

// Touch simulates the process's first access to one virtual page: on a
// guest page fault the guest allocates a physical page, installs the
// translation and (under first-touch) notifies the hypervisor. It
// returns the backing physical page and the time spent in the guest
// kernel. Touching an already-present page is free and returns its
// existing physical page.
func (p *Process) Touch(v pt.VPN) (mem.PFN, sim.Time, error) {
	if pfn, ok := p.table.Lookup(v); ok {
		return pfn, 0, nil
	}
	pfn, cost, err := p.os.AllocPage()
	if err != nil {
		return 0, cost, err
	}
	p.table.Map(v, pfn)
	return pfn, cost, nil
}

// Munmap releases a region previously returned by Mmap: every present
// page goes back to the guest free list (zeroed), generating release
// notifications when the queue is active. Untouched pages cost nothing —
// they were never allocated.
func (p *Process) Munmap(start pt.VPN) (sim.Time, error) {
	pages, ok := p.mappings[start]
	if !ok {
		return 0, fmt.Errorf("guest: munmap of unmapped region %d", start)
	}
	delete(p.mappings, start)
	var total sim.Time
	for v := start; v < start+pt.VPN(pages); v++ {
		if pfn, present := p.table.Lookup(v); present {
			p.table.Unmap(v)
			total += p.os.FreePage(pfn)
		}
	}
	return total, nil
}

// Resident reports the number of physically backed pages.
func (p *Process) Resident() int { return p.table.Len() }

// Table exposes the process page table (for tests and tools).
func (p *Process) Table() *pt.GuestTable { return p.table }

// ChurnOnce models one Streamflow-style allocator cycle: mmap one page,
// touch it, munmap it. It returns the total guest+hypervisor cost; under
// first-touch this emits one alloc and one release notification.
func (p *Process) ChurnOnce() (sim.Time, error) {
	v, cost, err := p.Mmap(1)
	if err != nil {
		return cost, err
	}
	_, c2, err := p.Touch(v)
	cost += c2
	if err != nil {
		return cost, err
	}
	c3, err := p.Munmap(v)
	cost += c3
	return cost, err
}
