package guest

import "repro/internal/xen"

// ChurnModel predicts the steady-state per-release overhead of the page
// notification path for allocator-churn-heavy applications (the Mosbench
// suite with the Streamflow allocator releases a physical page every
// ~15 µs per core, §4.2.3). Individual operations at that rate cannot be
// simulated event-by-event inside the epoch engine, so the engine charges
// threads an analytic amortized cost derived from the same constants the
// event-level driver uses — the two are cross-checked in tests.
type ChurnModel struct {
	Cfg QueueConfig
	// Threads is the number of cores releasing concurrently.
	Threads int
}

// Hypercall service times in nanoseconds, mirroring the xen cost model.
const (
	unbatchedServiceNs = float64(xen.CostHypercall) // world switch per op
	// unbatchedLockNs is the serialized hypervisor section of the
	// per-release hypercall (page lookup + entry invalidation under the
	// global lock). Its value makes a 48-core wrmem (one release per
	// 15 µs per core) lose 2/3 of its throughput, the paper's "divides
	// by 3" observation.
	unbatchedLockNs = 650.0
)

// flushCostNs returns the cost of one flush hypercall for a full batch.
func (m ChurnModel) flushCostNs() float64 {
	return float64(xen.CostHypercall) + float64(xen.CostQueueSend) +
		float64(m.Cfg.BatchSize)*float64(xen.CostInvalidateEntry)
}

// PerReleaseNs returns the expected cost, in nanoseconds, that one
// release operation adds to the releasing thread when every one of
// Threads cores releases a page every perCoreIntervalNs nanoseconds.
func (m ChurnModel) PerReleaseNs(perCoreIntervalNs float64) float64 {
	if perCoreIntervalNs <= 0 {
		return 0
	}
	totalRate := float64(m.Threads) / perCoreIntervalNs // ops per ns
	if m.Cfg.Unbatched {
		// Every release performs a hypercall whose hypervisor section is
		// serialized on a global lock. When offered load exceeds the
		// lock's capacity, each core effectively waits for all others.
		rho := totalRate * unbatchedLockNs
		if rho >= 1 {
			return unbatchedServiceNs + unbatchedLockNs*float64(m.Threads)
		}
		return unbatchedServiceNs + unbatchedLockNs/(1-rho)
	}
	// Batched: each op pays the queue append; every BatchSize ops one
	// core pays the flush while holding that queue's lock, so other
	// cores hitting the same queue wait. M/D/1-style waiting on the
	// per-queue flush utilization.
	flush := m.flushCostNs()
	perQueueFlushRate := totalRate / float64(m.Cfg.Queues) / float64(m.Cfg.BatchSize)
	rho := perQueueFlushRate * flush
	var wait float64
	switch {
	case rho >= 0.95:
		// Saturated queue lock: ops back up behind in-flight flushes.
		wait = flush * 19 // 0.95/(1-0.95)
	default:
		wait = flush * rho / (1 - rho)
	}
	amortized := (flush + wait) / float64(m.Cfg.BatchSize)
	return float64(CostQueueAdd) + amortized
}

// OverheadFraction returns the fraction of a core's time consumed by the
// release path at the given per-core release interval: values near 0 mean
// the notification mechanism is free; 2.0 means the application is three
// times slower.
func (m ChurnModel) OverheadFraction(perCoreIntervalNs float64) float64 {
	if perCoreIntervalNs <= 0 {
		return 0
	}
	return m.PerReleaseNs(perCoreIntervalNs) / perCoreIntervalNs
}
