package guest

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/iosim"
	"repro/internal/numa"
	"repro/internal/policy"
	"repro/internal/pt"
	"repro/internal/sim"
	"repro/internal/xen"
)

// Backend adapts a Xen domain plus its guest OS to the engine's placement
// interface: region pages are guest physical pages, their placement is
// whatever the domain's hypervisor page table says, and migrations go
// through the internal interface.
type Backend struct {
	HV  *xen.Hypervisor
	Dom *xen.Domain
	OS  *OS
	// proc is the application process whose virtual address space backs
	// every region: Place goes through mmap plus guest-level first-touch
	// faulting, then through the hypervisor page table.
	proc *Process
	// regionVPN remembers each region's mmap starts for Release (one
	// per Place call).
	regionVPN map[*engine.Region][]pt.VPN
	cfg       policy.Config
	// contiguous caches the policy descriptor's huge-region flag: IO()
	// sits on the engine's per-epoch path and must not pay a registry
	// lookup (nor its lowercasing allocation) per call.
	contiguous bool
}

// NewBackend boots a guest on dom and selects the policy cfg through the
// external interface. The policy-switch cost (including the free-list
// flush when switching to first-touch) is charged once and reported.
//
// The guest kernel owns the bottom "GiB" region of the physical space
// (boot allocations live in low memory), so user allocations start in
// the whole round-1G regions — which is why small-footprint applications
// end up concentrated on one node under Xen's default policy.
func NewBackend(hv *xen.Hypervisor, dom *xen.Domain, qcfg QueueConfig, cfg policy.Config) (*Backend, sim.Time, error) {
	return RebuildBackend(nil, hv, dom, qcfg, cfg)
}

// RebuildBackend is NewBackend with recycling: when prev is a backend of
// the same queue shape (from an earlier lease of the pooled machine), its
// guest OS, allocator, queue, process and maps are reset in place and
// rebound to dom instead of rebuilt, producing a backend bit-identical in
// behavior to a cold-built one. A nil or shape-mismatched prev falls back
// to a cold build.
func RebuildBackend(prev *Backend, hv *xen.Hypervisor, dom *xen.Domain, qcfg QueueConfig, cfg policy.Config) (*Backend, sim.Time, error) {
	desc, _, canon, err := policy.Resolve(cfg.Static)
	if err != nil {
		return nil, 0, err
	}
	cfg.Static = canon
	kernelPages := uint64(1) << uint(hv.Cfg.HugeOrder)
	if kernelPages >= dom.PhysPages() {
		kernelPages = dom.PhysPages() / 4
	}
	var b *Backend
	if prev != nil && prev.OS.Queue.cfg == qcfg {
		b = prev
		b.HV = hv
		b.Dom = dom
		b.OS.reset(dom, kernelPages)
		b.proc.reset(b.OS)
		clear(b.regionVPN)
		b.cfg = cfg
		b.contiguous = desc.Contiguous
	} else {
		b = &Backend{
			HV:         hv,
			Dom:        dom,
			OS:         NewOS(dom, kernelPages, qcfg),
			regionVPN:  make(map[*engine.Region][]pt.VPN),
			cfg:        cfg,
			contiguous: desc.Contiguous,
		}
		b.proc = b.OS.NewProcess(1)
	}
	cost, err := b.OS.SetPolicy(cfg)
	if err != nil {
		return nil, 0, err
	}
	return b, cost, nil
}

// Proc exposes the backing process (for tests and tools).
func (b *Backend) Proc() *Process { return b.proc }

// Name reports the platform and policy.
func (b *Backend) Name() string { return "xen/" + b.cfg.String() }

// Policy returns the active policy configuration.
func (b *Backend) Policy() policy.Config { return b.cfg }

// Place materializes n pages of r through the full guest path: the
// process mmaps the region, each first touch takes a guest page fault
// that allocates a physical page and installs the virtual→physical
// translation, and the subsequent access resolves through the hypervisor
// page table, letting the active policy decide the machine placement
// (first-touch faults; static policies hit pre-mapped entries).
// Successive Place calls on the same region extend its mapping.
func (b *Backend) Place(r *engine.Region, n int, toucher numa.NodeID) (sim.Time, error) {
	if n <= 0 {
		return 0, nil
	}
	start, total, err := b.proc.Mmap(n)
	if err != nil {
		return total, fmt.Errorf("guest: placing region %s: %w", r.Name, err)
	}
	b.regionVPN[r] = append(b.regionVPN[r], start)
	for v := start; v < start+pt.VPN(n); v++ {
		pfn, cost, err := b.proc.Touch(v)
		if err != nil {
			return total, fmt.Errorf("guest: placing region %s: %w", r.Name, err)
		}
		node, hvCost := b.Dom.Touch(pfn, toucher, true)
		r.AddPage(pfn, node)
		total += cost + hvCost
	}
	return total, nil
}

// Migrate moves page i of r through the hypervisor's migration mechanism.
func (b *Backend) Migrate(r *engine.Region, i int, to numa.NodeID) bool {
	if !b.Dom.MigratePage(r.Pages[i], to) {
		return false
	}
	r.SetNode(i, to)
	return true
}

// Release unmaps every mmap region backing r: the physical pages return
// to the guest free list (zeroed), and the hypervisor is notified when
// the first-touch queue is active.
func (b *Backend) Release(r *engine.Region) sim.Time {
	var total sim.Time
	for _, start := range b.regionVPN[r] {
		cost, err := b.proc.Munmap(start)
		if err != nil {
			panic(fmt.Sprintf("guest: releasing region %s: %v", r.Name, err))
		}
		total += cost
	}
	delete(b.regionVPN, r)
	return total
}

// ChurnOverhead derives the analytic steady-state cost of the release
// notification path. It is zero unless the first-touch policy is active:
// only then does the guest forward page traffic (§4.2.3).
func (b *Backend) ChurnOverhead(releasesPerSec float64, threads int) float64 {
	if releasesPerSec <= 0 || !b.OS.QueueActive() {
		return 0
	}
	m := ChurnModel{Cfg: b.OS.Queue.cfg, Threads: threads}
	return m.OverheadFraction(1e9 / releasesPerSec)
}

// IO reports the DMA path: passthrough when the IOMMU is usable with the
// current policy, the dom0 split driver otherwise. Xen's hypervisor page
// table scatters guest-contiguous DMA buffers across nodes except under
// policies placing in contiguous huge regions (round-1G), which keep a
// buffer on one node.
func (b *Backend) IO() (iosim.Path, iosim.BufferPlacement) {
	path := iosim.PathDom0
	if b.Dom.Passthrough() {
		path = iosim.PathPassthrough
	}
	placement := iosim.BufferScattered
	if b.contiguous {
		placement = iosim.BufferSingleNode
	}
	return path, placement
}

// Virtualized is always true for a domain.
func (b *Backend) Virtualized() bool { return true }

// ThreadNode maps thread i to vCPU i's physical node.
func (b *Backend) ThreadNode(i int) numa.NodeID {
	return b.Dom.NodeOfPCPU(i % len(b.Dom.VCPUs))
}

// CPUShare divides the physical CPU among the vCPUs pinned to it.
func (b *Backend) CPUShare(i int) float64 {
	v := b.Dom.VCPUs[i%len(b.Dom.VCPUs)]
	load := b.HV.CPULoad(v.PCPU)
	if load < 1 {
		load = 1
	}
	return 1 / float64(load)
}

// HomeNodes returns the domain's home nodes.
func (b *Backend) HomeNodes() []numa.NodeID { return b.Dom.HomeNodes() }
