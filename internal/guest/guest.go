// Package guest models the para-virtualized guest operating system: its
// physical-page allocator (lazy, zero-on-free, LIFO reuse like Linux's
// buddy per-CPU lists), and the paper's modified free path — the
// partitioned page queue that batches allocation/release notifications
// into the HypercallPageQueue external interface (§4.2.3–4.2.4).
package guest

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/xen"
)

// Guest-side costs in virtual time.
const (
	// CostGuestFault is a guest-level page fault (lazy allocation path).
	CostGuestFault = 600 * sim.Nanosecond
	// CostZeroPage is filling a 4 KiB page with zeros on release
	// (§4.4.2).
	CostZeroPage = 400 * sim.Nanosecond
	// CostQueueAdd is appending one (op, page) pair to a page queue
	// under its lock, excluding any flush.
	CostQueueAdd = 60 * sim.Nanosecond
)

// PhysAlloc is the guest physical-page allocator: pages are handed out
// lowest-first the first time and reused LIFO afterwards, approximating
// Linux's allocator behaviour after boot.
type PhysAlloc struct {
	totalPages uint64
	nextFresh  uint64
	reserved   uint64 // kernel pages at the bottom of the space
	freed      []mem.PFN
	inUse      map[mem.PFN]bool
}

// NewPhysAlloc manages a physical space of totalPages, with the first
// reserved pages considered kernel-owned and never handed out.
func NewPhysAlloc(totalPages, reserved uint64) *PhysAlloc {
	if reserved >= totalPages {
		panic("guest: reserved pages exceed physical space")
	}
	return &PhysAlloc{
		totalPages: totalPages,
		nextFresh:  reserved,
		reserved:   reserved,
		inUse:      make(map[mem.PFN]bool),
	}
}

// Alloc returns one free physical page.
func (a *PhysAlloc) Alloc() (mem.PFN, error) {
	if n := len(a.freed); n > 0 {
		p := a.freed[n-1]
		a.freed = a.freed[:n-1]
		a.inUse[p] = true
		return p, nil
	}
	if a.nextFresh >= a.totalPages {
		return 0, fmt.Errorf("guest: out of physical memory (%d pages)", a.totalPages)
	}
	p := mem.PFN(a.nextFresh)
	a.nextFresh++
	a.inUse[p] = true
	return p, nil
}

// Free returns a page to the free list.
func (a *PhysAlloc) Free(p mem.PFN) {
	if !a.inUse[p] {
		panic(fmt.Sprintf("guest: freeing page %d not in use", p))
	}
	delete(a.inUse, p)
	a.freed = append(a.freed, p)
}

// InUse reports the number of allocated pages.
func (a *PhysAlloc) InUse() int { return len(a.inUse) }

// Reset returns the allocator to its just-constructed state for a new
// physical space of totalPages with the given kernel reservation,
// keeping the freed-list capacity and in-use map buckets.
func (a *PhysAlloc) Reset(totalPages, reserved uint64) {
	if reserved >= totalPages {
		panic("guest: reserved pages exceed physical space")
	}
	a.totalPages = totalPages
	a.nextFresh = reserved
	a.reserved = reserved
	a.freed = a.freed[:0]
	clear(a.inUse)
}

// FreePages returns every currently-free page: the freed list plus all
// never-touched pages. Used to prime the hypervisor when switching to
// first-touch.
func (a *PhysAlloc) FreePages() []mem.PFN {
	out := make([]mem.PFN, 0, len(a.freed)+int(a.totalPages-a.nextFresh))
	out = append(out, a.freed...)
	for p := a.nextFresh; p < a.totalPages; p++ {
		out = append(out, mem.PFN(p))
	}
	return out
}

// ForEachFree visits every currently-free page in the same deterministic
// order FreePages returns them, without materializing the slice — the
// free-list flush on a policy switch covers the whole physical space, a
// multi-megabyte allocation when done by value.
func (a *PhysAlloc) ForEachFree(fn func(mem.PFN)) {
	for _, p := range a.freed {
		fn(p)
	}
	for p := a.nextFresh; p < a.totalPages; p++ {
		fn(mem.PFN(p))
	}
}

// QueueConfig shapes the page-queue driver, exposing the design choices
// of §4.2.4 for the ablation benches.
type QueueConfig struct {
	// Queues is the number of independent queues; the paper partitions
	// by the two least significant bits of the page frame number, i.e. 4.
	Queues int
	// BatchSize is the queue capacity that triggers a flush hypercall.
	BatchSize int
	// Unbatched, when true, bypasses the queue entirely and performs one
	// hypercall per operation (the strawman that divides wrmem's
	// performance by 3, §4.2.3).
	Unbatched bool
}

// DefaultQueueConfig returns the paper's configuration.
func DefaultQueueConfig() QueueConfig {
	return QueueConfig{Queues: 4, BatchSize: 64}
}

// PageQueue is the guest side of the external interface: it accumulates
// (op, page) pairs in partitioned, lock-protected queues and flushes each
// queue to the hypervisor when full, holding the lock across the
// hypercall so a free page in the queue cannot be reallocated mid-flush.
type PageQueue struct {
	cfg    QueueConfig
	dom    *xen.Domain
	queues [][]policy.PageOp

	// Counters.
	Ops     uint64
	Flushes uint64
	Time    sim.Time
}

// NewPageQueue builds the driver for dom.
func NewPageQueue(dom *xen.Domain, cfg QueueConfig) *PageQueue {
	if cfg.Queues < 1 || cfg.BatchSize < 1 {
		panic("guest: queue config must be positive")
	}
	q := &PageQueue{cfg: cfg, dom: dom}
	q.queues = make([][]policy.PageOp, cfg.Queues)
	for i := range q.queues {
		q.queues[i] = make([]policy.PageOp, 0, cfg.BatchSize)
	}
	return q
}

// queueOf partitions by the least significant bits of the PFN (§4.2.4).
func (q *PageQueue) queueOf(p mem.PFN) int {
	return int(uint64(p) % uint64(q.cfg.Queues))
}

// Add records one operation and returns the time spent (lock, append,
// and, when the queue fills, the flush hypercall performed under the
// lock).
func (q *PageQueue) Add(kind policy.PageOpKind, p mem.PFN) sim.Time {
	q.Ops++
	if q.cfg.Unbatched {
		cost := q.dom.HypercallPageQueue([]policy.PageOp{{Kind: kind, PFN: p}})
		q.Flushes++
		q.Time += cost
		return cost
	}
	qi := q.queueOf(p)
	q.queues[qi] = append(q.queues[qi], policy.PageOp{Kind: kind, PFN: p})
	cost := CostQueueAdd
	if len(q.queues[qi]) >= q.cfg.BatchSize {
		cost += q.flush(qi)
	}
	q.Time += cost
	return cost
}

// FlushAll drains every queue (used at policy-switch time and shutdown).
func (q *PageQueue) FlushAll() sim.Time {
	var total sim.Time
	for i := range q.queues {
		if len(q.queues[i]) > 0 {
			total += q.flush(i)
		}
	}
	q.Time += total
	return total
}

func (q *PageQueue) flush(qi int) sim.Time {
	ops := q.queues[qi]
	cost := q.dom.HypercallPageQueue(ops)
	q.queues[qi] = q.queues[qi][:0]
	q.Flushes++
	return cost
}

// Reset rebinds the driver to dom with empty queues and zeroed
// counters, keeping each queue's backing array. The configuration is
// unchanged; callers needing a different shape build a new queue.
func (q *PageQueue) Reset(dom *xen.Domain) {
	q.dom = dom
	for i := range q.queues {
		q.queues[i] = q.queues[i][:0]
	}
	q.Ops, q.Flushes, q.Time = 0, 0, 0
}

// Pending reports the total queued, unflushed operations.
func (q *PageQueue) Pending() int {
	n := 0
	for _, qq := range q.queues {
		n += len(qq)
	}
	return n
}

// OS ties the pieces together for one domain.
type OS struct {
	Dom   *xen.Domain
	Phys  *PhysAlloc
	Queue *PageQueue
	// queueActive is set while a page-queue-consuming policy (e.g.
	// first-touch) is selected: only then does the guest notify the
	// hypervisor of page traffic.
	queueActive bool
}

// NewOS boots a guest on dom with the given queue configuration,
// reserving kernelPages at the bottom of the physical space.
func NewOS(dom *xen.Domain, kernelPages uint64, qcfg QueueConfig) *OS {
	return &OS{
		Dom:   dom,
		Phys:  NewPhysAlloc(dom.PhysPages(), kernelPages),
		Queue: NewPageQueue(dom, qcfg),
	}
}

// reset reboots the guest on a (possibly different) domain of the same
// queue shape, restoring the allocator and queue to pristine state while
// keeping their storage.
func (g *OS) reset(dom *xen.Domain, kernelPages uint64) {
	g.Dom = dom
	g.Phys.Reset(dom.PhysPages(), kernelPages)
	g.Queue.Reset(dom)
	g.queueActive = false
}

// SetPolicy performs the policy-selection hypercall. Switching to a
// page-queue-consuming policy (first-touch) additionally primes the
// hypervisor by flushing the whole guest free list through the page
// queue, so that every free page's hypervisor entry is invalidated and
// the next touch faults (§4.2.2).
func (g *OS) SetPolicy(cfg policy.Config) (sim.Time, error) {
	cost, err := g.Dom.HypercallSetPolicy(cfg)
	if err != nil {
		return cost, err
	}
	wasActive := g.queueActive
	g.queueActive = policy.UsesPageQueue(cfg.Static)
	if g.queueActive && !wasActive {
		g.Phys.ForEachFree(func(p mem.PFN) {
			cost += g.Queue.Add(policy.OpRelease, p)
		})
		cost += g.Queue.FlushAll()
	}
	return cost, nil
}

// QueueActive reports whether page traffic is being forwarded.
func (g *OS) QueueActive() bool { return g.queueActive }

// AllocPage allocates one physical page for a process, notifying the
// hypervisor when the queue is active. The returned time covers the
// guest fault path and any queue work.
func (g *OS) AllocPage() (mem.PFN, sim.Time, error) {
	p, err := g.Phys.Alloc()
	if err != nil {
		return 0, 0, err
	}
	cost := CostGuestFault
	if g.queueActive {
		cost += g.Queue.Add(policy.OpAlloc, p)
	}
	return p, cost, nil
}

// FreePage releases one physical page (zeroing it first, §4.4.2).
func (g *OS) FreePage(p mem.PFN) sim.Time {
	g.Phys.Free(p)
	cost := CostZeroPage
	if g.queueActive {
		cost += g.Queue.Add(policy.OpRelease, p)
	}
	return cost
}
