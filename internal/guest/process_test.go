package guest

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/pt"
)

func testOS(t *testing.T) *OS {
	t.Helper()
	_, d := testDomain(t)
	return NewOS(d, 64, DefaultQueueConfig())
}

func TestProcessMmapTouchMunmap(t *testing.T) {
	g := testOS(t)
	p := g.NewProcess(1)
	start, _, err := p.Mmap(10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Resident() != 0 {
		t.Fatal("mmap allocated physical memory eagerly")
	}
	// First touches fault and allocate; re-touches are free.
	pfn0, cost, err := p.Touch(start)
	if err != nil || cost <= 0 {
		t.Fatalf("first touch: %v cost %v", err, cost)
	}
	again, cost2, _ := p.Touch(start)
	if again != pfn0 || cost2 != 0 {
		t.Fatal("re-touch changed the page or charged time")
	}
	for v := start + 1; v < start+10; v++ {
		if _, _, err := p.Touch(v); err != nil {
			t.Fatal(err)
		}
	}
	if p.Resident() != 10 {
		t.Fatalf("resident = %d", p.Resident())
	}
	inUse := g.Phys.InUse()
	if _, err := p.Munmap(start); err != nil {
		t.Fatal(err)
	}
	if p.Resident() != 0 {
		t.Fatal("munmap left resident pages")
	}
	if g.Phys.InUse() != inUse-10 {
		t.Fatal("munmap leaked physical pages")
	}
}

func TestProcessMunmapValidation(t *testing.T) {
	g := testOS(t)
	p := g.NewProcess(1)
	if _, err := p.Munmap(pt.VPN(99)); err == nil {
		t.Fatal("munmap of unmapped region accepted")
	}
	start, _, _ := p.Mmap(2)
	if _, err := p.Munmap(start); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Munmap(start); err == nil {
		t.Fatal("double munmap accepted")
	}
}

func TestProcessPartiallyTouchedMunmap(t *testing.T) {
	g := testOS(t)
	p := g.NewProcess(1)
	start, _, _ := p.Mmap(100)
	p.Touch(start + 5)
	p.Touch(start + 50)
	inUse := g.Phys.InUse()
	if _, err := p.Munmap(start); err != nil {
		t.Fatal(err)
	}
	if g.Phys.InUse() != inUse-2 {
		t.Fatal("untouched pages were 'freed'")
	}
}

func TestProcessChurnNotifiesUnderFirstTouch(t *testing.T) {
	g := testOS(t)
	p := g.NewProcess(1)
	// Inactive policy: no notifications.
	if _, err := p.ChurnOnce(); err != nil {
		t.Fatal(err)
	}
	if g.Queue.Ops != 0 {
		t.Fatal("notifications while queue inactive")
	}
	if _, err := g.SetPolicy(policy.Config{Static: policy.FirstTouch}); err != nil {
		t.Fatal(err)
	}
	before := g.Queue.Ops
	if _, err := p.ChurnOnce(); err != nil {
		t.Fatal(err)
	}
	// One alloc + one release notification per churn cycle (§4.2.3).
	if g.Queue.Ops != before+2 {
		t.Fatalf("ops = %d, want %d", g.Queue.Ops, before+2)
	}
}

func TestProcessAddressSpacesIndependent(t *testing.T) {
	g := testOS(t)
	p1 := g.NewProcess(1)
	p2 := g.NewProcess(2)
	v1, _, _ := p1.Mmap(1)
	v2, _, _ := p2.Mmap(1)
	f1, _, _ := p1.Touch(v1)
	f2, _, _ := p2.Touch(v2)
	if f1 == f2 {
		t.Fatal("two processes share a physical page")
	}
}
