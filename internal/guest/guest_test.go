package guest

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/xen"
)

func testDomain(t *testing.T) (*xen.Hypervisor, *xen.Domain) {
	t.Helper()
	topo := numa.SmallMachine(4, 4, 64<<20)
	hv, err := xen.New(topo, sim.NewEngine(), xen.Config{HugeOrder: 10, MidOrder: 3, IOMMU: true}, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	d, err := hv.CreateDomain(xen.DomainSpec{
		Name: "u1", VCPUs: 4, MemBytes: 16 << 20,
		PinCPUs: []numa.CPUID{0, 4, 8, 12}, Boot: policy.Round4K,
	})
	if err != nil {
		t.Fatal(err)
	}
	return hv, d
}

func TestPhysAllocLowFirstThenLIFO(t *testing.T) {
	a := NewPhysAlloc(100, 10)
	p1, err := a.Alloc()
	if err != nil || p1 != 10 {
		t.Fatalf("first page = %d, %v; want 10 (after reserve)", p1, err)
	}
	p2, _ := a.Alloc()
	if p2 != 11 {
		t.Fatalf("second page = %d", p2)
	}
	a.Free(p1)
	p3, _ := a.Alloc()
	if p3 != p1 {
		t.Fatalf("freed page not reused LIFO: got %d, want %d", p3, p1)
	}
}

func TestPhysAllocExhaustion(t *testing.T) {
	a := NewPhysAlloc(12, 10)
	if _, err := a.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(); err == nil {
		t.Fatal("allocation beyond the physical space succeeded")
	}
}

func TestPhysAllocDoubleFreePanics(t *testing.T) {
	a := NewPhysAlloc(100, 0)
	p, _ := a.Alloc()
	a.Free(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(p)
}

func TestPhysAllocFreePages(t *testing.T) {
	a := NewPhysAlloc(20, 4)
	p, _ := a.Alloc()
	q, _ := a.Alloc()
	a.Free(p)
	free := a.FreePages()
	// One freed page + 14 never-touched pages.
	if len(free) != 15 {
		t.Fatalf("free pages = %d, want 15", len(free))
	}
	for _, f := range free {
		if f == q {
			t.Fatal("in-use page listed as free")
		}
	}
}

func TestQueuePartitioning(t *testing.T) {
	_, d := testDomain(t)
	q := NewPageQueue(d, DefaultQueueConfig())
	// Pages with equal low bits go to the same queue; the queue must not
	// flush before BatchSize entries.
	for i := 0; i < 63; i++ {
		q.Add(policy.OpRelease, mem.PFN(i*4)) // all hit queue 0
	}
	if q.Flushes != 0 {
		t.Fatalf("premature flush after 63 ops")
	}
	if q.Pending() != 63 {
		t.Fatalf("pending = %d", q.Pending())
	}
	q.Add(policy.OpRelease, mem.PFN(63*4))
	if q.Flushes != 1 {
		t.Fatalf("flushes = %d after filling the batch", q.Flushes)
	}
	if q.Pending() != 0 {
		t.Fatal("queue not drained by flush")
	}
}

func TestQueueIndependentQueues(t *testing.T) {
	_, d := testDomain(t)
	q := NewPageQueue(d, DefaultQueueConfig())
	// Spread over the 4 queues: no flush until one queue fills.
	for i := 0; i < 4*63; i++ {
		q.Add(policy.OpRelease, mem.PFN(i))
	}
	if q.Flushes != 0 {
		t.Fatalf("flushes = %d, want 0 (each queue at 63/64)", q.Flushes)
	}
	cost := q.FlushAll()
	if q.Flushes != 4 || cost <= 0 {
		t.Fatalf("FlushAll: flushes = %d cost = %v", q.Flushes, cost)
	}
}

func TestUnbatchedQueueFlushesEveryOp(t *testing.T) {
	_, d := testDomain(t)
	q := NewPageQueue(d, QueueConfig{Queues: 1, BatchSize: 1, Unbatched: true})
	q.Add(policy.OpRelease, 1)
	q.Add(policy.OpRelease, 2)
	if q.Flushes != 2 {
		t.Fatalf("unbatched flushes = %d", q.Flushes)
	}
}

func TestOSSetPolicyFirstTouchPrimesFreeList(t *testing.T) {
	_, d := testDomain(t)
	g := NewOS(d, 64, DefaultQueueConfig())
	// Allocate a page that stays in use across the switch.
	used, _, err := g.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	cost, err := g.SetPolicy(policy.Config{Static: policy.FirstTouch})
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("free-list flush cost not charged")
	}
	if !g.QueueActive() {
		t.Fatal("queue not active under first-touch")
	}
	// The in-use page must survive; a free page must be invalidated.
	if _, ok := d.NodeOfPFN(used); !ok {
		t.Fatal("in-use page invalidated by the free-list flush")
	}
	invalidated := 0
	for p := uint64(64); p < d.PhysPages(); p++ {
		if _, ok := d.NodeOfPFN(mem.PFN(p)); !ok {
			invalidated++
		}
	}
	if invalidated == 0 {
		t.Fatal("no free page invalidated after switching to first-touch")
	}
}

func TestOSAllocFreeNotifiesOnlyWhenActive(t *testing.T) {
	_, d := testDomain(t)
	g := NewOS(d, 64, DefaultQueueConfig())
	p, _, err := g.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	g.FreePage(p)
	if g.Queue.Ops != 0 {
		t.Fatal("queue used while inactive")
	}
	g.SetPolicy(policy.Config{Static: policy.FirstTouch})
	before := g.Queue.Ops
	p, _, _ = g.AllocPage()
	g.FreePage(p)
	if g.Queue.Ops != before+2 {
		t.Fatalf("queue ops = %d, want %d", g.Queue.Ops, before+2)
	}
}

func TestChurnModelUnbatchedDividesBy3(t *testing.T) {
	// §4.2.3: one release per 15 µs per core with a hypercall per
	// release divides wrmem's performance by ~3.
	m := ChurnModel{Cfg: QueueConfig{Queues: 1, BatchSize: 1, Unbatched: true}, Threads: 48}
	slowdown := 1 + m.OverheadFraction(15000)
	if slowdown < 2.5 || slowdown > 3.7 {
		t.Fatalf("unbatched slowdown = %.2fx, want ~3x", slowdown)
	}
}

func TestChurnModelBatchedIsCheap(t *testing.T) {
	m := ChurnModel{Cfg: DefaultQueueConfig(), Threads: 48}
	frac := m.OverheadFraction(15000)
	if frac > 0.10 {
		t.Fatalf("batched overhead = %.3f, want < 0.10", frac)
	}
}

func TestChurnModelGlobalQueueWorseThanPartitioned(t *testing.T) {
	global := ChurnModel{Cfg: QueueConfig{Queues: 1, BatchSize: 64}, Threads: 48}
	part := ChurnModel{Cfg: DefaultQueueConfig(), Threads: 48}
	g := global.PerReleaseNs(15000)
	p := part.PerReleaseNs(15000)
	if g <= p {
		t.Fatalf("global queue (%v ns) not worse than partitioned (%v ns)", g, p)
	}
}

func TestChurnModelZeroRate(t *testing.T) {
	m := ChurnModel{Cfg: DefaultQueueConfig(), Threads: 48}
	if m.OverheadFraction(0) != 0 {
		t.Fatal("zero rate has overhead")
	}
}

// TestQuickQueueNeverLosesOps property-tests that every added op reaches
// the hypervisor exactly once across flushes.
func TestQuickQueueNeverLosesOps(t *testing.T) {
	_, d := testDomain(t)
	check := func(pfns []uint16) bool {
		q := NewPageQueue(d, QueueConfig{Queues: 4, BatchSize: 8})
		for _, p := range pfns {
			q.Add(policy.OpAlloc, mem.PFN(p))
		}
		q.FlushAll()
		return q.Ops == uint64(len(pfns)) && q.Pending() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestChurnModelMatchesEventLevelDriver cross-checks the analytic model
// against the real queue protocol: at negligible offered load (no lock
// contention), the model's per-release cost must equal the measured
// average cost of driving the actual partitioned queues.
func TestChurnModelMatchesEventLevelDriver(t *testing.T) {
	_, d := testDomain(t)
	d.HypercallSetPolicy(policy.Config{Static: policy.FirstTouch})
	q := NewPageQueue(d, DefaultQueueConfig())
	const ops = 4 * 64 * 10 // forty full batches
	var total sim.Time
	for i := 0; i < ops; i++ {
		// Alternate alloc/release over distinct pages so flushes carry
		// half releases, like steady-state churn.
		kind := policy.OpAlloc
		if i%2 == 1 {
			kind = policy.OpRelease
		}
		total += q.Add(kind, mem.PFN(i%1024))
	}
	total += q.FlushAll()
	measured := float64(total) / ops

	m := ChurnModel{Cfg: DefaultQueueConfig(), Threads: 1}
	predicted := m.PerReleaseNs(1e9) // one op per second: no contention
	// The model assumes all-release batches (64 invalidations); the
	// measured stream invalidates half as many entries, so the model
	// must bracket the measurement from above within the invalidation
	// share.
	if measured > predicted {
		t.Fatalf("event-level cost %v ns/op exceeds the model's uncontended %v ns/op", measured, predicted)
	}
	if measured < predicted/2 {
		t.Fatalf("event-level cost %v ns/op below half the model (%v): model diverged", measured, predicted)
	}
}
