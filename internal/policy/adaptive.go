package policy

import (
	"math"

	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/numa"
	"repro/internal/pt"
)

// The adaptive policy is the in-hypervisor form of the paper's §3.5.2
// advisor rule. The paper derives the rule from a cheap profiling run —
// measure the placement behaviour, then commit to a policy — and closes
// by noting that automatic selection inside the hypervisor remains open
// (§7). This policy runs the probe inside the hypervisor itself: it
// starts placing like least-loaded (spreading by free memory, a safe
// default on an empty machine) while measuring the imbalance of its own
// placements, and once that imbalance is stable across consecutive
// fault windows it replaces itself with first-touch through the same
// HypercallSetPolicy entry point a guest would use, so the switch is
// observable (trace event, hypercall counters) like any external one.

const (
	// adaptiveWindow is the number of resolved faults between imbalance
	// checks of the probe phase.
	adaptiveWindow = 256
	// adaptiveStableDelta is the largest change, in percentage points of
	// relative standard deviation, between two consecutive windows'
	// placement imbalance still considered "stable".
	adaptiveStableDelta = 10.0
	// adaptiveMinChecks is the number of windows the probe must observe
	// before it may declare stability (the first window has nothing to
	// compare against).
	adaptiveMinChecks = 2
)

// registerAdaptive is called from builtin.go's init so the adaptive
// policy registers after the paper's three static policies (their
// registration indices are the stable trace ids 0/1/2).
func registerAdaptive() {
	Register(Descriptor{
		Name:    "adaptive",
		Aliases: []string{"ad"},
		Abbrev:  "AD",
		Fault:   "probes least-loaded, switches itself to first-touch once imbalance stabilizes",
		// Carrefour may stack: the probe phase benefits from it exactly
		// like least-loaded does, and it survives the internal switch.
		Carrefour: true,
		// The first-touch phase consumes release notifications, so the
		// queue must be active from boot (and passthrough off, §4.4.1).
		UsesPageQueue: true,
		New:           func(_ string, nodes int) (Policy, error) { return newAdaptive(nodes), nil },
		Native: func(_ string, nodes int) (NativePlacer, error) {
			return &nativeAdaptive{ll: nativeLeastLoaded{nodes: nodes}}, nil
		},
	})
}

// adaptivePolicy probes with least-loaded placement, measures the
// imbalance of its own placements every adaptiveWindow faults, and
// switches the domain to first-touch once two consecutive windows agree
// (PolicySwitcher). If the domain does not expose the switch hypercall,
// or the switch is rejected, it degrades to first-touch behaviour in
// place.
type adaptivePolicy struct {
	probe leastLoaded // probe-phase placement
	ft    firstTouch  // page-queue reconciliation + post-switch fallback

	window    int
	delta     float64
	minChecks int

	// placed histograms the *current window's* placements only: the
	// stability test must compare windows against each other, not a
	// cumulative histogram (whose imbalance converges by construction
	// as 1/n even while per-window placement still swings). It is
	// presized to the machine's node count — windows must be compared
	// over histograms of the same length, or a window concentrated on
	// low node ids reads as balanced.
	placed   []float64
	faults   int
	checks   int
	prevImb  float64
	switched bool
}

// newAdaptive builds the policy for a machine with nodes nodes
// (<= 0 when unknown: the histogram then grows to the highest node
// actually touched).
func newAdaptive(nodes int) *adaptivePolicy {
	p := &adaptivePolicy{
		window:    adaptiveWindow,
		delta:     adaptiveStableDelta,
		minChecks: adaptiveMinChecks,
	}
	if nodes > 0 {
		p.placed = make([]float64, nodes)
	}
	return p
}

func (p *adaptivePolicy) Kind() Kind { return Adaptive }

func (p *adaptivePolicy) HandleFault(d DomainOps, pfn mem.PFN, accessor numa.NodeID, kind pt.FaultKind) {
	if kind == pt.FaultWriteProtected {
		d.Table().Unprotect(pfn)
		return
	}
	if p.switched {
		// Still installed after deciding to switch: the domain has no
		// PolicySwitcher (or rejected the hypercall); behave like the
		// successor.
		p.ft.HandleFault(d, pfn, accessor, kind)
		return
	}
	p.probe.HandleFault(d, pfn, accessor, kind)
	p.recordPlacement(d, pfn)
	if p.stable() {
		p.switchToFirstTouch(d)
	}
}

// OnPageQueue reconciles exactly like first-touch (§4.2.4) in both
// phases: releases invalidate, so during the probe a released page
// refaults into least-loaded placement instead of keeping a stale home.
func (p *adaptivePolicy) OnPageQueue(d DomainOps, ops []PageOp) int {
	return p.ft.OnPageQueue(d, ops)
}

// recordPlacement histograms where the probe's fault landed.
func (p *adaptivePolicy) recordPlacement(d DomainOps, pfn mem.PFN) {
	e := d.Table().Lookup(pfn)
	if !e.Valid {
		return
	}
	node := d.NodeOfFrame(e.MFN)
	for int(node) >= len(p.placed) {
		p.placed = append(p.placed, 0)
	}
	p.placed[node]++
	p.faults++
}

// stable reports whether the probe phase just completed a window whose
// placement imbalance moved less than delta percentage points since
// the previous window's. Each window is measured on its own histogram.
func (p *adaptivePolicy) stable() bool {
	if p.faults == 0 || p.faults%p.window != 0 {
		return false
	}
	imb := metrics.RelStdDev(p.placed)
	for i := range p.placed {
		p.placed[i] = 0
	}
	p.checks++
	ok := p.checks >= p.minChecks && math.Abs(imb-p.prevImb) <= p.delta
	p.prevImb = imb
	return ok
}

// switchToFirstTouch installs first-touch through the external
// interface, keeping the domain's Carrefour stacking.
func (p *adaptivePolicy) switchToFirstTouch(d DomainOps) {
	p.switched = true
	sw, ok := d.(PolicySwitcher)
	if !ok {
		return
	}
	cfg := sw.Policy()
	cfg.Static = FirstTouch
	// A rejected switch leaves the domain untouched (the hypercall's
	// contract); p.switched keeps this policy behaving like first-touch
	// in place, so the decision still takes effect.
	_, _ = sw.HypercallSetPolicy(cfg)
}

// nativeAdaptive mirrors the adaptive policy for the native backend:
// least-loaded placement while the per-window histogram of its own
// placements settles, first-touch afterwards. Linux has no
// policy-switch hypercall, so the phase change is internal.
type nativeAdaptive struct {
	ll       nativeLeastLoaded
	placed   []float64 // current window's placements, reset per check
	count    int
	checks   int
	prevImb  float64
	switched bool
}

func (p *nativeAdaptive) PlaceNode(toucher numa.NodeID, free func(numa.NodeID) int64) numa.NodeID {
	if p.switched {
		return toucher
	}
	n := p.ll.PlaceNode(toucher, free)
	if p.placed == nil {
		p.placed = make([]float64, p.ll.nodes)
	}
	p.placed[n]++
	p.count++
	if p.count%adaptiveWindow == 0 {
		imb := metrics.RelStdDev(p.placed)
		for i := range p.placed {
			p.placed[i] = 0
		}
		p.checks++
		if p.checks >= adaptiveMinChecks && math.Abs(imb-p.prevImb) <= adaptiveStableDelta {
			p.switched = true
		}
		p.prevImb = imb
	}
	return n
}
