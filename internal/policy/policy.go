// Package policy defines the paper's contribution: the interface that
// lets NUMA placement policies live inside the hypervisor (§4), and the
// three static policies built on it (first-touch, round-4K, round-1G).
// The dynamic Carrefour policy is layered on the same interface by
// package carrefour.
//
// The interface has two sides, mirroring Figure 3 of the paper:
//
//   - The internal interface (DomainOps) is what a policy uses to talk to
//     the hypervisor: map a physical page to a machine frame on a chosen
//     node, and migrate a physical page to a new node.
//   - The external interface is what the guest operating system uses to
//     talk to the policy: a hypercall to select the policy
//     (HypercallSetPolicy) and a hypercall carrying the batched queue of
//     recently allocated and released physical pages
//     (HypercallPageQueue, §4.2.3–4.2.4).
package policy

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/pt"
)

// Kind names a static placement policy.
type Kind int

const (
	// Round1G is Xen's default: memory allocated eagerly at domain
	// creation in 1 GiB regions round-robin across the home nodes (§3.3).
	Round1G Kind = iota
	// Round4K statically maps each 4 KiB physical page round-robin
	// across the home nodes at domain creation (§3.2).
	Round4K
	// FirstTouch maps a physical page on the node of the vCPU that first
	// accesses it, using hypervisor page faults plus the page-queue
	// hypercall to learn about guest-side page reuse (§3.1, §4.2).
	FirstTouch
)

func (k Kind) String() string {
	switch k {
	case Round1G:
		return "round-1G"
	case Round4K:
		return "round-4K"
	case FirstTouch:
		return "first-touch"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config selects a static policy and optionally stacks the dynamic
// Carrefour policy on top, matching the four combinations the paper
// evaluates.
type Config struct {
	Static    Kind
	Carrefour bool
}

func (c Config) String() string {
	if c.Carrefour {
		return c.Static.String() + "/carrefour"
	}
	return c.Static.String()
}

// Hypercall numbers of the external interface.
const (
	// HypercallSetPolicy dynamically changes the NUMA policy of a
	// running virtual machine (§4.2.1).
	HypercallSetPolicy = 40
	// HypercallPageQueue communicates a queue of recently allocated and
	// released physical pages (§4.2.3).
	HypercallPageQueue = 41
)

// PageOpKind tags entries of the page queue.
type PageOpKind uint8

const (
	// OpAlloc records that the guest allocated the page to a process.
	OpAlloc PageOpKind = iota
	// OpRelease records that the guest returned the page to its free
	// list (after zeroing it, §4.4.2).
	OpRelease
)

func (k PageOpKind) String() string {
	if k == OpAlloc {
		return "alloc"
	}
	return "release"
}

// PageOp is one entry of the batched page queue: the operation and the
// physical page it concerns (§4.2.4).
type PageOp struct {
	Kind PageOpKind
	PFN  mem.PFN
}

// DomainOps is the internal interface (§4.1): everything a NUMA policy
// may ask of the hypervisor for one domain. Package xen provides the
// implementation.
type DomainOps interface {
	// HomeNodes returns the domain's home nodes in a fixed order.
	HomeNodes() []numa.NodeID
	// Table returns the domain's hypervisor page table.
	Table() *pt.HypervisorTable
	// AllocFrameOn allocates one machine frame on node, falling back
	// round-robin to the other home nodes (then any node) when the bank
	// is full, as Linux's first-touch does (§3.1).
	AllocFrameOn(node numa.NodeID) (mem.MFN, error)
	// FreeFrame returns a machine frame to the machine allocator.
	FreeFrame(mfn mem.MFN)
	// NodeOfFrame maps a machine frame to its NUMA node.
	NodeOfFrame(mfn mem.MFN) numa.NodeID
	// MapPage installs pfn→mfn and notifies placement observers.
	// This is the first function of the internal interface.
	MapPage(pfn mem.PFN, mfn mem.MFN)
	// MigratePage moves pfn's backing frame to node, using the
	// write-protect → copy → remap mechanism. This is the second
	// function of the internal interface. It reports whether the page
	// actually moved (false when already on node or unmapped).
	MigratePage(pfn mem.PFN, to numa.NodeID) bool
	// InvalidatePage clears pfn's entry, frees its frame, and notifies
	// observers; subsequent accesses fault into the policy.
	InvalidatePage(pfn mem.PFN)
}

// Policy is a hypervisor-resident NUMA placement policy for one domain.
type Policy interface {
	// Kind reports the static policy this implements.
	Kind() Kind
	// HandleFault resolves a hypervisor page fault on pfn caused by a
	// vCPU running on accessor. It must leave the entry valid.
	HandleFault(d DomainOps, pfn mem.PFN, accessor numa.NodeID, kind pt.FaultKind)
	// OnPageQueue consumes one batched page queue sent by the guest
	// through HypercallPageQueue. It returns the number of entries whose
	// hypervisor page-table entry was invalidated (the dominant cost of
	// the hypercall, §4.2.4).
	OnPageQueue(d DomainOps, ops []PageOp) int
}

// New returns the policy implementation for kind.
func New(kind Kind) Policy {
	switch kind {
	case Round1G:
		return &roundStatic{kind: Round1G}
	case Round4K:
		return &roundStatic{kind: Round4K}
	case FirstTouch:
		return &firstTouch{}
	default:
		panic(fmt.Sprintf("policy: unknown kind %v", kind))
	}
}

// roundStatic covers round-4K and round-1G: placement happens eagerly at
// domain creation (by the domain builder), so at run time the policy only
// needs to resolve stray faults — pages whose entries were invalidated by
// an earlier first-touch phase — which it does round-robin, and to ignore
// page queues.
type roundStatic struct {
	kind Kind
	next int
}

func (p *roundStatic) Kind() Kind { return p.kind }

func (p *roundStatic) HandleFault(d DomainOps, pfn mem.PFN, accessor numa.NodeID, kind pt.FaultKind) {
	if kind == pt.FaultWriteProtected {
		// Migration in flight finished; just unprotect.
		d.Table().Unprotect(pfn)
		return
	}
	homes := d.HomeNodes()
	node := homes[p.next%len(homes)]
	p.next++
	mfn, err := d.AllocFrameOn(node)
	if err != nil {
		panic(fmt.Sprintf("policy: %v fault allocation failed: %v", p.kind, err))
	}
	d.MapPage(pfn, mfn)
}

func (p *roundStatic) OnPageQueue(DomainOps, []PageOp) int { return 0 }

// firstTouch implements §4.2: released pages have their hypervisor
// page-table entry invalidated so the next access faults, and the fault
// allocates the backing frame on the accessor's node.
type firstTouch struct{}

func (p *firstTouch) Kind() Kind { return FirstTouch }

func (p *firstTouch) HandleFault(d DomainOps, pfn mem.PFN, accessor numa.NodeID, kind pt.FaultKind) {
	if kind == pt.FaultWriteProtected {
		d.Table().Unprotect(pfn)
		return
	}
	mfn, err := d.AllocFrameOn(accessor)
	if err != nil {
		panic(fmt.Sprintf("policy: first-touch fault allocation failed: %v", err))
	}
	d.MapPage(pfn, mfn)
}

// OnPageQueue implements the reconciliation protocol of §4.2.4: scan the
// queue from the most recent operation, keep the first (most recent)
// operation seen for each page, invalidate pages whose latest operation
// is a release, and leave reallocated pages where they are (copying their
// content would be too costly in the common case).
func (p *firstTouch) OnPageQueue(d DomainOps, ops []PageOp) int {
	seen := make(map[mem.PFN]struct{}, len(ops))
	invalidated := 0
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		if _, dup := seen[op.PFN]; dup {
			continue
		}
		seen[op.PFN] = struct{}{}
		if op.Kind == OpRelease {
			d.InvalidatePage(op.PFN)
			invalidated++
		}
	}
	return invalidated
}
