// Package policy defines the paper's contribution: the interface that
// lets NUMA placement policies live inside the hypervisor (§4), and an
// open registry of policies built on it. The three static policies the
// paper evaluates (first-touch, round-4K, round-1G) are registered here;
// further policies (interleave, bind:<node>, least-loaded, or any
// out-of-tree Descriptor) plug into the same registry without touching
// the hypervisor, guest or native layers. The dynamic Carrefour policy
// is layered on the same interface by package carrefour.
//
// The interface has two sides, mirroring Figure 3 of the paper:
//
//   - The internal interface (DomainOps) is what a policy uses to talk to
//     the hypervisor: map a physical page to a machine frame on a chosen
//     node, and migrate a physical page to a new node.
//   - The external interface is what the guest operating system uses to
//     talk to the policy: a hypercall to select the policy
//     (HypercallSetPolicy) and a hypercall carrying the batched queue of
//     recently allocated and released physical pages
//     (HypercallPageQueue, §4.2.3–4.2.4).
//
// A third, eager side — the BootPlacer — runs at domain build time and
// populates the physical address space before the first instruction
// (round-4K and round-1G layouts); policies without one boot lazily:
// every entry starts invalid and the first access faults into the
// runtime policy.
package policy

import (
	"fmt"
	"strconv"

	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/pt"
	"repro/internal/sim"
)

// Kind names a registered placement policy. It is an open string, not a
// closed enum: the canonical spelling of a registered Descriptor,
// optionally carrying a parameter after a colon ("bind:3"). Lookups are
// case-insensitive; the canonical casing below is what String() and
// reports show.
type Kind string

// Kinds of the built-in policies (registered in builtin.go).
const (
	// Round1G is Xen's default: memory allocated eagerly at domain
	// creation in 1 GiB regions round-robin across the home nodes (§3.3).
	Round1G Kind = "round-1G"
	// Round4K statically maps each 4 KiB physical page round-robin
	// across the home nodes at domain creation (§3.2).
	Round4K Kind = "round-4K"
	// FirstTouch maps a physical page on the node of the vCPU that first
	// accesses it, using hypervisor page faults plus the page-queue
	// hypercall to learn about guest-side page reuse (§3.1, §4.2).
	FirstTouch Kind = "first-touch"
	// Interleave is round-4K's round-robin placement without the eager
	// boot pass: the domain boots with every entry invalid and each
	// first access faults, allocating round-robin across the home nodes.
	Interleave Kind = "interleave"
	// LeastLoaded allocates each faulted page on the home node with the
	// most free machine memory at fault time.
	LeastLoaded Kind = "least-loaded"
	// Adaptive is the in-hypervisor form of the paper's §3.5.2 advisor
	// rule: probe with least-loaded placement, then switch the domain
	// to first-touch through HypercallSetPolicy once the placement
	// imbalance stabilizes.
	Adaptive Kind = "adaptive"
)

// Bind returns the kind of the preferred-node policy for node: every
// faulted page is allocated on that node, falling back like first-touch
// when its bank is full.
func Bind(node numa.NodeID) Kind {
	return Kind("bind:" + strconv.Itoa(int(node)))
}

func (k Kind) String() string { return string(k) }

// Canonical Carrefour variant names (Config.CarrefourVariant): the
// heuristic subsets the paper's §7 proposes as ablation knobs. The
// empty string is the full policy.
const (
	CarrefourFull            = ""
	CarrefourMigrationOnly   = "migration"
	CarrefourReplicationOnly = "replication"
)

// ValidCarrefourVariant reports whether v is a canonical Carrefour
// variant name.
func ValidCarrefourVariant(v string) bool {
	switch v {
	case CarrefourFull, CarrefourMigrationOnly, CarrefourReplicationOnly:
		return true
	}
	return false
}

// Config selects a static policy and optionally stacks the dynamic
// Carrefour policy on top, matching the combinations the paper
// evaluates; CarrefourVariant further restricts Carrefour to one of
// its heuristics (§7's ablation knobs).
type Config struct {
	Static    Kind
	Carrefour bool
	// CarrefourVariant selects a heuristic subset when Carrefour is
	// stacked: "" (full), CarrefourMigrationOnly (locality migration
	// only) or CarrefourReplicationOnly (replication only). It must be
	// empty when Carrefour is false.
	CarrefourVariant string
}

func (c Config) String() string {
	s := c.Static.String()
	if c.Carrefour {
		s += "/carrefour"
		if c.CarrefourVariant != "" {
			s += ":" + c.CarrefourVariant
		}
	}
	return s
}

// Hypercall numbers of the external interface.
const (
	// HypercallSetPolicy dynamically changes the NUMA policy of a
	// running virtual machine (§4.2.1).
	HypercallSetPolicy = 40
	// HypercallPageQueue communicates a queue of recently allocated and
	// released physical pages (§4.2.3).
	HypercallPageQueue = 41
)

// PageOpKind tags entries of the page queue.
type PageOpKind uint8

const (
	// OpAlloc records that the guest allocated the page to a process.
	OpAlloc PageOpKind = iota
	// OpRelease records that the guest returned the page to its free
	// list (after zeroing it, §4.4.2).
	OpRelease
)

func (k PageOpKind) String() string {
	if k == OpAlloc {
		return "alloc"
	}
	return "release"
}

// PageOp is one entry of the batched page queue: the operation and the
// physical page it concerns (§4.2.4).
type PageOp struct {
	Kind PageOpKind
	PFN  mem.PFN
}

// DomainOps is the internal interface (§4.1): everything a NUMA policy
// may ask of the hypervisor for one domain. Package xen provides the
// implementation.
type DomainOps interface {
	// HomeNodes returns the domain's home nodes in a fixed order.
	HomeNodes() []numa.NodeID
	// Table returns the domain's hypervisor page table.
	Table() *pt.HypervisorTable
	// AllocFrameOn allocates one machine frame on node, falling back
	// round-robin to the other home nodes (then any node) when the bank
	// is full, as Linux's first-touch does (§3.1).
	AllocFrameOn(node numa.NodeID) (mem.MFN, error)
	// FreeFrame returns a machine frame to the machine allocator.
	FreeFrame(mfn mem.MFN)
	// NodeOfFrame maps a machine frame to its NUMA node.
	NodeOfFrame(mfn mem.MFN) numa.NodeID
	// NodeFreeBytes reports the free machine memory on node, for
	// load-aware policies such as least-loaded.
	NodeFreeBytes(node numa.NodeID) int64
	// MapPage installs pfn→mfn and notifies placement observers.
	// This is the first function of the internal interface.
	MapPage(pfn mem.PFN, mfn mem.MFN)
	// MigratePage moves pfn's backing frame to node, using the
	// write-protect → copy → remap mechanism. This is the second
	// function of the internal interface. It reports whether the page
	// actually moved (false when already on node or unmapped).
	MigratePage(pfn mem.PFN, to numa.NodeID) bool
	// InvalidatePage clears pfn's entry, frees its frame, and notifies
	// observers; subsequent accesses fault into the policy.
	InvalidatePage(pfn mem.PFN)
}

// BootOps extends DomainOps with what eager boot placement needs: the
// size of the physical space and block-grained (huge-region) allocation.
type BootOps interface {
	DomainOps
	// PhysPages is the size of the physical address space in pages.
	PhysPages() uint64
	// RegionOrders returns the machine's huge ("1 GiB") and mid
	// ("2 MiB") region buddy orders, pre-scaled for the machine.
	RegionOrders() (huge, mid int)
	// AllocRegion allocates one 2^order block on node, without
	// fallback.
	AllocRegion(node numa.NodeID, order int) (mem.MFN, error)
	// MapRegion maps the 2^order frames of block phys-contiguously
	// starting at base, recording block ownership for teardown.
	MapRegion(base mem.PFN, block mem.MFN, order int)
}

// BootPlacer eagerly populates a domain's physical address space at
// build time, before the guest runs. A nil BootPlacer means the policy
// boots lazily: every hypervisor entry starts invalid, the first access
// to each page faults into the runtime Policy, and — because the IOMMU
// cannot resolve invalid entries (§4.4.1) — PCI passthrough is disabled
// for the domain.
type BootPlacer func(b BootOps) error

// NativePlacer is the native-Linux side of a policy: it picks the node
// for each page faulted by the native lazy allocator. free reports a
// node's free memory (for load-aware placers); the backend performs the
// allocation with Linux's round-robin fallback.
type NativePlacer interface {
	PlaceNode(toucher numa.NodeID, free func(numa.NodeID) int64) numa.NodeID
}

// PolicySwitcher is the optional DomainOps extension exposing the
// external interface's SetPolicy hypercall (§4.2.1) to in-hypervisor
// callers: the active policy configuration and the entry point to
// replace it. Package xen's Domain implements it; a policy that decides
// it is no longer the right one (adaptive) uses it to install its
// successor through exactly the path a guest would.
type PolicySwitcher interface {
	// Policy returns the domain's active configuration.
	Policy() Config
	// HypercallSetPolicy switches the static policy and/or Carrefour
	// stacking, returning the hypercall cost.
	HypercallSetPolicy(cfg Config) (sim.Time, error)
}

// Policy is a hypervisor-resident NUMA placement policy for one domain.
type Policy interface {
	// Kind reports the registered kind this implements.
	Kind() Kind
	// HandleFault resolves a hypervisor page fault on pfn caused by a
	// vCPU running on accessor. It must leave the entry valid.
	HandleFault(d DomainOps, pfn mem.PFN, accessor numa.NodeID, kind pt.FaultKind)
	// OnPageQueue consumes one batched page queue sent by the guest
	// through HypercallPageQueue. It returns the number of entries whose
	// hypervisor page-table entry was invalidated (the dominant cost of
	// the hypercall, §4.2.4).
	OnPageQueue(d DomainOps, ops []PageOp) int
}

// New builds the runtime policy for kind from the default registry.
// nodes is the machine's node count, used to range-check parameterized
// kinds ("bind:9" on an 8-node machine); pass nodes <= 0 when the
// machine is not known yet (syntax checks only).
func New(kind Kind, nodes int) (Policy, error) {
	desc, arg, err := Describe(kind)
	if err != nil {
		return nil, err
	}
	return desc.New(arg, nodes)
}

// NewNative builds the native-Linux placer for kind, or an error when
// the policy has no native equivalent (round-1G).
func NewNative(kind Kind, nodes int) (NativePlacer, error) {
	desc, arg, err := Describe(kind)
	if err != nil {
		return nil, err
	}
	if desc.Native == nil {
		return nil, fmt.Errorf("policy: Linux has no %s policy", kind)
	}
	return desc.Native(arg, nodes)
}

// BootKind returns the boot layout used when kind is selected at domain
// build time: the kind itself when it may be booted, or Round4K for
// runtime-only policies (the paper boots first-touch domains round-4K
// and switches through the hypercall, §4.2.1).
func BootKind(kind Kind) (Kind, error) {
	desc, _, err := Describe(kind)
	if err != nil {
		return "", err
	}
	if desc.RuntimeOnly {
		return Round4K, nil
	}
	return kind, nil
}

// UsesPageQueue reports whether kind's policy consumes the guest page
// queue (false for unknown kinds).
func UsesPageQueue(kind Kind) bool {
	desc, _, err := Describe(kind)
	return err == nil && desc.UsesPageQueue
}

// Abbrev returns the paper's Table-4 shorthand for kind ("round-4K" →
// "R4K", "bind:3" → "B3"), or the kind itself when unknown.
func Abbrev(kind Kind) string {
	desc, arg, err := Describe(kind)
	if err != nil {
		return string(kind)
	}
	return desc.Abbrev + arg
}
