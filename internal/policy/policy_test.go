package policy

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/pt"
)

// fakeDomain implements DomainOps over plain maps for isolated policy
// tests.
type fakeDomain struct {
	homes    []numa.NodeID
	table    *pt.HypervisorTable
	nextMFN  mem.MFN
	nodeOf   map[mem.MFN]numa.NodeID
	free     map[numa.NodeID]int64
	freed    []mem.MFN
	migrated int
}

func newFakeDomain(homes ...numa.NodeID) *fakeDomain {
	return &fakeDomain{
		homes:  homes,
		table:  pt.NewHypervisorTable(),
		nodeOf: make(map[mem.MFN]numa.NodeID),
		free:   make(map[numa.NodeID]int64),
	}
}

func (d *fakeDomain) HomeNodes() []numa.NodeID          { return d.homes }
func (d *fakeDomain) Table() *pt.HypervisorTable        { return d.table }
func (d *fakeDomain) FreeFrame(m mem.MFN)               { d.freed = append(d.freed, m) }
func (d *fakeDomain) NodeFreeBytes(n numa.NodeID) int64 { return d.free[n] }
func (d *fakeDomain) NodeOfFrame(m mem.MFN) numa.NodeID {
	n, ok := d.nodeOf[m]
	if !ok {
		panic(fmt.Sprintf("unknown frame %d", m))
	}
	return n
}

func (d *fakeDomain) AllocFrameOn(n numa.NodeID) (mem.MFN, error) {
	m := d.nextMFN
	d.nextMFN++
	d.nodeOf[m] = n
	d.free[n] -= mem.PageSize
	return m, nil
}

// mustNew builds a policy through the registry, failing the test on a
// bad kind.
func mustNew(t *testing.T, k Kind) Policy {
	t.Helper()
	p, err := New(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func (d *fakeDomain) MapPage(p mem.PFN, m mem.MFN) { d.table.Map(p, m) }

func (d *fakeDomain) MigratePage(p mem.PFN, to numa.NodeID) bool {
	e := d.table.Lookup(p)
	if !e.Valid || d.nodeOf[e.MFN] == to {
		return false
	}
	m, _ := d.AllocFrameOn(to)
	d.table.Map(p, m)
	d.migrated++
	return true
}

func (d *fakeDomain) InvalidatePage(p mem.PFN) {
	if m := d.table.Invalidate(p); m != mem.NoMFN {
		d.FreeFrame(m)
	}
}

func TestKindStrings(t *testing.T) {
	if Round1G.String() != "round-1G" || Round4K.String() != "round-4K" || FirstTouch.String() != "first-touch" {
		t.Fatal("kind strings wrong")
	}
	cfg := Config{Static: Round4K, Carrefour: true}
	if cfg.String() != "round-4K/carrefour" {
		t.Fatalf("config string = %q", cfg.String())
	}
}

func TestNewRejectsUnknownKind(t *testing.T) {
	if _, err := New(Kind("numa-magic"), 0); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := New(Kind(""), 0); err == nil {
		t.Fatal("empty kind accepted")
	}
}

func TestFirstTouchPlacesOnAccessor(t *testing.T) {
	d := newFakeDomain(0, 1, 2, 3)
	p := mustNew(t, FirstTouch)
	p.HandleFault(d, 42, 3, pt.FaultNotPresent)
	e := d.table.Lookup(42)
	if !e.Valid || d.NodeOfFrame(e.MFN) != 3 {
		t.Fatal("first-touch did not place on the accessor's node")
	}
}

func TestRoundStaticFaultRoundRobins(t *testing.T) {
	d := newFakeDomain(0, 1)
	p := mustNew(t, Round4K)
	nodes := make(map[numa.NodeID]int)
	for i := mem.PFN(0); i < 10; i++ {
		p.HandleFault(d, i, 0, pt.FaultNotPresent)
		e := d.table.Lookup(i)
		nodes[d.NodeOfFrame(e.MFN)]++
	}
	if nodes[0] != 5 || nodes[1] != 5 {
		t.Fatalf("round-robin fault placement uneven: %v", nodes)
	}
}

func TestWriteProtectFaultUnprotects(t *testing.T) {
	for _, kind := range []Kind{Round4K, FirstTouch, Interleave, LeastLoaded, Bind(0)} {
		d := newFakeDomain(0)
		p := mustNew(t, kind)
		m, _ := d.AllocFrameOn(0)
		d.MapPage(7, m)
		d.table.WriteProtect(7)
		p.HandleFault(d, 7, 0, pt.FaultWriteProtected)
		if d.table.Lookup(7).WriteProtect {
			t.Fatalf("%v left the entry write-protected", kind)
		}
	}
}

func TestPageQueueReleaseInvalidates(t *testing.T) {
	d := newFakeDomain(0)
	p := mustNew(t, FirstTouch)
	m, _ := d.AllocFrameOn(0)
	d.MapPage(1, m)
	n := p.OnPageQueue(d, []PageOp{{Kind: OpRelease, PFN: 1}})
	if n != 1 {
		t.Fatalf("invalidated = %d", n)
	}
	if d.table.Lookup(1).Valid {
		t.Fatal("entry still valid")
	}
	if len(d.freed) != 1 || d.freed[0] != m {
		t.Fatal("frame not freed")
	}
}

func TestPageQueueScanIsNewestFirst(t *testing.T) {
	d := newFakeDomain(0)
	p := mustNew(t, FirstTouch)
	m, _ := d.AllocFrameOn(0)
	d.MapPage(1, m)
	// Oldest→newest: release, alloc. The page was reallocated after the
	// release, so it must NOT be invalidated (§4.2.4).
	n := p.OnPageQueue(d, []PageOp{
		{Kind: OpRelease, PFN: 1},
		{Kind: OpAlloc, PFN: 1},
	})
	if n != 0 || !d.table.Lookup(1).Valid {
		t.Fatal("reallocated page invalidated")
	}
	// Newest is a release → invalidate.
	n = p.OnPageQueue(d, []PageOp{
		{Kind: OpAlloc, PFN: 1},
		{Kind: OpRelease, PFN: 1},
	})
	if n != 1 || d.table.Lookup(1).Valid {
		t.Fatal("released page survived")
	}
}

func TestPageQueueDuplicateReleases(t *testing.T) {
	d := newFakeDomain(0)
	p := mustNew(t, FirstTouch)
	m, _ := d.AllocFrameOn(0)
	d.MapPage(3, m)
	// The same page released twice in one batch must only be processed
	// once (visited-set, §4.2.4).
	n := p.OnPageQueue(d, []PageOp{
		{Kind: OpRelease, PFN: 3},
		{Kind: OpRelease, PFN: 3},
	})
	if n != 1 {
		t.Fatalf("invalidated = %d, want 1", n)
	}
	if len(d.freed) != 1 {
		t.Fatalf("freed %d frames, want 1 (double free!)", len(d.freed))
	}
}

func TestRoundStaticIgnoresPageQueue(t *testing.T) {
	d := newFakeDomain(0)
	for _, kind := range []Kind{Round4K, Round1G, Interleave, LeastLoaded, Bind(0)} {
		p := mustNew(t, kind)
		m, _ := d.AllocFrameOn(0)
		d.MapPage(9, m)
		if n := p.OnPageQueue(d, []PageOp{{Kind: OpRelease, PFN: 9}}); n != 0 {
			t.Fatalf("%v processed the queue", kind)
		}
		if !d.table.Lookup(9).Valid {
			t.Fatalf("%v invalidated a page", kind)
		}
		d.table.Invalidate(9)
	}
}

// TestQuickPageQueueProtocol property-tests the reconciliation rule: for
// any op sequence, a page ends invalid iff its newest op is a release.
func TestQuickPageQueueProtocol(t *testing.T) {
	check := func(raw []uint8) bool {
		d := newFakeDomain(0)
		p := mustNew(t, FirstTouch)
		const pages = 8
		for i := mem.PFN(0); i < pages; i++ {
			m, _ := d.AllocFrameOn(0)
			d.MapPage(i, m)
		}
		ops := make([]PageOp, len(raw))
		newest := make(map[mem.PFN]PageOpKind)
		for i, r := range raw {
			op := PageOp{Kind: PageOpKind(r % 2), PFN: mem.PFN(r) % pages}
			ops[i] = op
			newest[op.PFN] = op.Kind
		}
		p.OnPageQueue(d, ops)
		for i := mem.PFN(0); i < pages; i++ {
			k, touched := newest[i]
			wantValid := !touched || k == OpAlloc
			if d.table.Lookup(i).Valid != wantValid {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPageOpKindString(t *testing.T) {
	if OpAlloc.String() != "alloc" || OpRelease.String() != "release" {
		t.Fatal("op kind strings wrong")
	}
}
