package policy

import (
	"fmt"
	"strings"
)

// Descriptor describes one registered policy: its names, its behaviour
// metadata, and the factories for its three faces (runtime Policy, boot
// placement, native placement). Registering a Descriptor is all it
// takes to make a policy runnable end-to-end: the hypervisor, guest,
// native backend, facade, CLI and experiment layers all consult the
// registry instead of switching on kinds.
type Descriptor struct {
	// Name is the canonical kind ("round-4K"). Lookups are
	// case-insensitive; Name must not contain ":" or "/".
	Name string
	// Aliases are additional accepted spellings ("r4k"). The canonical
	// lowercase name is implicit and must not be repeated here.
	Aliases []string
	// Abbrev is the paper's Table-4 shorthand ("R4K"); parameterized
	// kinds get the argument appended ("bind:3" → "B3").
	Abbrev string
	// Fault is a one-line description of the fault-time behaviour, for
	// `xnuma policies`.
	Fault string
	// Parameterized kinds are written name:<arg> ("bind:3"); DefaultArg
	// instantiates them in sweeps.
	Parameterized bool
	DefaultArg    string
	// Carrefour reports whether the dynamic Carrefour policy may stack
	// on top ("<name>/carrefour" parses only when true).
	Carrefour bool
	// BootOnly kinds are boot layouts that cannot be selected at run
	// time (round-1G, §4.2.1).
	BootOnly bool
	// RuntimeOnly kinds cannot be booted; domains running them boot
	// round-4K and switch through the hypercall (first-touch, §4.2.1).
	RuntimeOnly bool
	// UsesPageQueue activates the guest's page-queue driver (§4.2.3).
	// Such policies invalidate hypervisor entries at run time, which the
	// IOMMU cannot resolve, so selecting one disables PCI passthrough
	// (§4.4.1).
	UsesPageQueue bool
	// Contiguous reports that boot placement uses physically contiguous
	// huge regions, keeping guest-contiguous DMA buffers on one node.
	Contiguous bool

	// New builds the runtime policy. arg is the text after ":" for
	// parameterized kinds ("" otherwise); nodes is the machine's node
	// count, <= 0 when unknown (syntax checks only).
	New func(arg string, nodes int) (Policy, error)
	// NormalizeArg canonicalizes and syntax-checks arg for
	// parameterized kinds (nil for plain kinds).
	NormalizeArg func(arg string) (string, error)
	// Boot eagerly populates a domain's physical space at build time;
	// nil boots lazily (see BootPlacer).
	Boot BootPlacer
	// Native builds the per-backend native-Linux placer; nil means the
	// policy does not exist natively.
	Native func(arg string, nodes int) (NativePlacer, error)

	// index is the registration order, used as the stable numeric id in
	// trace events.
	index int
}

// DefaultSpelling returns the descriptor's suite-ready lowercase
// spelling, parameterized kinds instantiated with their default
// argument ("round-4k", "bind:0"). Sweeps, candidate sets and policy
// listings all derive their cache-key spellings from it, so they agree
// on what "one cell per registered policy" means.
func (d Descriptor) DefaultSpelling() string {
	name := strings.ToLower(d.Name)
	if d.Parameterized {
		name += ":" + d.DefaultArg
	}
	return name
}

// Registry maps stable string names to policy Descriptors. The zero
// value is not usable; call NewRegistry. Registration is expected at
// init time; lookups afterwards are read-only and safe for concurrent
// use.
type Registry struct {
	byName map[string]*Descriptor
	order  []*Descriptor
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Descriptor)}
}

// Register adds d to the registry. It panics on an empty or malformed
// name, a duplicate name or alias, or a missing New factory — a broken
// registration is a programming error that must not surface later as an
// unknown-policy lookup.
func (r *Registry) Register(d Descriptor) {
	if d.Name == "" {
		panic("policy: registering a descriptor with an empty name")
	}
	if strings.ContainsAny(d.Name, ":/") {
		panic(fmt.Sprintf("policy: name %q must not contain ':' or '/'", d.Name))
	}
	if d.New == nil {
		panic(fmt.Sprintf("policy: descriptor %q has no New factory", d.Name))
	}
	if d.Parameterized && d.DefaultArg == "" {
		panic(fmt.Sprintf("policy: parameterized descriptor %q needs a DefaultArg", d.Name))
	}
	if d.Parameterized && d.NormalizeArg == nil {
		panic(fmt.Sprintf("policy: parameterized descriptor %q needs a NormalizeArg", d.Name))
	}
	dd := d
	dd.index = len(r.order)
	keys := append([]string{strings.ToLower(d.Name)}, d.Aliases...)
	for _, k := range keys {
		key := strings.ToLower(k)
		if key == "" || strings.ContainsAny(key, ":/") {
			panic(fmt.Sprintf("policy: descriptor %q has malformed alias %q", d.Name, k))
		}
		if prev, dup := r.byName[key]; dup {
			panic(fmt.Sprintf("policy: name %q already registered by %q", k, prev.Name))
		}
		r.byName[key] = &dd
	}
	r.order = append(r.order, &dd)
}

// Lookup resolves kind ("first-touch", "BIND:3") to its descriptor and
// parameter. The parameter is returned in canonical form. The
// descriptor is returned by value so callers cannot mutate the shared
// registry state behind the concurrent lookups' back.
func (r *Registry) Lookup(kind Kind) (Descriptor, string, error) {
	name := strings.ToLower(strings.TrimSpace(string(kind)))
	if name == "" {
		return Descriptor{}, "", fmt.Errorf("policy: empty policy name")
	}
	base, arg, hasArg := strings.Cut(name, ":")
	d, ok := r.byName[base]
	if !ok {
		return Descriptor{}, "", fmt.Errorf("policy: unknown policy %q", kind)
	}
	if !d.Parameterized {
		if hasArg {
			return Descriptor{}, "", fmt.Errorf("policy: %s takes no argument (got %q)", d.Name, kind)
		}
		return *d, "", nil
	}
	if !hasArg || arg == "" {
		return Descriptor{}, "", fmt.Errorf("policy: %s requires an argument (%s:<arg>)", d.Name, d.Name)
	}
	norm, err := d.NormalizeArg(arg)
	if err != nil {
		return Descriptor{}, "", fmt.Errorf("policy: %s: %w", d.Name, err)
	}
	return *d, norm, nil
}

// Resolve is Lookup plus the canonical spelling of kind ("R4K" →
// "round-4K", "bind:03" → "bind:3"). Callers that store or compare
// kinds must keep the canonical form, so equality checks are not fooled
// by aliases or case.
func (r *Registry) Resolve(kind Kind) (Descriptor, string, Kind, error) {
	d, arg, err := r.Lookup(kind)
	if err != nil {
		return Descriptor{}, "", "", err
	}
	canon := Kind(d.Name)
	if d.Parameterized {
		canon = Kind(d.Name + ":" + arg)
	}
	return d, arg, canon, nil
}

// Canonical returns kind in canonical spelling.
func (r *Registry) Canonical(kind Kind) (Kind, error) {
	_, _, canon, err := r.Resolve(kind)
	return canon, err
}

// List returns the registered descriptors in registration order.
func (r *Registry) List() []Descriptor {
	out := make([]Descriptor, len(r.order))
	for i, d := range r.order {
		out[i] = *d
	}
	return out
}

// IndexOf returns kind's stable registration index (the numeric policy
// id recorded in trace events), or -1 when unknown.
func (r *Registry) IndexOf(kind Kind) int {
	d, _, err := r.Lookup(kind)
	if err != nil {
		return -1
	}
	return d.index
}

// Default is the process-wide registry holding the built-in policies.
var Default = NewRegistry()

// Register adds a descriptor to the default registry (see
// Registry.Register).
func Register(d Descriptor) { Default.Register(d) }

// Describe resolves kind in the default registry.
func Describe(kind Kind) (Descriptor, string, error) { return Default.Lookup(kind) }

// Resolve resolves kind in the default registry, also returning its
// canonical spelling.
func Resolve(kind Kind) (Descriptor, string, Kind, error) { return Default.Resolve(kind) }

// Canonical returns kind's canonical spelling in the default registry.
func Canonical(kind Kind) (Kind, error) { return Default.Canonical(kind) }

// CheckConfig validates a full configuration against the registry: the
// kind must be registered and Carrefour may only stack where the
// descriptor allows it. Parse applies the same rules; CheckConfig is
// for configurations built programmatically.
func CheckConfig(cfg Config) error {
	d, _, err := Describe(cfg.Static)
	if err != nil {
		return err
	}
	if cfg.Carrefour && !d.Carrefour {
		return fmt.Errorf("policy: carrefour cannot stack on %s", d.Name)
	}
	if !ValidCarrefourVariant(cfg.CarrefourVariant) {
		return fmt.Errorf("policy: unknown carrefour variant %q", cfg.CarrefourVariant)
	}
	if cfg.CarrefourVariant != "" && !cfg.Carrefour {
		return fmt.Errorf("policy: carrefour variant %q without carrefour", cfg.CarrefourVariant)
	}
	return nil
}

// List returns the default registry's descriptors in registration
// order.
func List() []Descriptor { return Default.List() }

// IndexOf returns kind's registration index in the default registry.
func IndexOf(kind Kind) int { return Default.IndexOf(kind) }

// Parse parses a policy configuration string: a registered kind in any
// case or alias spelling, optionally suffixed "/carrefour" (e.g.
// "round-4k/carrefour", "ft", "bind:3"), itself optionally carrying a
// heuristic variant ("/carrefour:migration", "/carrefour:replication",
// with "mig"/"repl" accepted as shorthands). The returned Config
// carries the canonical kind and variant, so Parse(cfg.String())
// round-trips.
func Parse(s string) (Config, error) {
	var cfg Config
	name := strings.ToLower(strings.TrimSpace(s))
	if base, suffix, ok := strings.Cut(name, "/"); ok {
		variant, err := parseCarrefourSuffix(suffix)
		if err != nil {
			return Config{}, err
		}
		cfg.Carrefour = true
		cfg.CarrefourVariant = variant
		name = base
	}
	d, _, canon, err := Resolve(Kind(name))
	if err != nil {
		return Config{}, err
	}
	if cfg.Carrefour && !d.Carrefour {
		return Config{}, fmt.Errorf("policy: carrefour cannot stack on %s", d.Name)
	}
	cfg.Static = canon
	return cfg, nil
}

// parseCarrefourSuffix canonicalizes the text after the "/" of a policy
// string: "carrefour" or "carrefour:<variant>".
func parseCarrefourSuffix(suffix string) (string, error) {
	rest, ok := strings.CutPrefix(suffix, "carrefour")
	if !ok {
		return "", fmt.Errorf("policy: unknown suffix %q (want /carrefour[:variant])", suffix)
	}
	if rest == "" {
		return CarrefourFull, nil
	}
	variant, ok := strings.CutPrefix(rest, ":")
	if !ok {
		return "", fmt.Errorf("policy: unknown suffix %q (want /carrefour[:variant])", suffix)
	}
	switch variant {
	case "migration", "mig":
		return CarrefourMigrationOnly, nil
	case "replication", "repl":
		return CarrefourReplicationOnly, nil
	default:
		return "", fmt.Errorf("policy: unknown carrefour variant %q (want migration or replication)", variant)
	}
}
