package policy

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/pt"
	"repro/internal/sim"
)

// fakeSwitcher extends fakeDomain with the PolicySwitcher face, recording
// every switch request.
type fakeSwitcher struct {
	*fakeDomain
	cfg      Config
	switches []Config
}

func (s *fakeSwitcher) Policy() Config { return s.cfg }

func (s *fakeSwitcher) HypercallSetPolicy(cfg Config) (sim.Time, error) {
	s.switches = append(s.switches, cfg)
	s.cfg = cfg
	return 0, nil
}

// fault drives n not-present faults (distinct pages) into p from
// accessor, continuing the pfn sequence at start.
func fault(p Policy, d DomainOps, start, n int, accessor numa.NodeID) {
	for i := start; i < start+n; i++ {
		p.HandleFault(d, mem.PFN(i), accessor, pt.FaultNotPresent)
	}
}

// TestAdaptiveSwitchesAfterStableWindows: the probe phase must observe
// at least adaptiveMinChecks windows, and switches exactly once — to
// first-touch, preserving the domain's Carrefour stacking — when two
// consecutive windows' imbalance agrees.
func TestAdaptiveSwitchesAfterStableWindows(t *testing.T) {
	d := &fakeSwitcher{
		fakeDomain: newFakeDomain(0, 1, 2, 3),
		cfg:        Config{Static: Adaptive, Carrefour: true, CarrefourVariant: CarrefourMigrationOnly},
	}
	p := newAdaptive(4)
	p.window = 8

	// One window: stable-looking (least-loaded spreads evenly) but below
	// the minimum number of checks.
	fault(p, d, 0, p.window, 2)
	if len(d.switches) != 0 {
		t.Fatalf("switched after one window (min is %d)", p.minChecks)
	}
	// Second window: imbalance unchanged → switch.
	fault(p, d, p.window, p.window, 2)
	if len(d.switches) != 1 {
		t.Fatalf("switches = %d, want 1", len(d.switches))
	}
	want := Config{Static: FirstTouch, Carrefour: true, CarrefourVariant: CarrefourMigrationOnly}
	if d.switches[0] != want {
		t.Fatalf("switched to %+v, want %+v", d.switches[0], want)
	}
	// Further faults must not switch again.
	fault(p, d, 2*p.window, 2*p.window, 2)
	if len(d.switches) != 1 {
		t.Fatalf("switched again: %d switches", len(d.switches))
	}
}

// TestAdaptiveDegradesWithoutSwitcher: on a DomainOps without the
// PolicySwitcher face the decision still takes effect — the policy
// behaves like first-touch in place.
func TestAdaptiveDegradesWithoutSwitcher(t *testing.T) {
	d := newFakeDomain(0, 1, 2, 3)
	p := newAdaptive(4)
	p.window = 8
	fault(p, d, 0, 2*p.window, 0)
	if !p.switched {
		t.Fatal("probe never stabilized")
	}
	// The next fault from node 3 must place on the accessor's node
	// (first-touch), not on the least-loaded node.
	pfn := mem.PFN(1000)
	p.HandleFault(d, pfn, 3, pt.FaultNotPresent)
	e := d.table.Lookup(pfn)
	if !e.Valid || d.NodeOfFrame(e.MFN) != 3 {
		t.Fatal("degraded adaptive did not place on the accessor's node")
	}
}

// TestAdaptiveProbePlacesLeastLoaded: before the switch the policy
// places like least-loaded, ignoring the accessor.
func TestAdaptiveProbePlacesLeastLoaded(t *testing.T) {
	d := newFakeDomain(0, 1)
	d.free[1] = 1 << 20 // node 1 has the most free memory
	p := newAdaptive(4)
	p.HandleFault(d, 5, 0, pt.FaultNotPresent)
	e := d.table.Lookup(5)
	if !e.Valid || d.NodeOfFrame(e.MFN) != 1 {
		t.Fatal("probe did not place on the least-loaded node")
	}
}

// TestAdaptiveComparesWindowsNotCumulative: stability is judged on
// per-window histograms. A window whose placement differs sharply from
// the previous one must not switch (a cumulative histogram's imbalance
// would converge by construction and mask the swing); once two
// consecutive windows agree again, the switch fires.
func TestAdaptiveComparesWindowsNotCumulative(t *testing.T) {
	d := &fakeSwitcher{
		fakeDomain: newFakeDomain(0, 1, 2, 3),
		cfg:        Config{Static: Adaptive},
	}
	p := newAdaptive(4)
	p.window = 8
	// Window 1: balanced free memory → even spread, imbalance ~0.
	fault(p, d, 0, p.window, 0)
	// Window 2: node 2 overwhelmingly free → every placement lands
	// there, imbalance ~173. The jump must block the switch.
	d.free[2] = 1 << 40
	fault(p, d, p.window, p.window, 0)
	if len(d.switches) != 0 {
		t.Fatal("switched across a window whose placement swung")
	}
	// Window 3: node 2 still dominates → same imbalance as window 2 →
	// consecutive windows agree → switch.
	fault(p, d, 2*p.window, p.window, 0)
	if len(d.switches) != 1 {
		t.Fatalf("switches = %d, want 1 after two agreeing windows", len(d.switches))
	}
}

// TestAdaptiveHistogramPresized: windows must be compared over
// histograms of the machine's full node count. A window entirely on
// node 0 is maximally imbalanced (RelStdDev over [W,0,0,0]), not
// "balanced" as a length-1 histogram would read, so it must not pair
// with an even window as stable.
func TestAdaptiveHistogramPresized(t *testing.T) {
	d := &fakeSwitcher{
		fakeDomain: newFakeDomain(0, 1, 2, 3),
		cfg:        Config{Static: Adaptive},
	}
	p := newAdaptive(4)
	p.window = 8
	// Window 1: node 0 overwhelmingly free → all placements on node 0.
	d.free[0] = 1 << 40
	fault(p, d, 0, p.window, 1)
	// Window 2: free memory balanced again → even spread. The imbalance
	// swing (265% → 0%) must block the switch.
	d.free[0] = 0
	fault(p, d, p.window, p.window, 1)
	if len(d.switches) != 0 {
		t.Fatal("single-node window compared as balanced: histogram not presized")
	}
}
