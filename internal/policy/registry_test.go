package policy

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/pt"
)

func stubDescriptor(name string) Descriptor {
	return Descriptor{
		Name: name,
		New:  func(string, int) (Policy, error) { return &roundStatic{kind: Kind(name)}, nil },
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Register(stubDescriptor("alpha"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Register(stubDescriptor("Alpha")) // names are case-insensitive
}

func TestRegisterDuplicateAliasPanics(t *testing.T) {
	r := NewRegistry()
	d := stubDescriptor("alpha")
	d.Aliases = []string{"a"}
	r.Register(d)
	d2 := stubDescriptor("beta")
	d2.Aliases = []string{"a"}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate alias did not panic")
		}
	}()
	r.Register(d2)
}

func TestRegisterParameterizedWithoutNormalizePanics(t *testing.T) {
	r := NewRegistry()
	d := stubDescriptor("param")
	d.Parameterized = true
	d.DefaultArg = "1"
	defer func() {
		if recover() == nil {
			t.Fatal("parameterized descriptor without NormalizeArg did not panic")
		}
	}()
	r.Register(d)
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("empty name did not panic")
		}
	}()
	r.Register(stubDescriptor(""))
}

func TestRegisterMalformedNamePanics(t *testing.T) {
	for _, name := range []string{"a:b", "a/b"} {
		func() {
			r := NewRegistry()
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q did not panic", name)
				}
			}()
			r.Register(stubDescriptor(name))
		}()
	}
}

func TestLookupAliasesAndCase(t *testing.T) {
	for in, want := range map[Kind]Kind{
		"r4k": Round4K, "ROUND-1G": Round1G, "ft": FirstTouch,
		"IL": Interleave, "ll": LeastLoaded, "BIND:03": "bind:3",
	} {
		got, err := Default.Canonical(in)
		if err != nil {
			t.Fatalf("Canonical(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("Canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLookupArguments(t *testing.T) {
	for _, bad := range []Kind{"bind", "bind:", "bind:x", "bind:-1", "round-4k:3", "", "nosuch"} {
		if _, _, err := Describe(bad); err == nil {
			t.Errorf("Describe(%q) accepted", bad)
		}
	}
	if _, err := New("bind:9", 8); err == nil {
		t.Error("bind:9 accepted on an 8-node machine")
	}
	if _, err := New("bind:7", 8); err != nil {
		t.Errorf("bind:7 rejected on an 8-node machine: %v", err)
	}
}

// TestParseRoundTrip is the registry-wide property: for every
// registered policy (parameterized kinds instantiated with their
// default argument) and every legal Carrefour suffix,
// Parse(cfg.String()) == cfg.
func TestParseRoundTrip(t *testing.T) {
	for _, d := range List() {
		name := d.Name
		if d.Parameterized {
			name += ":" + d.DefaultArg
		}
		variants := []string{name}
		if d.Carrefour {
			variants = append(variants, name+"/carrefour",
				name+"/carrefour:migration", name+"/carrefour:mig",
				name+"/carrefour:replication", name+"/carrefour:repl")
		}
		for _, v := range variants {
			cfg, err := Parse(v)
			if err != nil {
				t.Fatalf("Parse(%q): %v", v, err)
			}
			again, err := Parse(cfg.String())
			if err != nil {
				t.Fatalf("Parse(%q.String() = %q): %v", v, cfg.String(), err)
			}
			if again != cfg {
				t.Errorf("round trip broke: %q → %+v → %q → %+v", v, cfg, cfg.String(), again)
			}
		}
	}
}

func TestParseRejectsCarrefourOnBind(t *testing.T) {
	if _, err := Parse("bind:2/carrefour"); err == nil {
		t.Fatal("carrefour stacked on bind")
	}
}

func TestIndexOfStableForOriginals(t *testing.T) {
	// The trace ids of the paper's three policies match the historical
	// enum values.
	for k, want := range map[Kind]int{Round1G: 0, Round4K: 1, FirstTouch: 2} {
		if got := IndexOf(k); got != want {
			t.Errorf("IndexOf(%s) = %d, want %d", k, got, want)
		}
	}
	if IndexOf("nosuch") != -1 {
		t.Error("unknown kind has an index")
	}
}

func TestAbbrevs(t *testing.T) {
	for k, want := range map[Kind]string{
		Round4K: "R4K", Round1G: "R1G", FirstTouch: "FT",
		Interleave: "IL", LeastLoaded: "LL", "bind:3": "B3",
		"unknown": "unknown",
	} {
		if got := Abbrev(k); got != want {
			t.Errorf("Abbrev(%s) = %q, want %q", k, got, want)
		}
	}
}

func TestBootKinds(t *testing.T) {
	for k, want := range map[Kind]Kind{
		Round1G: Round1G, Round4K: Round4K, FirstTouch: Round4K,
		Interleave: Interleave, LeastLoaded: LeastLoaded, "bind:3": "bind:3",
	} {
		got, err := BootKind(k)
		if err != nil {
			t.Fatalf("BootKind(%s): %v", k, err)
		}
		if got != want {
			t.Errorf("BootKind(%s) = %s, want %s", k, got, want)
		}
	}
}

func TestListIsOpen(t *testing.T) {
	names := make([]string, 0)
	for _, d := range List() {
		names = append(names, d.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"round-1G", "round-4K", "first-touch", "interleave", "bind", "least-loaded"} {
		if !strings.Contains(joined, want) {
			t.Errorf("registry missing %q (have %s)", want, joined)
		}
	}
}

// --- placement distribution of the three new policies ---

func TestInterleaveFaultsRoundRobin(t *testing.T) {
	d := newFakeDomain(1, 3)
	p := mustNew(t, Interleave)
	nodes := make(map[numa.NodeID]int)
	for i := mem.PFN(0); i < 10; i++ {
		p.HandleFault(d, i, 0, pt.FaultNotPresent)
		nodes[d.NodeOfFrame(d.table.Lookup(i).MFN)]++
	}
	if nodes[1] != 5 || nodes[3] != 5 {
		t.Fatalf("interleave distribution = %v, want 5/5 over homes", nodes)
	}
}

func TestBindFaultsOnBoundNode(t *testing.T) {
	d := newFakeDomain(0, 1, 2, 3)
	p := mustNew(t, Bind(2))
	for i := mem.PFN(0); i < 8; i++ {
		p.HandleFault(d, i, 0, pt.FaultNotPresent) // accessor ignored
		if n := d.NodeOfFrame(d.table.Lookup(i).MFN); n != 2 {
			t.Fatalf("page %d on node %d, want 2", i, n)
		}
	}
	if p.Kind() != Kind("bind:2") {
		t.Fatalf("kind = %s", p.Kind())
	}
}

func TestLeastLoadedFaultsOnFreestHome(t *testing.T) {
	d := newFakeDomain(0, 1, 2)
	d.free[0], d.free[1], d.free[2] = 4*mem.PageSize, 6*mem.PageSize, 5*mem.PageSize
	p := mustNew(t, LeastLoaded)
	// The fake debits one page per allocation; the policy always picks
	// the freest home, ties breaking toward the earliest home.
	want := []numa.NodeID{1, 1, 2, 0, 1}
	for i, w := range want {
		p.HandleFault(d, mem.PFN(i), 3, pt.FaultNotPresent)
		if n := d.NodeOfFrame(d.table.Lookup(mem.PFN(i)).MFN); n != w {
			t.Fatalf("fault %d on node %d, want %d (free %v)", i, n, w, d.free)
		}
	}
}

func TestParseRejectsBadCarrefourSuffix(t *testing.T) {
	for _, s := range []string{
		"round-4k/carrefour:nosuch", "round-4k/nosuch",
		"round-4k/carrefour:", "bind:2/carrefour:migration",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestCheckConfigVariants(t *testing.T) {
	ok := Config{Static: Round4K, Carrefour: true, CarrefourVariant: CarrefourMigrationOnly}
	if err := CheckConfig(ok); err != nil {
		t.Fatalf("valid variant rejected: %v", err)
	}
	for _, bad := range []Config{
		{Static: Round4K, Carrefour: true, CarrefourVariant: "nosuch"},
		{Static: Round4K, CarrefourVariant: CarrefourMigrationOnly}, // variant without carrefour
	} {
		if err := CheckConfig(bad); err == nil {
			t.Errorf("CheckConfig(%+v) accepted", bad)
		}
	}
}
