package policy

import (
	"fmt"
	"strconv"

	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/pt"
)

// The built-in policies. The first three registrations are the paper's
// static policies and keep registration indices 0/1/2 (the ids recorded
// in policy-switch trace events); the later registrations prove the
// registry is open: interleave, bind:<node>, least-loaded and adaptive
// run end-to-end under both Xen and native Linux without any layer
// outside this package switching on their kinds.
func init() {
	Register(Descriptor{
		Name:       "round-1G",
		Aliases:    []string{"round1g", "r1g"},
		Abbrev:     "R1G",
		Fault:      "stray faults round-robin over the home nodes",
		Carrefour:  true,
		BootOnly:   true,
		Contiguous: true,
		Boot:       bootRound1G,
		New:        func(string, int) (Policy, error) { return &roundStatic{kind: Round1G}, nil },
	})
	Register(Descriptor{
		Name:      "round-4K",
		Aliases:   []string{"round4k", "r4k"},
		Abbrev:    "R4K",
		Fault:     "stray faults round-robin over the home nodes",
		Carrefour: true,
		Boot:      bootRound4K,
		New:       func(string, int) (Policy, error) { return &roundStatic{kind: Round4K}, nil },
		Native: func(_ string, nodes int) (NativePlacer, error) {
			return &nativeRoundRobin{nodes: nodes}, nil
		},
	})
	Register(Descriptor{
		Name:          "first-touch",
		Aliases:       []string{"firsttouch", "ft"},
		Abbrev:        "FT",
		Fault:         "allocates on the accessor's node; releases invalidate via the page queue",
		Carrefour:     true,
		RuntimeOnly:   true,
		UsesPageQueue: true,
		New:           func(string, int) (Policy, error) { return &firstTouch{}, nil },
		Native: func(string, int) (NativePlacer, error) {
			return nativeFirstTouch{}, nil
		},
	})
	Register(Descriptor{
		Name:      "interleave",
		Aliases:   []string{"il"},
		Abbrev:    "IL",
		Fault:     "allocates round-robin over the home nodes at fault time",
		Carrefour: true,
		New:       func(string, int) (Policy, error) { return &roundStatic{kind: Interleave}, nil },
		Native: func(_ string, nodes int) (NativePlacer, error) {
			return &nativeRoundRobin{nodes: nodes}, nil
		},
	})
	Register(Descriptor{
		Name:          "bind",
		Abbrev:        "B",
		Fault:         "allocates on the bound node, falling back when its bank is full",
		Parameterized: true,
		DefaultArg:    "0",
		NormalizeArg:  normalizeBindArg,
		New: func(arg string, nodes int) (Policy, error) {
			node, err := bindNode(arg, nodes)
			if err != nil {
				return nil, err
			}
			return &bindPolicy{node: node}, nil
		},
		Native: func(arg string, nodes int) (NativePlacer, error) {
			node, err := bindNode(arg, nodes)
			if err != nil {
				return nil, err
			}
			return nativeBind{node: node}, nil
		},
	})
	Register(Descriptor{
		Name:      "least-loaded",
		Aliases:   []string{"leastloaded", "ll"},
		Abbrev:    "LL",
		Fault:     "allocates on the home node with the most free memory at fault time",
		Carrefour: true,
		New:       func(string, int) (Policy, error) { return &leastLoaded{}, nil },
		Native: func(_ string, nodes int) (NativePlacer, error) {
			return nativeLeastLoaded{nodes: nodes}, nil
		},
	})
	registerAdaptive()
}

// --- eager boot placement (BootPlacer hooks) ---

// bootRound4K maps every physical page round-robin on the home nodes.
// MapPage records per-page ownership, so first-touch can later
// invalidate and free any of these frames individually.
func bootRound4K(b BootOps) error {
	homes := b.HomeNodes()
	pages := b.PhysPages()
	for p := uint64(0); p < pages; p++ {
		node := homes[int(p)%len(homes)]
		mfn, err := b.AllocFrameOn(node)
		if err != nil {
			return err
		}
		b.MapPage(mem.PFN(p), mfn)
	}
	return nil
}

// bootRound1G implements §3.3: allocate by huge regions round-robin
// from the home nodes; the first and last "GiB" of the physical space
// are fragmented (BIOS and I/O holes) and are therefore allocated in
// mid and 4 KiB regions instead.
func bootRound1G(b BootOps) error {
	huge, mid := b.RegionOrders()
	hugeFrames := mem.FramesOf(huge)
	midFrames := mem.FramesOf(mid)
	homes := b.HomeNodes()
	rr := 0
	// allocRegion allocates 2^order frames on the next home node (with
	// fallback to the following homes) and maps them phys-contiguously
	// starting at base.
	allocRegion := func(base uint64, order int) error {
		var mfn mem.MFN
		var err error
		for try := 0; try < len(homes); try++ {
			node := homes[rr%len(homes)]
			rr++
			mfn, err = b.AllocRegion(node, order)
			if err == nil {
				break
			}
		}
		if err != nil {
			return err
		}
		b.MapRegion(mem.PFN(base), mfn, order)
		return nil
	}
	pages := b.PhysPages()
	p := uint64(0)
	for p < pages {
		remaining := pages - p
		inFirstGiB := p < hugeFrames
		inLastGiB := pages > hugeFrames && p >= pages-hugeFrames
		switch {
		case !inFirstGiB && !inLastGiB && remaining >= hugeFrames:
			if err := allocRegion(p, huge); err != nil {
				return err
			}
			p += hugeFrames
		case remaining >= midFrames:
			if err := allocRegion(p, mid); err != nil {
				return err
			}
			p += midFrames
		default:
			if err := allocRegion(p, mem.Order4K); err != nil {
				return err
			}
			p++
		}
	}
	return nil
}

// --- runtime policies (hypervisor side) ---

// roundStatic covers round-4K, round-1G and interleave: all three
// resolve faults round-robin over the home nodes and ignore page
// queues. For the eager kinds placement happened at domain creation (by
// the BootPlacer), so only stray faults — pages invalidated by an
// earlier first-touch phase — reach HandleFault; interleave boots
// lazily, so every page takes this path on its first access.
type roundStatic struct {
	kind Kind
	next int
}

func (p *roundStatic) Kind() Kind { return p.kind }

func (p *roundStatic) HandleFault(d DomainOps, pfn mem.PFN, accessor numa.NodeID, kind pt.FaultKind) {
	if kind == pt.FaultWriteProtected {
		// Migration in flight finished; just unprotect.
		d.Table().Unprotect(pfn)
		return
	}
	homes := d.HomeNodes()
	node := homes[p.next%len(homes)]
	p.next++
	mfn, err := d.AllocFrameOn(node)
	if err != nil {
		panic(fmt.Sprintf("policy: %v fault allocation failed: %v", p.kind, err))
	}
	d.MapPage(pfn, mfn)
}

func (p *roundStatic) OnPageQueue(DomainOps, []PageOp) int { return 0 }

// firstTouch implements §4.2: released pages have their hypervisor
// page-table entry invalidated so the next access faults, and the fault
// allocates the backing frame on the accessor's node.
type firstTouch struct {
	// seen is OnPageQueue's per-batch dedup scratch, kept across batches
	// so the free-list flush on a policy switch (thousands of batches)
	// reuses one map instead of allocating per call. Policies are
	// per-domain and batches are processed one at a time, so no aliasing.
	seen map[mem.PFN]struct{}
}

func (p *firstTouch) Kind() Kind { return FirstTouch }

func (p *firstTouch) HandleFault(d DomainOps, pfn mem.PFN, accessor numa.NodeID, kind pt.FaultKind) {
	if kind == pt.FaultWriteProtected {
		d.Table().Unprotect(pfn)
		return
	}
	mfn, err := d.AllocFrameOn(accessor)
	if err != nil {
		panic(fmt.Sprintf("policy: first-touch fault allocation failed: %v", err))
	}
	d.MapPage(pfn, mfn)
}

// OnPageQueue implements the reconciliation protocol of §4.2.4: scan the
// queue from the most recent operation, keep the first (most recent)
// operation seen for each page, invalidate pages whose latest operation
// is a release, and leave reallocated pages where they are (copying their
// content would be too costly in the common case).
func (p *firstTouch) OnPageQueue(d DomainOps, ops []PageOp) int {
	if p.seen == nil {
		p.seen = make(map[mem.PFN]struct{}, len(ops))
	} else {
		clear(p.seen)
	}
	invalidated := 0
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		if _, dup := p.seen[op.PFN]; dup {
			continue
		}
		p.seen[op.PFN] = struct{}{}
		if op.Kind == OpRelease {
			d.InvalidatePage(op.PFN)
			invalidated++
		}
	}
	return invalidated
}

// bindPolicy allocates every faulted page on one preferred node;
// AllocFrameOn's round-robin fallback covers the bank filling up.
type bindPolicy struct {
	node numa.NodeID
}

func (p *bindPolicy) Kind() Kind { return Bind(p.node) }

func (p *bindPolicy) HandleFault(d DomainOps, pfn mem.PFN, accessor numa.NodeID, kind pt.FaultKind) {
	if kind == pt.FaultWriteProtected {
		d.Table().Unprotect(pfn)
		return
	}
	mfn, err := d.AllocFrameOn(p.node)
	if err != nil {
		panic(fmt.Sprintf("policy: bind:%d fault allocation failed: %v", p.node, err))
	}
	d.MapPage(pfn, mfn)
}

func (p *bindPolicy) OnPageQueue(DomainOps, []PageOp) int { return 0 }

// leastLoaded allocates each faulted page on the home node with the
// most free machine memory at fault time (ties break toward the first
// home in domain order, keeping runs deterministic).
type leastLoaded struct{}

func (p *leastLoaded) Kind() Kind { return LeastLoaded }

func (p *leastLoaded) HandleFault(d DomainOps, pfn mem.PFN, accessor numa.NodeID, kind pt.FaultKind) {
	if kind == pt.FaultWriteProtected {
		d.Table().Unprotect(pfn)
		return
	}
	homes := d.HomeNodes()
	best, bestFree := homes[0], d.NodeFreeBytes(homes[0])
	for _, n := range homes[1:] {
		if free := d.NodeFreeBytes(n); free > bestFree {
			best, bestFree = n, free
		}
	}
	mfn, err := d.AllocFrameOn(best)
	if err != nil {
		panic(fmt.Sprintf("policy: least-loaded fault allocation failed: %v", err))
	}
	d.MapPage(pfn, mfn)
}

func (p *leastLoaded) OnPageQueue(DomainOps, []PageOp) int { return 0 }

// --- native placers (Linux side) ---

// nativeFirstTouch places on the toucher's node (§3.1).
type nativeFirstTouch struct{}

func (nativeFirstTouch) PlaceNode(toucher numa.NodeID, _ func(numa.NodeID) int64) numa.NodeID {
	return toucher
}

// nativeRoundRobin spreads pages round-robin over every node (round-4K
// and interleave: natively both are the lazy allocator placing
// round-robin).
type nativeRoundRobin struct {
	nodes int
	rr    int
}

func (p *nativeRoundRobin) PlaceNode(numa.NodeID, func(numa.NodeID) int64) numa.NodeID {
	n := numa.NodeID(p.rr % p.nodes)
	p.rr++
	return n
}

// nativeBind prefers one node; the backend's fallback handles overflow.
type nativeBind struct {
	node numa.NodeID
}

func (p nativeBind) PlaceNode(numa.NodeID, func(numa.NodeID) int64) numa.NodeID { return p.node }

// nativeLeastLoaded places on the node with the most free memory.
type nativeLeastLoaded struct {
	nodes int
}

func (p nativeLeastLoaded) PlaceNode(_ numa.NodeID, free func(numa.NodeID) int64) numa.NodeID {
	best, bestFree := numa.NodeID(0), free(0)
	for i := 1; i < p.nodes; i++ {
		if f := free(numa.NodeID(i)); f > bestFree {
			best, bestFree = numa.NodeID(i), f
		}
	}
	return best
}

// --- bind argument handling ---

func normalizeBindArg(arg string) (string, error) {
	n, err := strconv.Atoi(arg)
	if err != nil || n < 0 {
		return "", fmt.Errorf("bad node %q (want bind:<node>)", arg)
	}
	return strconv.Itoa(n), nil
}

func bindNode(arg string, nodes int) (numa.NodeID, error) {
	n, err := strconv.Atoi(arg)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("policy: bad bind node %q", arg)
	}
	if nodes > 0 && n >= nodes {
		return 0, fmt.Errorf("policy: bind node %d out of range (machine has %d nodes)", n, nodes)
	}
	return numa.NodeID(n), nil
}
