package engine

import (
	"testing"

	"repro/internal/iosim"
	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/sim"
	"repro/internal/workload"
)

// stubBackend is a minimal in-memory Backend for engine unit tests: it
// places pages where a simple policy says and tracks no real frames.
type stubBackend struct {
	topo     *numa.Topology
	spread   bool // round-robin instead of on-toucher
	nextMFN  mem.PFN
	rr       int
	share    float64
	migrated int
}

func newStub(topo *numa.Topology, spread bool) *stubBackend {
	return &stubBackend{topo: topo, spread: spread, share: 1}
}

func (b *stubBackend) Name() string { return "stub" }

func (b *stubBackend) Place(r *Region, n int, toucher numa.NodeID) (sim.Time, error) {
	for i := 0; i < n; i++ {
		node := toucher
		if b.spread {
			node = numa.NodeID(b.rr % b.topo.NumNodes())
			b.rr++
		}
		r.AddPage(b.nextMFN, node)
		b.nextMFN++
	}
	return sim.Time(n) * sim.Microsecond, nil
}

func (b *stubBackend) Migrate(r *Region, i int, to numa.NodeID) bool {
	if r.NodeOf(i) == to {
		return false
	}
	r.SetNode(i, to)
	b.migrated++
	return true
}

func (b *stubBackend) Release(*Region) sim.Time           { return 0 }
func (b *stubBackend) ChurnOverhead(float64, int) float64 { return 0 }
func (b *stubBackend) IO() (iosim.Path, iosim.BufferPlacement) {
	return iosim.PathNative, iosim.BufferScattered
}
func (b *stubBackend) Virtualized() bool { return false }
func (b *stubBackend) ThreadNode(i int) numa.NodeID {
	return b.topo.NodeOf(numa.CPUID(i % b.topo.NumCPUs()))
}
func (b *stubBackend) CPUShare(int) float64 { return b.share }
func (b *stubBackend) HomeNodes() []numa.NodeID {
	out := make([]numa.NodeID, b.topo.NumNodes())
	for i := range out {
		out[i] = numa.NodeID(i)
	}
	return out
}

func testProfile() workload.Profile {
	p, err := workload.Get("cg.C")
	if err != nil {
		panic(err)
	}
	p.BaselineSeconds = 0.3 // keep unit tests fast
	return p
}

func testConfig(topo *numa.Topology) Config {
	cfg := DefaultConfig(topo, 64)
	cfg.MaxTime = 30 * sim.Second
	return cfg
}

func TestRegionHistogramInvariant(t *testing.T) {
	r := NewRegion("r", RegionDist, 0, 4)
	r.AddPage(0, 1)
	r.AddPage(1, 1)
	r.AddPage(2, 3)
	r.AddPage(3, 3)
	d := r.Dist()
	if d[1] != 0.5 || d[3] != 0.5 {
		t.Fatalf("dist = %v", d)
	}
	r.SetNode(0, 2)
	d = r.Dist()
	if d[1] != 0.25 || d[2] != 0.25 || d[3] != 0.5 {
		t.Fatalf("dist after move = %v", d)
	}
	sum := 0.0
	for _, x := range d {
		sum += x
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("dist sums to %v", sum)
	}
}

func TestRegionAccessHead(t *testing.T) {
	r := NewRegion("r", RegionMaster, 0, 4)
	r.SetAccessHead(2)
	r.AddPage(0, 0)
	r.AddPage(1, 0)
	r.AddPage(2, 3)
	r.AddPage(3, 3)
	// Accesses concentrate on the first two pages (node 0).
	ad := r.AccessDist()
	if ad[0] != 1 || ad[3] != 0 {
		t.Fatalf("access dist = %v", ad)
	}
	// Migrating a head page updates the head histogram.
	r.SetNode(0, 2)
	ad = r.AccessDist()
	if ad[0] != 0.5 || ad[2] != 0.5 {
		t.Fatalf("access dist after head move = %v", ad)
	}
	// Migrating a tail page does not.
	r.SetNode(3, 1)
	if got := r.AccessDist(); got[1] != 0 {
		t.Fatalf("tail move leaked into access dist: %v", got)
	}
}

func TestRegionDistCachingInvalidation(t *testing.T) {
	r := NewRegion("r", RegionMaster, 0, 4)
	r.AddPage(0, 1)
	d1 := r.Dist()
	if d1[1] != 1 {
		t.Fatalf("dist = %v", d1)
	}
	// A clean region hands out its cache, not a fresh slice.
	if d2 := r.Dist(); &d1[0] != &d2[0] {
		t.Fatal("Dist reallocated without a placement mutation")
	}
	// Every mutator invalidates.
	r.AddPage(1, 2)
	if d := r.Dist(); d[1] != 0.5 || d[2] != 0.5 {
		t.Fatalf("stale dist after AddPage: %v", d)
	}
	r.SetNode(0, 3)
	if d := r.Dist(); d[1] != 0 || d[3] != 0.5 {
		t.Fatalf("stale dist after SetNode: %v", d)
	}
	r.SetAccessHead(1)
	if ad := r.AccessDist(); ad[3] != 1 {
		t.Fatalf("stale access dist after SetAccessHead: %v", ad)
	}
	hot := NewRegion("hot", RegionHot, 0, 4)
	hot.AddPage(0, 2)
	if hd := hot.HotDist(); hd[2] != 1 {
		t.Fatalf("hot dist = %v", hd)
	}
	hot.SetNode(0, 1)
	if hd := hot.HotDist(); hd[1] != 1 || hd[2] != 0 {
		t.Fatalf("stale hot dist after SetNode: %v", hd)
	}
	if !hot.Replicate() || hot.Replicate() {
		t.Fatal("Replicate not idempotent-with-report")
	}
}

// TestStreamTableRefresh checks the canonical stream enumeration: the
// per-thread emission order, the weight split of the distributed
// streams, and the replicated-hot local flag.
func TestStreamTableRefresh(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	in := &Instance{Prof: testProfile(), Backend: newStub(topo, false), NThreads: 4}
	r := &runner{cfg: testConfig(topo), insts: []*Instance{in}, rand: sim.NewRand(1)}
	if err := r.setup(); err != nil {
		t.Fatal(err)
	}
	in.refreshStreams(false)
	tbl := &in.streamTab
	kinds := []streamKind{streamHot, streamMaster, streamPrivate, streamDistOwn, streamDistCross}
	if len(tbl.streams) != len(kinds) {
		t.Fatalf("stream count = %d, want %d", len(tbl.streams), len(kinds))
	}
	for i, k := range kinds {
		if tbl.streams[i].kind != k {
			t.Fatalf("stream %d kind = %v, want %v", i, tbl.streams[i].kind, k)
		}
	}
	wH, wM, wP, wD := in.weights()
	cross := in.Prof.CrossShare
	if tbl.streams[0].weight != wH || tbl.streams[1].weight != wM || tbl.streams[2].weight != wP {
		t.Fatal("shared/private stream weights do not match the profile")
	}
	if tbl.streams[3].weight != wD*(1-cross) || tbl.streams[4].weight != wD*cross {
		t.Fatal("distributed stream weight split does not match CrossShare")
	}
	// Per-thread streams resolve through the owning thread's region.
	for _, th := range in.Threads {
		if got := tbl.streams[2].distFor(th); &got[0] != &in.priv[th.ID].AccessDist()[0] {
			t.Fatalf("private stream of thread %d resolves to the wrong region", th.ID)
		}
	}
	if tbl.streams[0].local {
		t.Fatal("hot stream local before replication")
	}
	in.hot.Replicate()
	in.refreshStreams(false)
	if !tbl.find(streamHot).local {
		t.Fatal("hot stream not local after replication")
	}
	// The refresh reuses the table storage: no growth across epochs.
	before := cap(tbl.streams)
	in.refreshStreams(false)
	if cap(tbl.streams) != before {
		t.Fatal("refreshStreams reallocated the stream slice")
	}
}

// TestFoldRowsMatchesStreams: the per-thread node rows the fixed-point
// loop consumes must equal the brute-force fold of the stream table
// (Σ_s weight·share per node, replicated streams landing on the
// thread's own node), and the backing buffer must be reused.
func TestFoldRowsMatchesStreams(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	in := &Instance{Prof: testProfile(), Backend: newStub(topo, true), NThreads: 4}
	r := &runner{cfg: testConfig(topo), insts: []*Instance{in}, rand: sim.NewRand(1)}
	if err := r.setup(); err != nil {
		t.Fatal(err)
	}
	check := func() {
		t.Helper()
		nn := topo.NumNodes()
		for _, th := range in.Threads {
			want := make([]float64, nn)
			for si := range in.streamTab.streams {
				s := &in.streamTab.streams[si]
				if s.weight <= 0 {
					continue
				}
				if s.local {
					want[th.Node] += s.weight
					continue
				}
				for n, share := range s.distFor(th) {
					if share > 0 {
						want[n] += s.weight * share
					}
				}
			}
			row := in.row(th.ID, nn)
			for n := range want {
				if d := row[n] - want[n]; d > 1e-12 || d < -1e-12 {
					t.Fatalf("thread %d row[%d] = %v, want %v", th.ID, n, row[n], want[n])
				}
			}
		}
	}
	in.refreshStreams(false)
	check()
	// Replication redirects the hot stream into the thread's own node.
	in.hot.Replicate()
	in.refreshStreams(false)
	check()
	// The fold reuses its buffer: no growth across epochs.
	before := cap(in.rows)
	in.refreshStreams(false)
	if cap(in.rows) != before {
		t.Fatal("foldRows reallocated the row buffer")
	}
}

func TestCombinedDistWeightsByPageCount(t *testing.T) {
	// Two slices of very different sizes: the combined distribution must
	// be dominated by the larger one, not an unweighted average.
	a := NewRegion("a", RegionDist, 0, 4)
	for i := 0; i < 3; i++ {
		a.AddPage(mem.PFN(i), 0)
	}
	b := NewRegion("b", RegionDist, 1, 4)
	b.AddPage(100, 1)
	d := combinedDist([]*Region{a, b})
	if d[0] != 0.75 || d[1] != 0.25 {
		t.Fatalf("combined dist = %v, want [0.75 0.25 0 0]", d)
	}
	sum := 0.0
	for _, x := range d {
		sum += x
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("combined dist sums to %v", sum)
	}
	// Empty groups and empty regions are handled.
	if got := combinedDist(nil); got != nil {
		t.Fatalf("empty group dist = %v", got)
	}
	empty := NewRegion("e", RegionDist, 2, 4)
	d = combinedDist([]*Region{a, empty})
	if d[0] != 1 {
		t.Fatalf("dist with empty member = %v", d)
	}
}

func TestRegionHotDist(t *testing.T) {
	r := NewRegion("hot", RegionHot, 0, 4)
	r.AddPage(0, 2)
	r.AddPage(1, 3)
	hd := r.HotDist()
	if hd[2] != 1 || hd[3] != 0 {
		t.Fatalf("hot dist = %v (all accesses hit page 0)", hd)
	}
}

func TestRunCompletes(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	in := &Instance{Prof: testProfile(), Backend: newStub(topo, false), NThreads: 48}
	res, err := Run(testConfig(topo), in)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].TimedOut {
		t.Fatal("run timed out")
	}
	if res[0].Completion <= 0 {
		t.Fatal("no completion time")
	}
	if res[0].Stats.TotalAccesses <= 0 {
		t.Fatal("no accesses recorded")
	}
}

func TestRunDeterminism(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	run := func() sim.Time {
		in := &Instance{Prof: testProfile(), Backend: newStub(topo, false), NThreads: 48, Carrefour: true}
		res, err := Run(testConfig(topo), in)
		if err != nil {
			t.Fatal(err)
		}
		return res[0].Completion
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestLocalityBeatsSpread(t *testing.T) {
	// A private-access-heavy profile must finish faster with on-toucher
	// placement than with spread placement.
	topo := numa.AMD48Scaled(64)
	prof := testProfile() // cg.C: mostly private/dist-local
	local := &Instance{Prof: prof, Backend: newStub(topo, false), NThreads: 48}
	spread := &Instance{Prof: prof, Backend: newStub(topo, true), NThreads: 48}
	cfg := testConfig(topo)
	resLocal, err := Run(cfg, local)
	if err != nil {
		t.Fatal(err)
	}
	resSpread, err := Run(cfg, spread)
	if err != nil {
		t.Fatal(err)
	}
	if resLocal[0].Completion >= resSpread[0].Completion {
		t.Fatalf("local placement (%v) not faster than spread (%v)",
			resLocal[0].Completion, resSpread[0].Completion)
	}
	if resLocal[0].Locality <= resSpread[0].Locality {
		t.Fatal("locality metric inverted")
	}
}

func TestMasterSlaveImbalance(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	prof, _ := workload.Get("facesim") // master-heavy
	prof.BaselineSeconds = 0.3
	in := &Instance{Prof: prof, Backend: newStub(topo, false), NThreads: 48}
	res, err := Run(testConfig(topo), in)
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: facesim first-touch imbalance ≈ 253 %.
	if res[0].Imbalance < 200 {
		t.Fatalf("master-slave imbalance = %v, want > 200%%", res[0].Imbalance)
	}
}

func TestCarrefourMigratesImbalancedWorkload(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	prof, _ := workload.Get("facesim")
	prof.BaselineSeconds = 0.3
	base := &Instance{Prof: prof, Backend: newStub(topo, false), NThreads: 48}
	carr := &Instance{Prof: prof, Backend: newStub(topo, false), NThreads: 48, Carrefour: true}
	cfg := testConfig(topo)
	resBase, _ := Run(cfg, base)
	resCarr, _ := Run(cfg, carr)
	if resCarr[0].Migrated == 0 {
		t.Fatal("Carrefour migrated nothing on a master-slave workload")
	}
	if resCarr[0].Completion >= resBase[0].Completion {
		t.Fatalf("Carrefour did not help facesim under first-touch: %v vs %v",
			resCarr[0].Completion, resBase[0].Completion)
	}
}

func TestConsolidationSlowsDown(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	full := newStub(topo, false)
	half := newStub(topo, false)
	half.share = 0.5
	cfg := testConfig(topo)
	r1, _ := Run(cfg, &Instance{Prof: testProfile(), Backend: full, NThreads: 48})
	r2, _ := Run(cfg, &Instance{Prof: testProfile(), Backend: half, NThreads: 48})
	if float64(r2[0].Completion) < 1.5*float64(r1[0].Completion) {
		t.Fatalf("half CPU share did not roughly double completion: %v vs %v",
			r2[0].Completion, r1[0].Completion)
	}
}

func TestIOBoundThrottling(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	prof, _ := workload.Get("belief")
	prof.BaselineSeconds = 0.3
	in := &Instance{Prof: prof, Backend: newStub(topo, false), NThreads: 48}
	cfg := testConfig(topo)
	res, _ := Run(cfg, in)
	noIO := prof
	noIO.DiskMBps = 0
	in2 := &Instance{Prof: noIO, Backend: newStub(topo, false), NThreads: 48}
	res2, _ := Run(cfg, in2)
	if res[0].Completion < res2[0].Completion {
		t.Fatal("disk demand sped the run up")
	}
}

func TestTimeout(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	prof := testProfile()
	prof.BaselineSeconds = 1000
	cfg := testConfig(topo)
	cfg.MaxTime = 100 * sim.Millisecond
	res, err := Run(cfg, &Instance{Prof: prof, Backend: newStub(topo, false), NThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].TimedOut {
		t.Fatal("runaway run not marked TimedOut")
	}
}

func TestTwoInstancesContend(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	cfg := testConfig(topo)
	alone, _ := Run(cfg, &Instance{Prof: testProfile(), Backend: newStub(topo, false), NThreads: 24})
	a := &Instance{Prof: testProfile(), Backend: newStub(topo, true), NThreads: 24}
	b := &Instance{Prof: testProfile(), Backend: newStub(topo, true), NThreads: 24}
	both, err := Run(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Two spread instances share controllers and links: each must be
	// slower than a single local instance.
	if both[0].Completion <= alone[0].Completion {
		t.Fatalf("no contention between instances: %v vs %v", both[0].Completion, alone[0].Completion)
	}
}

func TestInvalidConfigs(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	if _, err := Run(Config{}, &Instance{}); err == nil {
		t.Fatal("zero config accepted")
	}
	cfg := testConfig(topo)
	if _, err := Run(cfg); err == nil {
		t.Fatal("no instances accepted")
	}
	if _, err := Run(cfg, &Instance{Prof: testProfile(), Backend: newStub(topo, false)}); err == nil {
		t.Fatal("zero threads accepted")
	}
}

// TestBurstsDegradeLowClassUnderCarrefour reproduces §3.5.2: on a
// locality-friendly ("low") application, temporary remote bursts mislead
// Carrefour into migrating private pages away, degrading the remainder
// of the run relative to plain first-touch placement.
func TestBurstsDegradeLowClassUnderCarrefour(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	prof := testProfile() // cg.C: low class
	prof.Burstiness = 1   // burst at every decision interval
	cfg := testConfig(topo)
	plain, err := Run(cfg, &Instance{Prof: prof, Backend: newStub(topo, false), NThreads: 48})
	if err != nil {
		t.Fatal(err)
	}
	carr, err := Run(cfg, &Instance{Prof: prof, Backend: newStub(topo, false), NThreads: 48, Carrefour: true})
	if err != nil {
		t.Fatal(err)
	}
	if carr[0].Completion <= plain[0].Completion {
		t.Fatalf("bursty Carrefour did not degrade the low-class app: %v vs %v",
			carr[0].Completion, plain[0].Completion)
	}
	if carr[0].Locality >= plain[0].Locality {
		t.Fatalf("locality not degraded: %.2f vs %.2f", carr[0].Locality, plain[0].Locality)
	}
}

// TestMCSRemovesIPIOverhead: a pthread-blocking profile on a virtualized
// backend speeds up when MCS is enabled.
func TestMCSRemovesIPIOverhead(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	prof, _ := workload.Get("streamcluster")
	prof.BaselineSeconds = 0.3
	b := newStub(topo, false)
	virt := *b
	virtBackend := &virtualizedStub{stubBackend: &virt}
	cfg := testConfig(topo)
	noMCS, err := Run(cfg, &Instance{Prof: prof, Backend: virtBackend, NThreads: 48})
	if err != nil {
		t.Fatal(err)
	}
	b2 := newStub(topo, false)
	virt2 := *b2
	withMCS, err := Run(cfg, &Instance{Prof: prof, Backend: &virtualizedStub{stubBackend: &virt2}, NThreads: 48, MCS: true})
	if err != nil {
		t.Fatal(err)
	}
	if withMCS[0].Completion >= noMCS[0].Completion {
		t.Fatalf("MCS did not help: %v vs %v", withMCS[0].Completion, noMCS[0].Completion)
	}
}

// virtualizedStub wraps stubBackend with guest-mode IPIs.
type virtualizedStub struct{ *stubBackend }

func (v *virtualizedStub) Virtualized() bool { return true }

// TestReplicatedHotRegionGoesLocal: the replication flag makes the hot
// stream local for every thread.
func TestReplicatedHotRegionGoesLocal(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	prof, _ := workload.Get("streamcluster") // hot share 0.17
	prof.BaselineSeconds = 0.3
	cfg := testConfig(topo)
	base, err := Run(cfg, &Instance{Prof: prof, Backend: newStub(topo, true), NThreads: 48})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-replicate by running with Carrefour + replication enabled.
	cfg2 := cfg
	cfg2.Carrefour.EnableReplication = true
	rep, err := Run(cfg2, &Instance{Prof: prof, Backend: newStub(topo, true), NThreads: 48, Carrefour: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep[0].Locality <= base[0].Locality {
		t.Fatalf("replication did not raise locality: %.2f vs %.2f", rep[0].Locality, base[0].Locality)
	}
}
