package engine

import (
	"testing"

	"repro/internal/numa"
	"repro/internal/sim"
)

// TestRefreshStreamsFoldSkip checks the steady-state fast path: when no
// region mutated (every gen counter unchanged) and no thread finished,
// refreshStreams must return without touching the folded rows, and any
// of those conditions changing — or force — must rebuild them.
func TestRefreshStreamsFoldSkip(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	in := &Instance{Prof: testProfile(), Backend: newStub(topo, false), NThreads: 4}
	r := &runner{cfg: testConfig(topo), insts: []*Instance{in}, rand: sim.NewRand(1)}
	if err := r.setup(); err != nil {
		t.Fatal(err)
	}
	in.refreshStreams(false)
	orig := in.rows[0]
	// Poke a sentinel into the rows: a skipped refresh leaves it, a
	// rebuild overwrites it (folded shares are never negative).
	in.rows[0] = -1
	in.refreshStreams(false)
	if in.rows[0] != -1 {
		t.Fatal("refreshStreams rebuilt despite unchanged gens and live count")
	}
	// force (the NoBatch reference kernel) always rebuilds.
	in.refreshStreams(true)
	if in.rows[0] != orig {
		t.Fatalf("forced refresh left rows[0] = %v, want %v", in.rows[0], orig)
	}
	// A placement mutation bumps the region gen and defeats the skip.
	in.rows[0] = -1
	in.hot.Replicate()
	in.refreshStreams(false)
	if in.rows[0] == -1 {
		t.Fatal("refreshStreams skipped after a placement mutation")
	}
	// A thread finishing changes the live count and defeats the skip.
	in.rows[0] = -1
	in.Threads[3].Done = true
	in.refreshStreams(false)
	if in.rows[0] == -1 {
		t.Fatal("refreshStreams skipped after a thread finished")
	}
}

// TestRunnerRowArena checks the batched kernel's row packing: every
// instance's folded rows alias one contiguous runner-owned arena, in
// instance order, capacity-capped so an append through one instance's
// slice can never spill into its neighbour; the NoBatch reference
// kernel leaves instances on private buffers.
func TestRunnerRowArena(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	nn := topo.NumNodes()
	a := &Instance{Prof: testProfile(), Backend: newStub(topo, false), NThreads: 3}
	b := &Instance{Prof: testProfile(), Backend: newStub(topo, false), NThreads: 5}
	r := &runner{cfg: testConfig(topo), insts: []*Instance{a, b}, rand: sim.NewRand(1)}
	if err := r.setup(); err != nil {
		t.Fatal(err)
	}
	if len(r.rowArena) != (3+5)*nn {
		t.Fatalf("arena len = %d, want %d", len(r.rowArena), (3+5)*nn)
	}
	if &a.rows[0] != &r.rowArena[0] {
		t.Fatal("instance 0 rows do not alias the arena head")
	}
	if &b.rows[0] != &r.rowArena[3*nn] {
		t.Fatal("instance 1 rows do not follow instance 0 in the arena")
	}
	if cap(a.rows) != 3*nn || cap(b.rows) != 5*nn {
		t.Fatalf("row slices not capacity-capped: caps %d, %d", cap(a.rows), cap(b.rows))
	}
	// The fold must reuse the arena backing, never reallocate off it.
	a.refreshStreams(false)
	b.refreshStreams(false)
	if &a.rows[0] != &r.rowArena[0] || &b.rows[0] != &r.rowArena[3*nn] {
		t.Fatal("foldRows moved instance rows off the arena")
	}
	cfg := testConfig(topo)
	cfg.NoBatch = true
	c := &Instance{Prof: testProfile(), Backend: newStub(topo, false), NThreads: 2}
	r2 := &runner{cfg: cfg, insts: []*Instance{c}, rand: sim.NewRand(1)}
	if err := r2.setup(); err != nil {
		t.Fatal(err)
	}
	if r2.rowArena != nil {
		t.Fatal("NoBatch built a row arena")
	}
	c.refreshStreams(true)
	if len(c.rows) != 2*nn {
		t.Fatalf("NoBatch rows len = %d, want %d", len(c.rows), 2*nn)
	}
}
