package engine

import (
	"testing"

	"repro/internal/numa"
	"repro/internal/sim"
)

// BenchmarkEpoch measures one steady-state iteration of the per-cell
// engine loop (stream-table refresh, four fixed-point rate/latency
// couplings, progress and statistics) — the unit of work every
// experiment cell repeats thousands of times. The workload is pinned in
// steady state by an effectively infinite baseline, so the number to
// watch is allocs/op: the stream table and the cached region
// distributions must keep it at zero.
//
// scripts/bench_engine.sh runs this and records ns/op and allocs/op in
// BENCH_engine.json.
func BenchmarkEpoch(b *testing.B) {
	benchEpoch(b, newStub(numa.AMD48Scaled(64), false))
}

// pinnedStub pins every thread to node 0: all 48 threads then fold to
// bitwise-identical node rows and collapse into a single dedup group.
type pinnedStub struct {
	stubBackend
}

func (b *pinnedStub) ThreadNode(int) numa.NodeID { return 0 }

// BenchmarkEpochUniqueRows is BenchmarkEpoch with every thread pinned
// to one node, the best case for the row-dedup emission: the
// fixed-point walks touch uniqueRows × nodes cells (one row here)
// instead of threads × nodes. The gap to BenchmarkEpoch measures the
// dedup win separately from the baseline kernel.
//
// scripts/bench_engine.sh records it alongside BenchmarkEpoch in
// BENCH_engine.json; allocs/op must be zero for both.
func BenchmarkEpochUniqueRows(b *testing.B) {
	benchEpoch(b, &pinnedStub{*newStub(numa.AMD48Scaled(64), false)})
}

func benchEpoch(b *testing.B, backend Backend) {
	topo := numa.AMD48Scaled(64)
	prof := testProfile()
	prof.BaselineSeconds = 1e9 // never finishes: every epoch is steady-state
	in := &Instance{Prof: prof, Backend: backend, NThreads: 48}
	cfg := testConfig(topo)
	// The bench measures the full kernel: with the converged fast path
	// on, steady-state epochs would skip the very passes being timed.
	cfg.NoConverge = true
	r := &runner{cfg: cfg, insts: []*Instance{in}, rand: sim.NewRand(cfg.Seed)}
	if err := r.setup(); err != nil {
		b.Fatal(err)
	}
	// One warm-up epoch populates the lazily allocated caches and
	// scratch buffers.
	r.epoch(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.now = sim.Time(i) * cfg.Epoch
		r.epoch(i)
	}
}
