package engine

import (
	"testing"

	"repro/internal/numa"
	"repro/internal/sim"
)

// BenchmarkEpoch measures one steady-state iteration of the per-cell
// engine loop (stream-table refresh, four fixed-point rate/latency
// couplings, progress and statistics) — the unit of work every
// experiment cell repeats thousands of times. The workload is pinned in
// steady state by an effectively infinite baseline, so the number to
// watch is allocs/op: the stream table and the cached region
// distributions must keep it at zero.
//
// scripts/bench_engine.sh runs this and records ns/op and allocs/op in
// BENCH_engine.json.
func BenchmarkEpoch(b *testing.B) {
	topo := numa.AMD48Scaled(64)
	prof := testProfile()
	prof.BaselineSeconds = 1e9 // never finishes: every epoch is steady-state
	in := &Instance{Prof: prof, Backend: newStub(topo, false), NThreads: 48}
	cfg := testConfig(topo)
	r := &runner{cfg: cfg, insts: []*Instance{in}, rand: sim.NewRand(cfg.Seed)}
	if err := r.setup(); err != nil {
		b.Fatal(err)
	}
	// One warm-up epoch populates the lazily allocated caches and
	// scratch buffers.
	r.epoch(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.now = sim.Time(i) * cfg.Epoch
		r.epoch(i)
	}
}
