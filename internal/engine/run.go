package engine

import (
	"fmt"
	"sync"

	"repro/internal/carrefour"
	"repro/internal/iosim"
	"repro/internal/ipi"
	"repro/internal/metrics"
	"repro/internal/numa"
	"repro/internal/sim"
)

// Config parameterizes a run.
type Config struct {
	Topo *numa.Topology
	Seed uint64
	// Epoch is the simulation quantum.
	Epoch sim.Time
	// CarrefourEvery is the decision interval in epochs.
	CarrefourEvery int
	// MaxTime aborts runaway runs.
	MaxTime sim.Time
	// CtrlBWBps is the per-node memory controller bandwidth (13 GiB/s on
	// AMD48).
	CtrlBWBps float64
	// Scale divides application footprints (the machine must be built
	// with banks divided by the same factor).
	Scale int
	Disk  iosim.Disk
	// Carrefour tunes the dynamic policy's thresholds.
	Carrefour carrefour.Config
	// TLB, when non-nil, charges address-translation overhead per
	// access (the paper's §7 large-page extension). Nil preserves the
	// paper's baseline, which does not model TLBs.
	TLB *numa.TLBModel
	// NoBatch selects the per-instance reference kernel: direct
	// AccessCycles/PathLinkUtil calls for every cost-matrix cell,
	// per-instance row buffers instead of the runner arena, and a full
	// stream-table rebuild every epoch. Results are bit-for-bit
	// identical to the batched kernel — it exists so the equivalence
	// tests can pin that, not for production sweeps.
	NoBatch bool
	// NoConverge disables the converged-epoch fast path, forcing the
	// full fixed-point computation every epoch. Results are bit-for-bit
	// identical either way (the fast path only skips epochs whose full
	// recomputation would reproduce the previous epoch's state exactly);
	// the flag exists for the equivalence tests and for benchmarks that
	// must measure the full kernel.
	NoConverge bool
}

// DefaultConfig returns the standard configuration for a machine scaled
// by scale.
func DefaultConfig(topo *numa.Topology, scale int) Config {
	return Config{
		Topo:           topo,
		Seed:           1,
		Epoch:          5 * sim.Millisecond,
		CarrefourEvery: 20,
		MaxTime:        300 * sim.Second,
		CtrlBWBps:      13 * (1 << 30),
		Scale:          scale,
		Disk:           iosim.DefaultDisk(),
		Carrefour:      carrefour.DefaultConfig(),
	}
}

// Result is one instance's outcome.
type Result struct {
	App        string
	Backend    string
	Completion sim.Time
	TimedOut   bool
	InitTime   sim.Time

	Imbalance        float64
	InterconnectLoad float64
	Locality         float64
	Migrated         uint64
	Stats            *metrics.RunStats
}

// Run executes the instances to completion and returns one result each.
// All instances share the machine: their memory traffic contends on the
// same controllers and links.
func Run(cfg Config, insts ...*Instance) ([]Result, error) {
	if cfg.Epoch <= 0 || cfg.Scale <= 0 || len(insts) == 0 {
		return nil, fmt.Errorf("engine: invalid config or no instances")
	}
	r := &runner{cfg: cfg, insts: insts, rand: sim.NewRand(cfg.Seed)}
	if err := r.setup(); err != nil {
		return nil, err
	}
	r.loop()
	return r.results()
}

type runner struct {
	cfg   Config
	insts []*Instance
	rand  *sim.Rand

	load      *metrics.EpochLoad   // machine-wide, for contention
	instLoads []*metrics.EpochLoad // per instance, for its statistics
	stats     []*metrics.RunStats
	ctrls     []*carrefour.Controller
	initTimes []sim.Time
	ctrlUtil  []float64
	now       sim.Time
	// unitsScratch[i][t] is thread t of instance i's work units this
	// epoch, recorded during the final fill.
	units [][]float64

	// Run-constant node geometry, hoisted out of the fixed-point loop:
	// nNodes is the node count and hops[src*nNodes+dst] the interconnect
	// hop count (Topo.Distance never changes during a run). cost is the
	// shared pair cost model for cfg.Topo (base cycles and contention
	// coefficients), fetched from a process-wide cache so every runner
	// on the same topology — the whole sweep batch — reuses one;
	// freqGHz mirrors the latency model's frequency so the hot loop
	// converts cycles to nanoseconds without copying the model.
	nNodes  int
	hops    []int
	cost    *numa.AccessCostModel
	freqGHz float64

	// Converged-epoch fast-path state: converged is set after a full
	// epoch proved itself a fixed point (see epoch); latChanged is the
	// epoch-scoped flag updateLatencies raises on any bitwise latency
	// movement; convergedEpochs counts skipped epochs for the white-box
	// tests.
	converged       bool
	latChanged      bool
	convergedEpochs uint64

	// rowArena packs every instance's folded per-thread node rows into
	// one contiguous block (in.rows slices alias it), so the fixed-point
	// walk over a whole cell is one linear pass instead of per-instance
	// pointer chasing. The reference kernel (Config.NoBatch) leaves
	// instances on private buffers instead.
	rowArena []float64

	// Scratch buffers, reused so steady-state epochs allocate nothing.
	//xnuma:scratch
	movePairs  [][2]numa.NodeID // sorted pendingMoveBytes keys
	tickUtil   []float64        // controller-utilization copy for Carrefour ticks
	cycles     []float64        // per-(src,dst) access cost, filled each iteration
	linkUtil   []float64        // per-link utilization snapshot, one per iteration
	ctrlPen    []float64        // per-destination controller penalty, one per iteration
	groupUnits []float64        // per-dedup-group work units, summed each fill
	groupCyc   []float64        // per-dedup-group access cycles, one per iteration

	// Carrefour-tick scratch: the tick rebuilds the sampler view from
	// the stream table every interval, so the backing stores are reused.
	//xnuma:scratch
	moves    []carrefour.Move   // migrations recorded by pageSet.Migrate
	shared   []float64          // running-thread node distribution
	accArena []float64          // per-sample accessor rows, carved per tick
	pageSets []pageSet          // sample adapter arena
	sampBuf  []carrefour.Sample // sampler view handed to Controller.Step
}

func (r *runner) setup() error {
	epochSec := float64(r.cfg.Epoch) / 1e9
	n := r.cfg.Topo.NumNodes()
	r.load = metrics.NewEpochLoad(r.cfg.Topo, epochSec, r.cfg.CtrlBWBps)
	r.ctrlUtil = make([]float64, n)
	r.nNodes = n
	r.hops = make([]int, n*n)
	r.cycles = make([]float64, n*n)
	r.linkUtil = make([]float64, len(r.cfg.Topo.Links))
	r.ctrlPen = make([]float64, n)
	r.cost = costModelFor(r.cfg.Topo)
	r.freqGHz = r.cfg.Topo.Latency.FreqGHz
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			r.hops[src*n+dst] = r.cfg.Topo.Distance(numa.NodeID(src), numa.NodeID(dst))
		}
	}
	for _, in := range r.insts {
		if err := in.Prof.Validate(); err != nil {
			return err
		}
		if in.NThreads <= 0 {
			return fmt.Errorf("engine: instance %s has no threads", in.Prof.Name)
		}
		r.instLoads = append(r.instLoads, metrics.NewEpochLoad(r.cfg.Topo, epochSec, r.cfg.CtrlBWBps))
		r.stats = append(r.stats, metrics.NewRunStats(r.cfg.Topo))
		ccfg := r.cfg.Carrefour
		if in.CarrefourMode != carrefour.ModeFull {
			// A per-instance variant overrides the run config's mode;
			// the zero value defers to it.
			ccfg.Mode = in.CarrefourMode
		}
		r.ctrls = append(r.ctrls, carrefour.New(ccfg))
		r.units = append(r.units, make([]float64, in.NThreads))
		if err := r.buildInstance(in); err != nil {
			return err
		}
		r.hoistRunConstants(in, epochSec)
	}
	maxThreads := 0
	for _, in := range r.insts {
		if in.NThreads > maxThreads {
			maxThreads = in.NThreads
		}
	}
	r.groupUnits = make([]float64, maxThreads)
	r.groupCyc = make([]float64, maxThreads)
	if !r.cfg.NoBatch {
		total := 0
		for _, in := range r.insts {
			total += in.NThreads * n
		}
		r.rowArena = make([]float64, total)
		off := 0
		for _, in := range r.insts {
			sz := in.NThreads * n
			in.rows = r.rowArena[off : off+sz : off+sz]
			off += sz
		}
	}
	r.initTimes = make([]sim.Time, len(r.insts))
	for i, in := range r.insts {
		r.initTimes[i] = r.materialize(in)
	}
	return nil
}

// hoistRunConstants precomputes the per-instance values the fixed-point
// iterations used to re-derive every pass: they depend only on the
// profile, the backend and the run configuration, none of which change
// after setup. Each hoisted expression is kept verbatim so the values
// are bit-for-bit what the inline computation produced.
func (r *runner) hoistRunConstants(in *Instance, epochSec float64) {
	in.cpuNsPerUnit = in.Prof.CPUNsPerUnit()
	in.overhead = r.overheadFrac(in)
	if r.cfg.TLB != nil {
		ws := in.footprintBytes * in.Prof.WorkingSet / float64(in.NThreads)
		in.tlbCycles = r.cfg.TLB.WalkPenaltyCycles(ws, in.LargePages, in.Backend.Virtualized())
	}
	if in.ioStream.DemandBps > 0 {
		path, _ := in.Backend.IO()
		delivered, progress := in.ioStream.Delivered(path, r.cfg.Disk)
		in.ioProgress = progress
		bytes := delivered * epochSec
		targets := in.ioStream.HomeNodes
		if in.ioStream.Placement != iosim.BufferScattered || len(targets) == 0 {
			in.ioTargetBuf[0] = in.ioStream.BufferNode
			targets = in.ioTargetBuf[:]
		}
		in.ioTargets = targets
		in.ioPerTarget = bytes / float64(len(targets))
	}
}

// buildInstance creates threads and sizes regions. A recycled instance
// whose shape (thread count, node count) matches its previous run is
// rebuilt in place: threads and regions are reset to their
// just-constructed values while keeping their storage, so a pooled
// cell's instances allocate nothing here.
func (r *runner) buildInstance(in *Instance) error {
	nNodes := r.cfg.Topo.NumNodes()
	idealNs := in.Prof.CPUNsPerUnit() + 71.0
	in.workPerThread = in.Prof.BaselineSeconds * 1e9 / idealNs
	reuse := in.recycled && len(in.Threads) == in.NThreads &&
		len(in.dist) == in.NThreads && len(in.priv) == in.NThreads &&
		in.hot != nil && in.hot.nNodes == nNodes
	in.recycled = false
	if reuse {
		for i, t := range in.Threads {
			*t = Thread{
				ID:       i,
				Node:     in.Backend.ThreadNode(i),
				CPUShare: in.Backend.CPUShare(i),
				WorkLeft: in.workPerThread,
				latNs:    100,
			}
		}
		in.hot.reset()
		in.master.reset()
		for i := 0; i < in.NThreads; i++ {
			in.dist[i].reset()
			in.priv[i].reset()
		}
	} else {
		in.Threads = in.Threads[:0]
		in.dist = in.dist[:0]
		in.priv = in.priv[:0]
		for i := 0; i < in.NThreads; i++ {
			in.Threads = append(in.Threads, &Thread{
				ID:       i,
				Node:     in.Backend.ThreadNode(i),
				CPUShare: in.Backend.CPUShare(i),
				WorkLeft: in.workPerThread,
				latNs:    100,
			})
		}
	}
	// Dynamic run state resets on BOTH paths: a recycled instance whose
	// shape check failed (e.g. a pooled machine re-leased with a
	// different thread count) rebuilds its storage above but would
	// otherwise keep done/Completion/burst state from its previous run.
	// For never-run instances this is a no-op.
	clear(in.pendingMoveBytes)
	in.burstLeft, in.burstNode, in.burstRegion = 0, 0, nil
	in.done, in.Completion = false, 0
	in.foldSum, in.foldLive, in.foldValid = 0, 0, false
	in.tlbCycles = 0
	in.ioProgress, in.ioPerTarget, in.ioTargets = 0, 0, nil
	pages := int(in.Prof.FootprintMB * (1 << 20) / float64(r.cfg.Scale) / 4096)
	if pages < 512 {
		pages = 512
	}
	in.footprintBytes = float64(pages) * 4096
	hotPages := pages / 5000
	if hotPages < 8 {
		hotPages = 8
	}
	if hotPages > 512 {
		hotPages = 512
	}
	rest := pages - hotPages
	_, wM, wP, wD := in.weights()
	denom := wM + wP + wD
	if denom <= 0 {
		denom = 1
		wD = 1
	}
	masterPages := int(float64(rest) * wM / denom)
	privPages := int(float64(rest) * wP / denom)
	distPages := rest - masterPages - privPages

	if !reuse {
		in.hot = NewRegion("hot", RegionHot, 0, nNodes)
		in.master = NewRegion("master", RegionMaster, 0, nNodes)
		for i := 0; i < in.NThreads; i++ {
			in.dist = append(in.dist, NewRegion(fmt.Sprintf("dist%d", i), RegionDist, i, nNodes))
			in.priv = append(in.priv, NewRegion(fmt.Sprintf("priv%d", i), RegionPrivate, i, nNodes))
		}
	}
	in.sizes = regionSizes{hot: hotPages, master: masterPages, priv: privPages, dist: distPages}
	if ws := in.Prof.WorkingSet; ws > 0 && ws < 1 {
		head := func(n int) int {
			h := int(ws * float64(n))
			if h < 1 {
				h = 1
			}
			return h
		}
		in.master.SetAccessHead(head(masterPages))
		for i := 0; i < in.NThreads; i++ {
			in.dist[i].SetAccessHead(head(distPages / in.NThreads))
			in.priv[i].SetAccessHead(head(privPages / in.NThreads))
		}
	}

	_, placement := in.Backend.IO()
	in.ioStream = iosim.Stream{
		DemandBps:  in.Prof.DiskMBps * 1.06e6,
		ReqBytes:   in.Prof.DiskReqBytes,
		Placement:  placement,
		BufferNode: r.cfg.Disk.Node,
		HomeNodes:  in.Backend.HomeNodes(),
		Penalty:    in.Prof.IOPenalty,
	}
	if in.pendingMoveBytes == nil {
		in.pendingMoveBytes = make(map[[2]numa.NodeID]float64)
	}
	return nil
}

// materialize first-touches every region with its natural toucher: the
// master thread touches the hot and master regions, each thread its
// private region and its slice of the distributed region. The time is
// charged to the touching threads as debt (the application's init
// phase).
func (r *runner) materialize(in *Instance) sim.Time {
	var total sim.Time
	charge := func(t *Thread, d sim.Time) {
		t.DebtNs += float64(d)
		if d > total {
			total = d
		}
	}
	master := in.Threads[0]
	cost, err := in.Backend.Place(in.hot, in.sizes.hot, master.Node)
	if err == nil {
		charge(master, cost)
		cost, err = in.Backend.Place(in.master, in.sizes.master, master.Node)
	}
	if err == nil {
		charge(master, cost)
		slice := in.sizes.dist / in.NThreads
		for _, t := range in.Threads {
			want := slice
			if t.ID == in.NThreads-1 {
				want = in.sizes.dist - slice*(in.NThreads-1)
			}
			if cost, err = in.Backend.Place(in.dist[t.ID], want, t.Node); err != nil {
				break
			}
			charge(t, cost)
		}
	}
	if err == nil {
		per := in.sizes.priv / in.NThreads
		for _, t := range in.Threads {
			if cost, err = in.Backend.Place(in.priv[t.ID], per, t.Node); err != nil {
				break
			}
			charge(t, cost)
		}
	}
	if err != nil {
		panic(fmt.Sprintf("engine: materializing %s: %v", in.Prof.Name, err))
	}
	return total
}

func (r *runner) loop() {
	maxEpochs := int(r.cfg.MaxTime / r.cfg.Epoch)
	for step := 0; step < maxEpochs; step++ {
		r.now = sim.Time(step) * r.cfg.Epoch
		if r.allDone() {
			return
		}
		r.epoch(step)
	}
	// Timed out: mark unfinished instances.
	for _, in := range r.insts {
		if !in.done {
			in.done = true
			in.Completion = r.cfg.MaxTime
			for _, t := range in.Threads {
				if !t.Done {
					t.Done = true
					t.DoneAt = r.cfg.MaxTime
				}
			}
		}
	}
}

// epoch advances the simulation by one quantum: refresh each live
// instance's stream table, couple rates and latencies, apply progress,
// fold the epoch into the statistics, and run due Carrefour ticks.
//
// Once a full epoch proves itself a fixed point — no debt, bursts or
// pending migration traffic on entry, no bitwise latency movement
// across the iterations, no completion, no Carrefour tick — every
// input to the next epoch's fill/latency passes is bitwise unchanged,
// so their outputs (r.units, the per-instance loads, the latencies)
// would be reproduced exactly. Subsequent epochs skip straight to
// progress and statistics on the stale-but-identical state, until a
// completion or a tick perturbs the fixed point. Config.NoConverge
// (and the NoBatch reference kernel) force the full computation.
//
//xnuma:noalloc
func (r *runner) epoch(step int) {
	if r.converged && !r.cfg.NoBatch && !r.cfg.NoConverge {
		r.convergedEpochs++
		completed := r.progress()
		for i := range r.insts {
			r.stats[i].Observe(r.instLoads[i])
		}
		if r.runTicks(step) || completed {
			r.converged = false
		}
		return
	}
	// candidate: at entry, every live instance is in steady state — no
	// stall debt to pay down, no decaying burst, no one-off migration
	// traffic. Evaluated before the passes below consume any of it.
	candidate := true
	for _, in := range r.insts {
		if in.done {
			continue
		}
		if in.burstLeft > 0 || len(in.pendingMoveBytes) > 0 {
			candidate = false
			break
		}
		for _, t := range in.Threads {
			if !t.Done && t.DebtNs != 0 {
				candidate = false
				break
			}
		}
		if !candidate {
			break
		}
	}
	for _, in := range r.insts {
		if !in.done {
			in.refreshStreams(r.cfg.NoBatch)
		}
	}
	// Damped fixed-point iterations couple access rates and latency
	// (undamped, saturated configurations oscillate between idle and
	// saturated estimates).
	r.latChanged = false
	const iters = 4
	for iter := 0; iter < iters; iter++ {
		r.fillLoads(iter == iters-1)
		r.updateLatencies()
	}
	completed := r.progress()
	for i := range r.insts {
		r.stats[i].Observe(r.instLoads[i])
	}
	ticked := r.runTicks(step)
	r.converged = candidate && !r.latChanged && !completed && !ticked
}

// runTicks runs due Carrefour ticks and reports whether any ran. Ticks
// are never skipped by the converged fast path: their random draws must
// consume the run's deterministic stream at the same points either way.
//
//xnuma:noalloc
func (r *runner) runTicks(step int) bool {
	if r.cfg.CarrefourEvery <= 0 || step%r.cfg.CarrefourEvery != 0 {
		return false
	}
	ran := false
	for i, in := range r.insts {
		if in.Carrefour && !in.done {
			r.carrefourTick(i, in)
			ran = true
		}
	}
	return ran
}

func (r *runner) allDone() bool {
	for _, in := range r.insts {
		if !in.done {
			return false
		}
	}
	return true
}

// fillLoads recomputes the epoch's traffic from current latency
// estimates by walking each live thread's folded node row (the stream
// table collapsed by foldRows — streams never appear here). When record
// is true, per-thread work units are captured for the progress step and
// per-instance loads are filled.
//
//xnuma:noalloc
func (r *runner) fillLoads(record bool) {
	r.load.Reset()
	epochNs := float64(r.cfg.Epoch)
	nn := r.nNodes
	for i, in := range r.insts {
		il := r.instLoads[i]
		if record {
			il.Reset()
		}
		if in.done {
			continue
		}
		ioFactor := r.ioFactor(in, record, il)
		var totalMisses float64
		gu := r.groupUnits[:len(in.groupRep)]
		for g := range gu {
			gu[g] = 0
		}
		for ti, t := range in.Threads {
			if t.Done {
				continue
			}
			budget := epochNs * t.CPUShare
			avail := budget - t.DebtNs
			if avail < 0 {
				avail = 0
			}
			eff := avail * (1 - in.overhead) * ioFactor
			units := eff / (in.cpuNsPerUnit + t.latNs)
			if record {
				r.units[i][ti] = units
			}
			totalMisses += units
			gu[in.groupOf[ti]] += units
		}
		// Emit one summed row per dedup group: threads in a group share
		// node and row bit-for-bit, so (Σ units) · share is their exact
		// combined traffic.
		for g, rep := range in.groupRep {
			units := gu[g]
			if units <= 0 {
				continue
			}
			src := in.Threads[rep].Node
			for n, share := range in.row(int(rep), nn) {
				if share <= 0 {
					continue
				}
				cnt := units * share
				r.load.AddAccesses(src, numa.NodeID(n), cnt)
				if record {
					il.AddAccesses(src, numa.NodeID(n), cnt)
				}
			}
		}
		// Temporary remote burst against a private region: traffic that
		// misleads Carrefour (§3.5.2).
		if in.burstLeft > 0 && in.burstRegion != nil {
			burst := 0.3 * totalMisses
			for n, share := range in.burstRegion.Dist() {
				if share > 0 {
					r.load.AddAccesses(in.burstNode, numa.NodeID(n), burst*share)
					if record {
						il.AddAccesses(in.burstNode, numa.NodeID(n), burst*share)
					}
				}
			}
			if record {
				in.burstLeft--
			}
		}
		// Page-migration copy traffic from the previous Carrefour tick,
		// charged in sorted key order: different pairs share interconnect
		// links, and float accumulation must not depend on map iteration
		// order for runs to be bit-for-bit reproducible.
		if len(in.pendingMoveBytes) > 0 {
			pairs := r.movePairs[:0] //xnuma:scratch
			for pair := range in.pendingMoveBytes {
				pairs = append(pairs, pair)
			}
			r.movePairs = pairs
			sortMovePairs(pairs)
			for _, pair := range pairs {
				bytes := in.pendingMoveBytes[pair]
				r.load.AddDMA(pair[0], pair[1], bytes)
				if record {
					il.AddDMA(pair[0], pair[1], bytes)
					delete(in.pendingMoveBytes, pair)
				}
			}
		}
	}
}

// ioFactor charges the instance's precomputed per-epoch DMA traffic
// and returns the progress multiplier. The stream's delivery is pure in
// run-constant inputs, so everything but the AddDMA emission was hoisted
// into setup (hoistRunConstants).
//
//xnuma:noalloc
func (r *runner) ioFactor(in *Instance, record bool, il *metrics.EpochLoad) float64 {
	if in.ioStream.DemandBps <= 0 {
		return 1
	}
	for _, n := range in.ioTargets {
		r.load.AddDMA(r.cfg.Disk.Node, n, in.ioPerTarget)
		if record {
			il.AddDMA(r.cfg.Disk.Node, n, in.ioPerTarget)
		}
	}
	return in.ioProgress
}

// overheadFrac is the fraction of CPU time lost to virtualized IPIs,
// allocator-churn notifications and Carrefour sampling.
//
//xnuma:noalloc
func (r *runner) overheadFrac(in *Instance) float64 {
	m := ipi.Model{Virtualized: in.Backend.Virtualized(), MCSSpin: in.MCS}
	f := m.OverheadFraction(in.Prof.CtxSwitchKps*1000, in.Prof.SyncAmplification, in.Prof.UsesPthreadSync)
	f += in.Backend.ChurnOverhead(in.Prof.ReleasesPerSec, in.NThreads)
	if in.Carrefour {
		f += 0.02 // hardware-counter sampling cost
	}
	if f > 0.97 {
		f = 0.97
	}
	return f
}

// updateLatencies recomputes each thread's average memory access latency
// from the current loads. The access cost depends only on the (src, dst)
// node pair — hop count, destination controller utilization, worst link
// on the route — so it is filled once per iteration into an nNodes²
// matrix; each thread then reduces its folded node row against its
// source node's cost row instead of re-deriving the cost per stream.
//
//xnuma:noalloc
func (r *runner) updateLatencies() {
	if r.cfg.NoBatch {
		r.fillCyclesReference()
	} else {
		r.fillCycles()
	}
	nn := r.nNodes
	for _, in := range r.insts {
		if in.done {
			continue
		}
		// One row reduction per dedup group — the access cost depends
		// only on the source node and the folded row, both group-shared.
		// The damped update stays per-thread: latency history may differ
		// between threads that only later converged onto the same row.
		gc := r.groupCyc[:len(in.groupRep)]
		for g, rep := range in.groupRep {
			costs := r.cycRow(in.Threads[rep].Node)
			var cyc float64
			for n, share := range in.row(int(rep), nn) {
				if share > 0 {
					cyc += share * costs[n]
				}
			}
			gc[g] = cyc + in.tlbCycles
		}
		for _, t := range in.Threads {
			if t.Done {
				continue
			}
			old := t.latNs
			t.latNs = 0.5*old + 0.5*(gc[in.groupOf[t.ID]]/r.freqGHz)
			if t.latNs != old {
				r.latChanged = true
			}
		}
	}
}

// fillCycles fills the per-iteration (src, dst) cost matrix from the
// shared run-constant cost model: controller and link utilizations are
// snapshotted once per iteration (one division per link instead of one
// per pair-route-link), the controller penalty computed once per
// destination node, and each pair reduces to a max over its route's
// snapshot entries plus the model's two coefficient terms. Bit-for-bit
// identical to fillCyclesReference.
//
//xnuma:noalloc
func (r *runner) fillCycles() {
	r.load.FillCtrlUtil(r.ctrlUtil)
	r.load.FillLinkUtil(r.linkUtil)
	nn := r.nNodes
	for dst := 0; dst < nn; dst++ {
		r.ctrlPen[dst] = r.cost.CtrlPenalty(r.ctrlUtil[dst])
	}
	topo := r.cfg.Topo
	for src := 0; src < nn; src++ {
		row := r.cycles[src*nn : (src+1)*nn]
		for dst := 0; dst < nn; dst++ {
			var link float64
			for _, li := range topo.RouteLinks(numa.NodeID(src), numa.NodeID(dst)) {
				if u := r.linkUtil[li]; u > link {
					link = u
				}
			}
			row[dst] = r.cost.PairCycles(numa.NodeID(src), numa.NodeID(dst), r.ctrlPen[dst], link)
		}
	}
}

// fillCyclesReference is the per-pair reference fill: direct
// AccessCycles and PathLinkUtil calls, nothing factored or shared.
// Config.NoBatch selects it so the equivalence tests can pin the
// batched kernel's output against it bit-for-bit.
//
//xnuma:noalloc
func (r *runner) fillCyclesReference() {
	lm := r.cfg.Topo.Latency
	r.load.FillCtrlUtil(r.ctrlUtil)
	nn := r.nNodes
	for src := 0; src < nn; src++ {
		for dst := 0; dst < nn; dst++ {
			link := r.load.PathLinkUtil(numa.NodeID(src), numa.NodeID(dst))
			r.cycles[src*nn+dst] = lm.AccessCycles(r.hops[src*nn+dst], r.ctrlUtil[dst], link)
		}
	}
}

// cycRow returns source node src's row of the current iteration's cost
// matrix. Like Instance.row, the slice aliases runner scratch
// (r.cycles) that the next fillCycles pass overwrites: callers may
// reduce against it within the iteration, never retain it.
//
//xnuma:noalloc
func (r *runner) cycRow(src numa.NodeID) []float64 {
	nn := r.nNodes
	return r.cycles[int(src)*nn : (int(src)+1)*nn]
}

// costModels caches one AccessCostModel per topology pointer. Built
// topologies are immutable for the life of a sweep and sweep cells on
// the same scale share one *Topology, so every concurrent runner reuses
// the same model instead of rebuilding two n² coefficient tables per
// cell.
var costModels sync.Map // *numa.Topology -> *numa.AccessCostModel

// costModelFor returns the shared cost model for t, building it once.
func costModelFor(t *numa.Topology) *numa.AccessCostModel {
	if m, ok := costModels.Load(t); ok {
		return m.(*numa.AccessCostModel)
	}
	m, _ := costModels.LoadOrStore(t, numa.NewAccessCostModel(t))
	return m.(*numa.AccessCostModel)
}

// progress applies the recorded units, consumes debt, and detects
// completion. It reports whether any thread finished this epoch (a
// completion changes the next epoch's load picture, so it breaks the
// converged fast path).
//
//xnuma:noalloc
func (r *runner) progress() bool {
	completed := false
	epochNs := float64(r.cfg.Epoch)
	for i, in := range r.insts {
		if in.done {
			continue
		}
		for ti, t := range in.Threads {
			if t.Done {
				continue
			}
			budget := epochNs * t.CPUShare
			if t.DebtNs > 0 {
				pay := t.DebtNs
				if pay > budget {
					pay = budget
				}
				t.DebtNs -= pay
			}
			units := r.units[i][ti]
			if units <= 0 {
				continue
			}
			if units >= t.WorkLeft {
				frac := t.WorkLeft / units
				t.WorkLeft = 0
				t.Done = true
				t.DoneAt = r.now + sim.Time(frac*float64(r.cfg.Epoch))
				completed = true
				continue
			}
			t.WorkLeft -= units
		}
		if in.AllDone() {
			in.done = true
			var last sim.Time
			for _, t := range in.Threads {
				if t.DoneAt > last {
					last = t.DoneAt
				}
			}
			in.Completion = last
		}
	}
	return completed
}

// carrefourTick runs one decision interval of the dynamic policy for
// instance i, charges its costs and schedules its copy traffic.
//
//xnuma:noalloc
func (r *runner) carrefourTick(i int, in *Instance) {
	// Maybe start a misleading burst (§3.5.2).
	if in.burstLeft <= 0 && in.Prof.Burstiness > 0 && len(in.priv) > 0 {
		if r.rand.Float64() < in.Prof.Burstiness {
			in.burstRegion = in.priv[r.rand.Intn(len(in.priv))]
			owner := in.burstRegion.Owner
			for {
				n := numa.NodeID(r.rand.Intn(r.cfg.Topo.NumNodes()))
				if n != in.Threads[owner].Node {
					in.burstNode = n
					break
				}
			}
			in.burstLeft = r.cfg.CarrefourEvery + 1
		}
	}
	r.moves = r.moves[:0]
	r.tickUtil = append(r.tickUtil[:0], r.ctrlUtil...)
	tick := carrefour.Tick{
		CtrlUtil:    r.tickUtil,
		MaxLinkUtil: r.load.MaxLinkUtil(),
		Samples:     r.samples(in),
		Rand:        r.rand,
	}
	res := r.ctrls[i].Step(tick)
	if res.Migrated == 0 {
		return
	}
	// Each migration copies one page across the interconnect; charge the
	// bytes to the next epoch and the CPU cost as debt spread across the
	// instance's threads.
	for _, mv := range r.moves {
		in.pendingMoveBytes[[2]numa.NodeID{mv.From, mv.To}] += 4096
	}
	costNs := float64(res.Migrated) * 6000 / float64(in.NThreads)
	for _, t := range in.Threads {
		if !t.Done {
			t.DebtNs += costNs
		}
	}
}

// samples builds the Carrefour view of the instance's regions from the
// epoch's stream table. The emitted order (hot, master, dist slices,
// private slices) is part of the deterministic contract: Carrefour's
// hotness sort is stable, so ties keep this order. Everything the view
// needs — the sample slice, the pageSet adapters, the accessor rows —
// lives in runner scratch arenas, so a tick allocates nothing once the
// arenas are warm; the view stays valid until the next tick rebuilds it.
//
//xnuma:noalloc
func (r *runner) samples(in *Instance) []carrefour.Sample {
	tbl := &in.streamTab
	nNodes := r.cfg.Topo.NumNodes()
	// Accessor distribution of shared regions: the running threads.
	if cap(r.shared) < nNodes {
		r.shared = make([]float64, nNodes)
	}
	shared := r.shared[:nNodes]
	for n := range shared {
		shared[n] = 0
	}
	running := 0
	for _, t := range in.Threads {
		if !t.Done {
			shared[t.Node]++
			running++
		}
	}
	if running > 0 {
		for n := range shared {
			shared[n] /= float64(running)
		}
	}

	dists := tbl.find(streamDistOwn).perThread
	privs := tbl.find(streamPrivate).perThread
	nSamples := 2 + len(dists) + len(privs)
	if cap(r.pageSets) < nSamples {
		r.pageSets = make([]pageSet, nSamples)
	}
	if cap(r.accArena) < (nSamples-2)*nNodes {
		r.accArena = make([]float64, (nSamples-2)*nNodes)
	}
	if cap(r.sampBuf) < nSamples {
		r.sampBuf = make([]carrefour.Sample, 0, nSamples)
	}
	sets := r.pageSets[:nSamples]
	arena := r.accArena[:(nSamples-2)*nNodes]
	out := r.sampBuf[:0] //xnuma:scratch

	out = append(out,
		r.mkSample(&sets[0], in, tbl.find(streamHot).reg, tbl.wHot, shared, true),
		r.mkSample(&sets[1], in, tbl.find(streamMaster).reg, tbl.wMaster, shared, false),
	)
	k := 2
	// One sample per dist slice; its accessors blend the owner with the
	// cross-slice traffic of everyone else. (The dist-cross stream is
	// not a separate page set: it is this blend.)
	for _, reg := range dists {
		acc := arena[(k-2)*nNodes : (k-1)*nNodes]
		owner := in.Threads[reg.Owner].Node
		for n := range acc {
			acc[n] = tbl.cross * shared[n]
		}
		acc[owner] += 1 - tbl.cross
		out = append(out, r.mkSample(&sets[k], in, reg, tbl.wDist/float64(in.NThreads), acc, false))
		k++
	}
	for _, reg := range privs {
		acc := arena[(k-2)*nNodes : (k-1)*nNodes]
		for n := range acc {
			acc[n] = 0
		}
		share := tbl.wPriv / float64(in.NThreads)
		if in.burstLeft > 0 && reg == in.burstRegion {
			// The sampler currently sees mostly the burst's remote
			// accesses against this region.
			acc[in.burstNode] = 1
			share += 0.3
		} else {
			acc[in.Threads[reg.Owner].Node] = 1
		}
		out = append(out, r.mkSample(&sets[k], in, reg, share, acc, false))
		k++
	}
	r.sampBuf = out
	return out
}

// mkSample initializes one scratch pageSet adapter and wraps it in a
// sampler Sample.
//
//xnuma:noalloc
func (r *runner) mkSample(set *pageSet, in *Instance, reg *Region, share float64, accessors []float64, hot bool) carrefour.Sample {
	set.r, set.b, set.moves = reg, in.Backend, &r.moves
	return carrefour.Sample{
		Set:         set,
		AccessShare: share,
		Accessors:   accessors,
		Hot:         hot,
		ReadOnly:    hot && in.Prof.ReadFrac >= 0.7,
	}
}

// sortMovePairs orders (src, dst) node pairs lexicographically with an
// insertion sort: the pair count is at most nNodes², and sort.Slice
// would allocate on the hot path (a closure plus boxing the slice into
// its interface parameter).
//
//xnuma:noalloc
func sortMovePairs(pairs [][2]numa.NodeID) {
	for i := 1; i < len(pairs); i++ {
		p := pairs[i]
		j := i - 1
		for j >= 0 && (pairs[j][0] > p[0] || (pairs[j][0] == p[0] && pairs[j][1] > p[1])) {
			pairs[j+1] = pairs[j]
			j--
		}
		pairs[j+1] = p
	}
}

// pageSet adapts a Region + Backend to carrefour.PageSet, recording each
// move for traffic accounting.
type pageSet struct {
	r *Region
	b Backend
	// moves points at the runner's shared migration log, reset each tick.
	//xnuma:scratch
	moves *[]carrefour.Move
}

func (s *pageSet) Len() int                 { return s.r.Len() }
func (s *pageSet) NodeOf(i int) numa.NodeID { return s.r.NodeOf(i) }

// Replicate implements carrefour.Replicator: every node gets a copy of
// the set, so subsequent accesses are local. Idempotent.
func (s *pageSet) Replicate() bool { return s.r.Replicate() }
func (s *pageSet) Migrate(i int, to numa.NodeID) bool {
	from := s.r.NodeOf(i)
	if !s.b.Migrate(s.r, i, to) {
		return false
	}
	*s.moves = append(*s.moves, carrefour.Move{From: from, To: to})
	return true
}

func (r *runner) results() ([]Result, error) {
	out := make([]Result, 0, len(r.insts))
	for i, in := range r.insts {
		st := r.stats[i]
		out = append(out, Result{
			App:              in.Prof.Name,
			Backend:          in.Backend.Name(),
			Completion:       in.Completion,
			TimedOut:         in.Completion >= r.cfg.MaxTime,
			InitTime:         r.initTimes[i],
			Imbalance:        st.Imbalance(),
			InterconnectLoad: st.InterconnectLoad(),
			Locality:         st.LocalityRatio(),
			Migrated:         uint64(r.ctrls[i].Interleaved + r.ctrls[i].LocalityMoved),
			Stats:            st,
		})
	}
	return out, nil
}
