// Package engine executes workloads against a placement backend (the Xen
// hypervisor stack or a native Linux stack) over the simulated machine.
//
// Execution is epoch-based: at the top of each epoch every instance
// rebuilds its access-stream table (streams.go) — the single
// enumeration of who accesses what at which weight — and folds it into
// one node row per thread; each runnable thread then issues memory
// accesses along its row, and the resulting per-controller and
// per-link loads feed the latency model, which in turn paces thread
// progress. Four damped fixed-point iterations per epoch make rates
// and latencies self-consistent; they walk threads × nodes only (the
// stream dimension is folded out, placement being frozen within an
// epoch). All placement happens
// through real page-table and allocator operations in the backend, so
// the policies' mechanisms (not just their statistics) are exercised.
// The loop's outputs are the measurements the paper's evaluation
// reports (§5): completion time, memory-access imbalance and
// interconnect load (Table 1).
package engine

import (
	"fmt"

	"repro/internal/carrefour"
	"repro/internal/iosim"
	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/sim"
	"repro/internal/workload"
)

// RegionKind classifies a region's first-touch and access pattern.
type RegionKind int

const (
	// RegionHot is the tiny set of hottest pages; its accesses
	// concentrate on effectively one page, so no static policy can
	// balance it.
	RegionHot RegionKind = iota
	// RegionMaster is memory allocated and first-touched by the master
	// thread, then accessed by everyone (the master-slave pattern).
	RegionMaster
	// RegionPrivate is one thread's private memory.
	RegionPrivate
	// RegionDist is shared memory first-touched by all threads evenly.
	RegionDist
)

func (k RegionKind) String() string {
	switch k {
	case RegionHot:
		return "hot"
	case RegionMaster:
		return "master"
	case RegionPrivate:
		return "private"
	case RegionDist:
		return "dist"
	default:
		return fmt.Sprintf("RegionKind(%d)", int(k))
	}
}

// Region is a set of pages with a uniform access pattern. Backends
// append pages as they materialize and update placement on migration.
type Region struct {
	Name  string
	Kind  RegionKind
	Owner int // owning thread for RegionPrivate

	Pages  []mem.PFN
	nodes  []numa.NodeID
	hist   []float64 // page count per node
	nNodes int

	// headLimit, when positive, concentrates the region's accesses on
	// its first headLimit pages (the application's working set);
	// histHead tracks their placement separately.
	headLimit int
	histHead  []float64

	// Replicated marks a region whose pages have a copy on every node
	// (Carrefour's replication heuristic, when enabled): all accesses
	// become local.
	Replicated bool

	// Distribution caches. Placement mutations (AddPage, SetNode,
	// SetAccessHead, Replicate) mark them dirty; the accessors recompute
	// lazily and hand out the internal slice, so steady-state epochs
	// (no migrations) never allocate. One flag per cache: reading one
	// distribution must not mark the others clean.
	distCache   []float64
	accessCache []float64
	hotCache    []float64
	distDirty   bool
	accessDirty bool
	hotDirty    bool

	// gen counts placement mutations. refreshStreams sums the gens of
	// an instance's regions to detect that nothing moved since the last
	// fold and skip the table rebuild entirely (steady-state epochs
	// between Carrefour ticks).
	gen uint64
}

// NewRegion returns an empty region for a machine with nNodes nodes.
func NewRegion(name string, kind RegionKind, owner, nNodes int) *Region {
	return &Region{
		Name: name, Kind: kind, Owner: owner,
		hist: make([]float64, nNodes), nNodes: nNodes,
		distDirty: true, accessDirty: true, hotDirty: true,
	}
}

// invalidate marks every cached distribution stale after a placement
// mutation.
func (r *Region) invalidate() {
	r.distDirty, r.accessDirty, r.hotDirty = true, true, true
	r.gen++
}

// SetAccessHead declares that accesses concentrate on the first limit
// pages. Zero (the default) means the whole region is accessed.
func (r *Region) SetAccessHead(limit int) {
	r.headLimit = limit
	if len(r.histHead) != r.nNodes {
		r.histHead = make([]float64, r.nNodes)
	} else {
		for i := range r.histHead {
			r.histHead[i] = 0
		}
	}
	for i := 0; i < len(r.Pages) && i < limit; i++ {
		r.histHead[r.nodes[i]]++
	}
	r.invalidate()
}

// reset empties the region for a new run, keeping its identity (Name,
// Kind, Owner) and every backing buffer, so a recycled instance's
// regions refill without allocating.
func (r *Region) reset() {
	r.Pages = r.Pages[:0]
	r.nodes = r.nodes[:0]
	for i := range r.hist {
		r.hist[i] = 0
	}
	r.headLimit = 0
	for i := range r.histHead {
		r.histHead[i] = 0
	}
	r.Replicated = false
	r.invalidate()
}

// AddPage records a materialized page and its placement.
func (r *Region) AddPage(p mem.PFN, node numa.NodeID) {
	r.Pages = append(r.Pages, p)
	r.nodes = append(r.nodes, node)
	r.hist[node]++
	if r.headLimit > 0 && len(r.Pages) <= r.headLimit {
		r.histHead[node]++
	}
	r.invalidate()
}

// SetNode updates page i's placement after a migration.
func (r *Region) SetNode(i int, node numa.NodeID) {
	old := r.nodes[i]
	if old == node {
		return
	}
	r.hist[old]--
	r.hist[node]++
	if r.headLimit > 0 && i < r.headLimit {
		r.histHead[old]--
		r.histHead[node]++
	}
	r.nodes[i] = node
	r.invalidate()
}

// Replicate marks the region as having a copy on every node. It reports
// whether the flag changed (false when already replicated).
func (r *Region) Replicate() bool {
	if r.Replicated {
		return false
	}
	r.Replicated = true
	r.invalidate()
	return true
}

// Len returns the number of materialized pages.
func (r *Region) Len() int { return len(r.Pages) }

// NodeOf returns page i's node.
func (r *Region) NodeOf(i int) numa.NodeID { return r.nodes[i] }

// Dist returns the placement distribution (shares per node summing to 1;
// uniform-zero when empty). The returned slice is owned by the region
// and stays valid until the next placement mutation; callers must not
// modify it.
//
//xnuma:noalloc
func (r *Region) Dist() []float64 {
	if r.distCache == nil {
		r.distCache = make([]float64, r.nNodes)
		r.distDirty = true
	}
	if r.distDirty {
		out := r.distCache
		for n := range out {
			out[n] = 0
		}
		if total := float64(len(r.Pages)); total > 0 {
			for n, c := range r.hist {
				out[n] = c / total
			}
		}
		r.distDirty = false
	}
	return r.distCache
}

// AccessDist returns the access-weighted placement distribution: the
// working-set head when SetAccessHead was called, the whole region
// otherwise. Like Dist, the returned slice is owned by the region and
// valid until the next placement mutation.
//
//xnuma:noalloc
func (r *Region) AccessDist() []float64 {
	if r.headLimit <= 0 || r.headLimit >= len(r.Pages) {
		return r.Dist()
	}
	if r.accessCache == nil {
		r.accessCache = make([]float64, r.nNodes)
		r.accessDirty = true
	}
	if r.accessDirty {
		total := 0.0
		for _, c := range r.histHead {
			total += c
		}
		if total == 0 {
			// An unmaterialized head carries no information; keep the
			// cache dirty so the head is picked up once pages land.
			return r.Dist()
		}
		for n, c := range r.histHead {
			r.accessCache[n] = c / total
		}
		r.accessDirty = false
	}
	return r.accessCache
}

// HotDist returns the access-weighted distribution for a hot region: all
// accesses hit the single hottest page (page 0). Like Dist, the returned
// slice is owned by the region and valid until the next placement
// mutation.
//
//xnuma:noalloc
func (r *Region) HotDist() []float64 {
	if r.hotCache == nil {
		r.hotCache = make([]float64, r.nNodes)
		r.hotDirty = true
	}
	if r.hotDirty {
		out := r.hotCache
		for n := range out {
			out[n] = 0
		}
		if len(r.Pages) > 0 {
			out[r.nodes[0]] = 1
		}
		r.hotDirty = false
	}
	return r.hotCache
}

// Backend materializes, frees and migrates region pages on a concrete
// platform, and reports the platform's fixed characteristics.
type Backend interface {
	// Name identifies the platform and policy for reporting.
	Name() string
	// Place materializes n pages of r, first-touched from node toucher,
	// appending them to r. It returns the time charged to the touching
	// thread.
	Place(r *Region, n int, toucher numa.NodeID) (sim.Time, error)
	// Migrate moves page i of r to node, updating r on success.
	Migrate(r *Region, i int, to numa.NodeID) bool
	// Release frees every page of r.
	Release(r *Region) sim.Time
	// ChurnOverhead is the fraction of a core's time lost to the
	// page-release notification path at the given per-core release rate.
	ChurnOverhead(releasesPerSec float64, threads int) float64
	// IO returns the platform's DMA path and buffer placement.
	IO() (iosim.Path, iosim.BufferPlacement)
	// Virtualized reports whether IPIs pay guest-mode costs.
	Virtualized() bool
	// ThreadNode returns the NUMA node thread i's CPU belongs to.
	ThreadNode(i int) numa.NodeID
	// CPUShare returns the fraction of a physical CPU available to
	// thread i (0.5 in consolidated setups).
	CPUShare(i int) float64
	// HomeNodes returns the nodes the instance's memory may use.
	HomeNodes() []numa.NodeID
}

// Thread is one application thread, bound 1:1 to a vCPU (or CPU).
type Thread struct {
	ID       int
	Node     numa.NodeID
	CPUShare float64

	WorkLeft float64 // remaining work units (one LLC miss each)
	DebtNs   float64 // stall time still to consume (init, faults, hypercalls)
	Done     bool
	DoneAt   sim.Time

	latNs float64 // smoothed memory access latency estimate
}

// Instance is one running application on one backend (one VM, or one
// native process).
type Instance struct {
	Prof      workload.Profile
	Backend   Backend
	NThreads  int
	Carrefour bool
	// CarrefourMode restricts the instance's Carrefour controller to a
	// heuristic subset (§7's migration-only / replication-only knobs);
	// the zero value defers to Config.Carrefour.Mode (itself ModeFull
	// by default). Ignored when Carrefour is off.
	CarrefourMode carrefour.Mode
	// MCS enables the spin-lock mitigation for pthread-blocking apps
	// (Xen+ and LinuxNUMA apply it to facesim and streamcluster).
	MCS bool
	// LargePages maps the instance's memory with 2 MiB pages when the
	// run's TLB model is enabled (§7 extension).
	LargePages bool

	Threads []*Thread
	hot     *Region
	master  *Region
	// dist holds one slice per thread: distributed-shared memory is
	// first-touched by its owning thread and mostly accessed by it, with
	// a CrossShare fraction of accesses hitting all slices uniformly.
	dist  []*Region
	priv  []*Region
	sizes regionSizes

	workPerThread  float64
	footprintBytes float64
	ioStream       iosim.Stream

	// Per-instance run constants, hoisted out of the fixed-point
	// iterations by setup: the profile's compute cost per work unit,
	// the CPU-overhead fraction (IPIs, churn, sampling — all inputs are
	// run-constant), the per-access TLB walk penalty (zero when the run
	// has no TLB model), and the I/O stream's per-epoch DMA emission
	// (iosim.Stream.Delivered is pure, so its outputs never change).
	cpuNsPerUnit float64
	overhead     float64
	tlbCycles    float64
	ioProgress   float64
	ioPerTarget  float64
	ioTargets    []numa.NodeID
	ioTargetBuf  [1]numa.NodeID

	// streamTab is the epoch's access-stream table, rebuilt by
	// refreshStreams at the top of every epoch; distAll is the scratch
	// buffer backing its cross-slice combined distribution; rows is the
	// table folded into one node row per thread (foldRows), the only
	// view the fixed-point iterations read.
	streamTab streamTable
	distAll   []float64
	rows      []float64

	// Row-dedup groups, rebuilt with the rows: live threads on the same
	// node whose folded rows are bitwise identical collapse into one
	// emission group (groupRep holds each group's representative thread
	// ID, groupOf maps every live thread to its group). The fixed-point
	// iterations emit traffic and derive access cost once per group —
	// with threads pinned across few nodes, that is nodes-many walks
	// instead of threads-many.
	groupRep []int32
	groupOf  []int32

	// Fold-skip state: the region-gen sum and live-thread count the
	// current rows were folded from. When neither moved, refreshStreams
	// skips the rebuild — the fold's inputs (placement distributions,
	// thread homes, profile weights) are all value-stable.
	foldSum   uint64
	foldLive  int
	foldValid bool

	// burst state (Carrefour-misleading temporary remote accesses).
	burstLeft   int
	burstNode   numa.NodeID
	burstRegion *Region

	done       bool
	Completion sim.Time

	// pending migration traffic (bytes between node pairs) charged to
	// the next epoch's load.
	pendingMoveBytes map[[2]numa.NodeID]float64

	// recycled marks an instance handed back by a warm-pool lease:
	// Run's setup rebuilds its threads and regions in place, keeping
	// their storage, instead of requiring a fresh struct.
	recycled bool
}

// Recycle marks the instance for in-place rebuild by the next Run. The
// caller sets the public fields (Prof, Backend, NThreads, Carrefour,
// ...) exactly as on a fresh instance; setup then resets the private
// run state — threads, regions, burst and fold state, pending traffic —
// while reusing the existing allocations. A recycled instance behaves
// bit-for-bit like a freshly constructed one.
func (in *Instance) Recycle() { in.recycled = true }

// regionSizes records the page budget of each region class.
type regionSizes struct {
	hot, master, priv, dist int
}

// DefaultCrossShare documents the default fraction of distributed-shared
// accesses that cross slice boundaries; workload profiles override it
// per application (Profile.CrossShare).
const DefaultCrossShare = 0.25

// weights returns the access-stream weights of the instance's profile.
//
//xnuma:noalloc
func (in *Instance) weights() (wHot, wMaster, wPriv, wDist float64) {
	p := in.Prof
	return p.HotShare, p.MasterShare, p.PrivateShare, p.DistShare
}

// AllDone reports whether every thread finished.
//
//xnuma:noalloc
func (in *Instance) AllDone() bool {
	for _, t := range in.Threads {
		if !t.Done {
			return false
		}
	}
	return true
}
