package engine

import (
	"reflect"
	"testing"

	"repro/internal/numa"
	"repro/internal/sim"
)

// runConverge executes one run with the given NoConverge setting through
// a hand-built runner (Run hides it) and returns the results plus the
// number of epochs the fast path skipped.
func runConverge(t *testing.T, noConverge, carrefour bool) ([]Result, uint64) {
	t.Helper()
	topo := numa.AMD48Scaled(64)
	cfg := testConfig(topo)
	cfg.NoConverge = noConverge
	in := &Instance{
		Prof:      testProfile(),
		Backend:   newStub(topo, true),
		NThreads:  48,
		Carrefour: carrefour,
	}
	r := &runner{cfg: cfg, insts: []*Instance{in}, rand: sim.NewRand(cfg.Seed)}
	if err := r.setup(); err != nil {
		t.Fatal(err)
	}
	r.loop()
	res, err := r.results()
	if err != nil {
		t.Fatal(err)
	}
	return res, r.convergedEpochs
}

// TestConvergedFastPathMatchesFullKernel pins the converged-epoch fast
// path: a run with the fast path enabled must produce results
// bit-for-bit identical to the full computation (Config.NoConverge),
// and the fast path must actually fire — otherwise the test is vacuous
// and the optimization dead.
func TestConvergedFastPathMatchesFullKernel(t *testing.T) {
	for _, carrefour := range []bool{false, true} {
		full, skippedFull := runConverge(t, true, carrefour)
		fast, skippedFast := runConverge(t, false, carrefour)
		if skippedFull != 0 {
			t.Fatalf("carrefour=%v: NoConverge run skipped %d epochs", carrefour, skippedFull)
		}
		if skippedFast == 0 {
			t.Errorf("carrefour=%v: fast path never fired; optimization is dead", carrefour)
		}
		// Results embed *RunStats; compare the dereferenced stats too.
		if len(full) != len(fast) {
			t.Fatalf("carrefour=%v: result counts differ", carrefour)
		}
		for i := range full {
			f, g := full[i], fast[i]
			fs, gs := f.Stats, g.Stats
			f.Stats, g.Stats = nil, nil
			if !reflect.DeepEqual(f, g) {
				t.Errorf("carrefour=%v: result %d diverges:\nfull: %+v\nfast: %+v", carrefour, i, f, g)
			}
			if !reflect.DeepEqual(fs, gs) {
				t.Errorf("carrefour=%v: result %d stats diverge", carrefour, i)
			}
		}
	}
}

// TestRecycledInstanceMatchesFresh pins the engine half of the warm-pool
// protocol: an instance recycled through Instance.Recycle and re-run
// must produce results bit-for-bit identical to a freshly constructed
// instance of the same shape.
func TestRecycledInstanceMatchesFresh(t *testing.T) {
	topo := numa.AMD48Scaled(64)
	build := func() *Instance {
		return &Instance{
			Prof:      testProfile(),
			Backend:   newStub(topo, true),
			NThreads:  48,
			Carrefour: true,
		}
	}
	run := func(in *Instance) []Result {
		// Fresh backend per run: the stub accumulates page placements.
		in.Backend = newStub(topo, true)
		res, err := Run(testConfig(topo), in)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	recycled := build()
	run(recycled) // first run dirties every piece of private state
	recycled.Recycle()
	got := run(recycled)
	want := run(build())

	compare := func(name string, g, w Result) {
		t.Helper()
		gs, ws := g.Stats, w.Stats
		g.Stats, w.Stats = nil, nil
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s diverges:\nrecycled: %+v\nfresh:    %+v", name, g, w)
		}
		if !reflect.DeepEqual(gs, ws) {
			t.Errorf("%s stats diverge", name)
		}
	}
	compare("recycled instance", got[0], want[0])

	// Reshaped recycle: a pooled machine can be re-leased by a cell with
	// a different thread count. The in-place reuse check fails, the
	// storage is rebuilt — and the dynamic state (done, Completion, burst
	// and fold fields) must still reset, or the run replays the previous
	// lease's outcome.
	recycled.Recycle()
	recycled.NThreads = 24
	reshaped := run(recycled)
	fresh := build()
	fresh.NThreads = 24
	compare("reshaped recycled instance", reshaped[0], run(fresh)[0])
}
