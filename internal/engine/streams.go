package engine

// The access-stream layer: one canonical enumeration of an instance's
// memory-access streams, consumed by everything that used to hand-roll
// it (fillLoads' traffic emission, updateLatencies' cost accumulation,
// and the Carrefour sampler's region view). Adding a new stream kind
// means adding one table entry here, not editing three loops in
// lockstep.
//
// Because placement only mutates between epochs, the table is also
// folded once per epoch into per-thread node rows (foldRows): the
// damped fixed-point iterations then walk nodes only, never streams.

// streamKind identifies one of the instance's access streams.
type streamKind int

const (
	// streamHot is the hottest-page stream: every thread hits the hot
	// region's single hottest page (or a local replica once replicated).
	streamHot streamKind = iota
	// streamMaster is every thread's traffic against the master-touched
	// region.
	streamMaster
	// streamPrivate is each thread's traffic against its own private
	// region.
	streamPrivate
	// streamDistOwn is each thread's traffic against its own slice of
	// the distributed-shared region.
	streamDistOwn
	// streamDistCross is the cross-slice fraction of distributed-shared
	// traffic, spread over the combined placement of all slices.
	streamDistCross
)

// stream is one access stream for the current epoch: who issues it, at
// what per-thread weight, and against which placement distribution.
type stream struct {
	kind streamKind
	// weight is the fraction of each issuing thread's misses carried by
	// this stream.
	weight float64
	// reg backs a shared stream (hot, master); nil for per-thread and
	// combined streams.
	reg *Region
	// perThread maps thread ID to the region that thread issues against
	// (private and dist-own streams); nil for shared streams.
	perThread []*Region
	// dist is the shared placement distribution (nil for per-thread
	// streams, which resolve through perThread at emission time).
	dist []float64
	// local marks a replicated stream: every access lands on the
	// issuing thread's own node.
	local bool
}

// distFor resolves the placement distribution stream s presents to
// thread t.
//
//xnuma:noalloc
func (s *stream) distFor(t *Thread) []float64 {
	if s.dist != nil {
		return s.dist
	}
	return s.perThread[t.ID].AccessDist()
}

// streamTable is an instance's per-epoch stream enumeration, in
// per-thread emission order. The raw profile weights ride along for
// consumers (the Carrefour sampler) that need per-region shares rather
// than per-thread emission weights.
type streamTable struct {
	streams []stream

	wHot, wMaster, wPriv, wDist float64
	cross                       float64
}

// find returns the table's stream of the given kind, or nil when the
// table has none.
//
//xnuma:noalloc
func (t *streamTable) find(k streamKind) *stream {
	for i := range t.streams {
		if t.streams[i].kind == k {
			return &t.streams[i]
		}
	}
	return nil
}

// refreshStreams rebuilds the instance's stream table for the coming
// epoch. Placement only mutates between epochs (materialization before
// the loop, Carrefour ticks after the fixed-point iterations), so the
// table and the distribution slices it aliases stay valid for the whole
// epoch. The streams slice and the combined-distribution scratch are
// reused: steady-state epochs allocate nothing.
//
// When no region mutated (every gen counter unchanged) and no thread
// finished since the last fold, the rebuild is skipped outright: every
// fold input — cached distributions, thread homes, profile weights —
// is value-stable, so the table and rows already hold exactly what the
// rebuild would recompute. Steady-state epochs between Carrefour ticks
// hit this path. force (the NoBatch reference kernel) disables the
// skip.
//
//xnuma:noalloc
func (in *Instance) refreshStreams(force bool) {
	sum := in.hot.gen + in.master.gen
	for _, reg := range in.dist {
		sum += reg.gen
	}
	for _, reg := range in.priv {
		sum += reg.gen
	}
	live := 0
	for _, th := range in.Threads {
		if !th.Done {
			live++
		}
	}
	if !force && in.foldValid && sum == in.foldSum && live == in.foldLive {
		return
	}
	in.foldSum, in.foldLive, in.foldValid = sum, live, true
	t := &in.streamTab
	t.wHot, t.wMaster, t.wPriv, t.wDist = in.weights()
	t.cross = in.Prof.CrossShare
	in.distAll = combinedDistInto(in.distAll, in.dist)
	t.streams = append(t.streams[:0],
		stream{kind: streamHot, weight: t.wHot, reg: in.hot,
			dist: in.hot.HotDist(), local: in.hot.Replicated}, //xnuma:aliasretain-ok table is rebuilt here every epoch, before placement mutates
		stream{kind: streamMaster, weight: t.wMaster, reg: in.master,
			dist: in.master.AccessDist()}, //xnuma:aliasretain-ok table is rebuilt here every epoch, before placement mutates
		stream{kind: streamPrivate, weight: t.wPriv, perThread: in.priv},
		stream{kind: streamDistOwn, weight: t.wDist * (1 - t.cross), perThread: in.dist},
		stream{kind: streamDistCross, weight: t.wDist * t.cross, dist: in.distAll},
	)
	in.foldRows()
}

// foldRows collapses the stream table into one node row per thread:
// row[n] is the fraction of the thread's misses that land on node n this
// epoch (Σ_s weight_s · share_s[n], with replicated streams folding into
// the thread's own node). The fixed-point iterations consume only these
// rows — the stream dimension is gone from the hot loop. The backing
// buffer is reused across epochs, so steady state allocates nothing.
//
//xnuma:noalloc
func (in *Instance) foldRows() {
	nn := in.hot.nNodes
	if cap(in.rows) < in.NThreads*nn {
		in.rows = make([]float64, in.NThreads*nn)
	}
	in.rows = in.rows[:in.NThreads*nn]
	t := &in.streamTab
	for _, th := range in.Threads {
		if th.Done {
			continue
		}
		row := in.rows[th.ID*nn : (th.ID+1)*nn]
		for n := range row {
			row[n] = 0
		}
		for si := range t.streams {
			s := &t.streams[si]
			if s.weight <= 0 {
				continue
			}
			if s.local {
				row[th.Node] += s.weight
				continue
			}
			for n, share := range s.distFor(th) {
				if share > 0 {
					row[n] += s.weight * share
				}
			}
		}
	}
	in.groupRows()
}

// groupRows collapses live threads with bitwise-identical folded rows
// on the same node into emission groups. Identical rows contribute
// identical per-access node shares, so the fixed-point iterations can
// charge one summed row per group and derive one access cost per group
// instead of per thread. The grouping compares this epoch's rows only
// — thread state that differs within a group (CPU debt, damped
// latency history) stays per-thread; only the row-shaped work is
// shared.
//
//xnuma:noalloc
func (in *Instance) groupRows() {
	nn := in.hot.nNodes
	if cap(in.groupOf) < in.NThreads {
		in.groupOf = make([]int32, in.NThreads)
		in.groupRep = make([]int32, 0, in.NThreads)
	}
	in.groupOf = in.groupOf[:in.NThreads]
	reps := in.groupRep[:0] //xnuma:scratch capacity NThreads, pre-sized above; never grows after warmup
	for _, th := range in.Threads {
		if th.Done {
			continue
		}
		row := in.rows[th.ID*nn : (th.ID+1)*nn]
		g := int32(-1)
		for gi, rep := range reps {
			if in.Threads[rep].Node != th.Node {
				continue
			}
			if rowsEqual(row, in.rows[int(rep)*nn:(int(rep)+1)*nn]) {
				g = int32(gi)
				break
			}
		}
		if g < 0 {
			g = int32(len(reps))
			reps = append(reps, int32(th.ID))
		}
		in.groupOf[th.ID] = g
	}
	in.groupRep = reps
}

// rowsEqual reports whether two folded node rows are bitwise identical
// (folded shares are never NaN, so == is bit comparison).
//
//xnuma:noalloc
func rowsEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// row returns thread id's folded node row for the current epoch.
//
//xnuma:noalloc
func (in *Instance) row(id, nNodes int) []float64 {
	return in.rows[id*nNodes : (id+1)*nNodes]
}

// combinedDist averages the placement distributions of a region group,
// weighting by page count: a thread crossing slice boundaries is more
// likely to hit a larger slice.
func combinedDist(regs []*Region) []float64 {
	return combinedDistInto(nil, regs)
}

// combinedDistInto is combinedDist writing into dst (grown if needed)
// so per-epoch callers can reuse one scratch buffer.
//
//xnuma:noalloc
func combinedDistInto(dst []float64, regs []*Region) []float64 {
	if len(regs) == 0 {
		return nil
	}
	if cap(dst) < regs[0].nNodes {
		dst = make([]float64, regs[0].nNodes)
	} else {
		dst = dst[:regs[0].nNodes]
		for n := range dst {
			dst[n] = 0
		}
	}
	var totalPages float64
	for _, r := range regs {
		pages := float64(len(r.Pages))
		if pages == 0 {
			continue
		}
		totalPages += pages
		for n, share := range r.AccessDist() {
			dst[n] += share * pages
		}
	}
	if totalPages > 0 {
		for n := range dst {
			dst[n] /= totalPages
		}
	}
	return dst
}
