package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// Test sites, registered once for the whole package test binary.
var (
	siteA = Register("test.a")
	siteB = Register("test.b")
)

func install(t *testing.T, spec string) *Plan {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	Install(p)
	t.Cleanup(func() { Install(nil) })
	return p
}

func TestDisabledSiteIsFree(t *testing.T) {
	Install(nil)
	if err := siteA.Fire(); err != nil {
		t.Fatalf("disabled site fired: %v", err)
	}
	if n := testing.AllocsPerRun(100, func() { siteA.Fire() }); n != 0 {
		t.Fatalf("disabled Fire allocates %.0f per call, want 0", n)
	}
}

func TestErrorFiresAtExactHit(t *testing.T) {
	p := install(t, "test.a:hit=3:action=error")
	for i := 1; i <= 5; i++ {
		err := siteA.Fire()
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err = %v", i, err)
		}
		if i == 3 {
			var f *Fault
			if !errors.As(err, &f) || f.Site != "test.a" || f.Hit != 3 {
				t.Fatalf("wrong fault %v", err)
			}
		}
	}
	if p.Fired("test.a") != 1 || p.Hits("test.a") != 5 || p.TotalFired() != 1 {
		t.Fatalf("counters: fired=%d hits=%d total=%d", p.Fired("test.a"), p.Hits("test.a"), p.TotalFired())
	}
	// An unarmed site on an armed plan stays silent and uncounted.
	if err := siteB.Fire(); err != nil || p.Hits("test.b") != 0 {
		t.Fatalf("unarmed site: err=%v hits=%d", err, p.Hits("test.b"))
	}
}

func TestPanicAction(t *testing.T) {
	install(t, "test.a:hit=1:action=panic")
	defer func() {
		p := recover()
		f, ok := p.(*Fault)
		if !ok || f.Action != ActionPanic {
			t.Fatalf("recovered %v, want *Fault panic", p)
		}
	}()
	siteA.Fire()
	t.Fatal("site did not panic")
}

func TestDelayAction(t *testing.T) {
	install(t, "test.a:hit=1:action=delay:delay=30ms")
	start := time.Now()
	if err := siteA.Fire(); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Fatalf("delay rule stalled only %v", el)
	}
}

// TestConcurrentFires: exactly one goroutine observes each armed hit,
// regardless of interleaving (run under -race in CI).
func TestConcurrentFires(t *testing.T) {
	p := install(t, "test.a:hit=5:action=error,test.a:hit=9:action=error")
	var wg sync.WaitGroup
	var mu sync.Mutex
	var faults int
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := siteA.Fire(); err != nil {
				mu.Lock()
				faults++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if faults != 2 || p.TotalFired() != 2 {
		t.Fatalf("faults=%d fired=%d, want 2/2", faults, p.TotalFired())
	}
}

func TestParseCanonicalSpec(t *testing.T) {
	p, err := Parse(" test.b:hit=2:action=delay:delay=5ms , test.a:hit=1:action=error ")
	if err != nil {
		t.Fatal(err)
	}
	want := "test.a:hit=1:action=error,test.b:hit=2:action=delay:delay=5ms"
	if p.Spec() != want {
		t.Fatalf("spec %q, want %q", p.Spec(), want)
	}
	// The canonical spec re-parses to itself.
	p2, err := Parse(p.Spec())
	if err != nil || p2.Spec() != want {
		t.Fatalf("canonical spec does not round-trip: %v %q", err, p2.Spec())
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct{ spec, frag string }{
		{"", "empty"},
		{"nope.site:hit=1:action=error", "unknown site"},
		{"test.a", "want site:hit"},
		{"test.a:hit=0:action=error", "positive integer"},
		{"test.a:hit=x:action=error", "positive integer"},
		{"test.a:hit=1:action=explode", "unknown action"},
		{"test.a:hit=1", "want site:hit"},
		{"test.a:hit=1:hit=2", "required"},
		{"test.a:action=error:delay=5ms", "required"},
		{"test.a:hit=1:action=error:delay=5ms", "action=delay only"},
		{"test.a:hit=1:action=delay:delay=-1s", "bad delay"},
		{"test.a:hit=1:action=error,test.a:hit=1:action=panic", "duplicate rule"},
		{"test.a:hit=1:action=error:bogus=1", "unknown key"},
	} {
		if _, err := Parse(tc.spec); err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("Parse(%q) = %v, want error containing %q", tc.spec, err, tc.frag)
		}
	}
}

func TestRegistryLists(t *testing.T) {
	names := Sites()
	for _, want := range []string{"test.a", "test.b"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Sites() missing %q: %v", want, names)
		}
	}
	if ActiveSpec() != "" {
		t.Errorf("no plan installed but ActiveSpec = %q", ActiveSpec())
	}
}
