// Package faultinject is the deterministic fault-injection framework
// behind the reproduction's failure model. The paper's pitch is a
// hypervisor interface that keeps virtual machines serving well under
// adverse placement; the serving layer built on top of the simulation
// (the warm machine pool, the resident sweep service of `xnuma serve`)
// must likewise degrade instead of dying when its own hazards fire —
// a diverged pool reset, a damaged cache file, a panicking simulation
// cell. This package makes those hazards reproducible: packages
// register named fault sites at their hazard points, a parseable plan
// ("site:hit=N:action=error|panic|delay") arms them, and every armed
// fault fires at an exact per-site hit count — so a chaos schedule is
// replayable from its seed, the same way a simulation run is
// replayable from Options.Seed.
//
// With no plan installed a site is a single atomic pointer load; the
// fast path carries //xnuma:noalloc and stays legal on any hot path.
// Faults never use ambient randomness or wall-clock time (detrand
// polices this package like every other simulation package): hit
// counts are the only trigger, and delays are fixed durations from
// the plan.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Actions a rule can take when it fires.
const (
	// ActionError makes the site return a *Fault error.
	ActionError = "error"
	// ActionPanic makes the site panic with a *Fault. Hardened callers
	// must recover it into a structured error.
	ActionPanic = "panic"
	// ActionDelay stalls the site for the rule's fixed duration and
	// then succeeds — a latency fault for widening race windows.
	ActionDelay = "delay"
)

// defaultDelay is the stall of a delay rule that names no duration.
const defaultDelay = time.Millisecond

// Site is one registered fault point. Packages declare their sites as
// package-level variables via Register and call Fire at the hazard.
type Site struct {
	name string
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// registry holds every registered site; written only during package
// init (Register), read-only afterwards.
var (
	registryMu sync.Mutex
	registry   = map[string]*Site{}
)

// Register declares a fault site. It is meant to be called from
// package-level variable initializers; duplicate or empty names are
// programming errors and panic.
func Register(name string) *Site {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" {
		panic("faultinject: empty site name")
	}
	if _, dup := registry[name]; dup {
		panic("faultinject: duplicate site " + name)
	}
	s := &Site{name: name}
	registry[name] = s
	return s
}

// Sites returns the sorted names of every registered site (the sites
// of all packages linked into the binary).
func Sites() []string {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Fault is the error (or panic value) an armed site produces. The
// same value is returned on every trigger of its rule, so comparisons
// and wrapping are cheap and allocation-free at fire time.
type Fault struct {
	Site   string
	Hit    uint64
	Action string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: %s: injected %s at hit %d", f.Site, f.Action, f.Hit)
}

// rule is one armed trigger: at exactly the Hit-th Fire of the site,
// take Action.
type rule struct {
	hit    uint64
	action string
	delay  time.Duration
	fault  *Fault // preallocated at parse time
}

// siteState is the per-site slice of a plan: its rules plus the hit
// and fired counters.
type siteState struct {
	rules []rule
	hits  atomic.Uint64
	fired atomic.Uint64
}

// Plan is a parsed fault schedule. Installing a plan arms its sites;
// the plan's counters then record every hit and every triggered rule,
// so tests can assert degradation counters against TotalFired. A Plan
// must not be installed twice without re-Parsing: its counters carry
// state.
type Plan struct {
	sites map[string]*siteState
	spec  string
}

// active is the installed plan; nil disables every site.
var active atomic.Pointer[Plan]

// Install arms p at every site it names (nil disarms all sites). The
// swap is atomic: in-flight Fire calls complete against whichever
// plan they loaded.
func Install(p *Plan) { active.Store(p) }

// Active returns the installed plan, or nil.
func Active() *Plan { return active.Load() }

// ActiveSpec returns the installed plan's canonical spec, or "".
func ActiveSpec() string {
	if p := active.Load(); p != nil {
		return p.spec
	}
	return ""
}

// Fire reports the injected fault for this hit of the site: nil when
// no plan is installed, the site is not named, or no rule matches the
// hit count. ActionError returns the rule's Fault, ActionPanic panics
// with it, ActionDelay sleeps the rule's duration and returns nil.
//
//xnuma:noalloc
func (s *Site) Fire() error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.fire(s)
}

// fire is the armed slow path: count the hit and trigger any matching
// rule.
func (p *Plan) fire(s *Site) error {
	st := p.sites[s.name]
	if st == nil {
		return nil
	}
	n := st.hits.Add(1)
	for i := range st.rules {
		r := &st.rules[i]
		if r.hit != n {
			continue
		}
		st.fired.Add(1)
		switch r.action {
		case ActionPanic:
			panic(r.fault)
		case ActionDelay:
			time.Sleep(r.delay)
			return nil
		default: // ActionError
			return r.fault
		}
	}
	return nil
}

// Fired returns how many rules have triggered at the named site.
func (p *Plan) Fired(site string) uint64 {
	if st := p.sites[site]; st != nil {
		return st.fired.Load()
	}
	return 0
}

// Hits returns how many times the named site has fired while armed.
func (p *Plan) Hits(site string) uint64 {
	if st := p.sites[site]; st != nil {
		return st.hits.Load()
	}
	return 0
}

// TotalFired returns the number of triggered rules across all sites.
func (p *Plan) TotalFired() uint64 {
	var n uint64
	for _, name := range p.SiteNames() {
		n += p.sites[name].fired.Load()
	}
	return n
}

// SiteNames returns the sorted site names the plan arms.
func (p *Plan) SiteNames() []string {
	out := make([]string, 0, len(p.sites))
	for n := range p.sites {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Spec returns the canonical spec string the plan was parsed from
// (rules sorted by site, then hit).
func (p *Plan) Spec() string { return p.spec }

// Parse builds a plan from a comma-separated rule list. Each rule is
//
//	site:hit=N:action=error|panic|delay[:delay=DURATION]
//
// where site must be registered (see Sites), N is the 1-based count
// of Fire calls at that site that triggers the rule, and DURATION
// (only legal with action=delay, default 1ms) is a Go duration. Rules
// at the same site must name distinct hits.
func Parse(spec string) (*Plan, error) {
	p := &Plan{sites: map[string]*siteState{}}
	var canon []string
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		r, site, err := parseRule(raw)
		if err != nil {
			return nil, err
		}
		st := p.sites[site]
		if st == nil {
			st = &siteState{}
			p.sites[site] = st
		}
		for _, prev := range st.rules {
			if prev.hit == r.hit {
				return nil, fmt.Errorf("faultinject: duplicate rule for %s at hit %d", site, r.hit)
			}
		}
		st.rules = append(st.rules, r)
	}
	if len(p.sites) == 0 {
		return nil, fmt.Errorf("faultinject: empty fault plan")
	}
	for _, site := range p.SiteNames() {
		st := p.sites[site]
		sort.Slice(st.rules, func(i, j int) bool { return st.rules[i].hit < st.rules[j].hit })
		for _, r := range st.rules {
			c := fmt.Sprintf("%s:hit=%d:action=%s", site, r.hit, r.action)
			if r.action == ActionDelay {
				c += ":delay=" + r.delay.String()
			}
			canon = append(canon, c)
		}
	}
	p.spec = strings.Join(canon, ",")
	return p, nil
}

// parseRule parses one site:hit=N:action=A[:delay=D] clause.
func parseRule(raw string) (rule, string, error) {
	parts := strings.Split(raw, ":")
	if len(parts) < 3 {
		return rule{}, "", fmt.Errorf("faultinject: rule %q: want site:hit=N:action=error|panic|delay", raw)
	}
	site := parts[0]
	registryMu.Lock()
	_, known := registry[site]
	registryMu.Unlock()
	if !known {
		return rule{}, "", fmt.Errorf("faultinject: unknown site %q (registered: %s)", site, strings.Join(Sites(), ", "))
	}
	r := rule{delay: defaultDelay}
	sawHit, sawAction := false, false
	for _, kv := range parts[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return rule{}, "", fmt.Errorf("faultinject: rule %q: malformed clause %q", raw, kv)
		}
		switch k {
		case "hit":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil || n == 0 {
				return rule{}, "", fmt.Errorf("faultinject: rule %q: hit must be a positive integer", raw)
			}
			r.hit, sawHit = n, true
		case "action":
			switch v {
			case ActionError, ActionPanic, ActionDelay:
				r.action = v
			default:
				return rule{}, "", fmt.Errorf("faultinject: rule %q: unknown action %q (want error, panic or delay)", raw, v)
			}
			sawAction = true
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return rule{}, "", fmt.Errorf("faultinject: rule %q: bad delay %q", raw, v)
			}
			r.delay = d
		default:
			return rule{}, "", fmt.Errorf("faultinject: rule %q: unknown key %q", raw, k)
		}
	}
	if !sawHit || !sawAction {
		return rule{}, "", fmt.Errorf("faultinject: rule %q: hit and action are required", raw)
	}
	if r.delay != defaultDelay && r.action != ActionDelay {
		return rule{}, "", fmt.Errorf("faultinject: rule %q: delay= applies to action=delay only", raw)
	}
	r.fault = &Fault{Site: site, Hit: r.hit, Action: r.action}
	return r, site, nil
}
