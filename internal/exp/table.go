// Package exp regenerates every table and figure of the paper's
// evaluation from the simulation: one driver per artefact, each
// returning a renderable Table whose rows mirror what the paper reports.
package exp

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID     string // "fig1", "table3", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned ASCII.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// pct formats a ratio as a signed percentage.
func pct(x float64) string { return fmt.Sprintf("%+.0f%%", 100*x) }

// f0 formats a float with no decimals.
func f0(x float64) string { return fmt.Sprintf("%.0f", x) }

// f2 formats a float with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// RenderMarkdown formats the table as GitHub-flavoured Markdown, for
// embedding into EXPERIMENTS.md-style reports.
func (t *Table) RenderMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	row := func(cells []string) {
		b.WriteByte('|')
		for _, c := range cells {
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
