package exp

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

func installPlan(t *testing.T, spec string) *faultinject.Plan {
	t.Helper()
	p, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Install(p)
	t.Cleanup(func() { faultinject.Install(nil) })
	return p
}

// expectPanic runs f and returns the recovered panic message, failing
// the test if f returns normally.
func expectPanic(t *testing.T, f func()) (msg string) {
	t.Helper()
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("call did not panic")
		}
		msg = p.(string)
	}()
	f()
	return
}

// TestErroredCellEvictedAndRetryable pins the suite's poison-pill fix:
// a cell whose execution fails (error or recovered panic) is counted in
// CellErrors and evicted from the cache, so the next read of the same
// key recomputes and succeeds instead of replaying the failure forever.
func TestErroredCellEvictedAndRetryable(t *testing.T) {
	const app, pol = "swaptions", "first-touch"
	ref := NewSuite(256)
	want := ref.Xen(app, pol, true)

	for _, tc := range []struct{ name, spec, frag string }{
		{"error", "exp.cell:hit=1:action=error", "exp.cell"},
		{"panic", "exp.cell:hit=1:action=panic", "panic:"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSuite(256)
			plan := installPlan(t, tc.spec)
			msg := expectPanic(t, func() { s.Xen(app, pol, true) })
			if !strings.Contains(msg, tc.frag) {
				t.Fatalf("panic %q does not mention %q", msg, tc.frag)
			}
			if s.CellErrors() != 1 {
				t.Fatalf("CellErrors = %d, want 1", s.CellErrors())
			}
			if n := len(s.CacheKeys()); n != 0 {
				t.Fatalf("errored cell retained: %d cache keys", n)
			}
			if plan.Fired("exp.cell") != 1 {
				t.Fatalf("site fired %d times, want 1", plan.Fired("exp.cell"))
			}
			// The fault is exhausted: the retry recomputes the same key
			// and matches the fault-free reference bit for bit.
			if got := s.Xen(app, pol, true); !reflect.DeepEqual(got, want) {
				t.Fatalf("retry diverged: %+v != %+v", got, want)
			}
			if s.CellsComputed() != 2 || s.CellErrors() != 1 {
				t.Fatalf("computed/errors = %d/%d, want 2/1",
					s.CellsComputed(), s.CellErrors())
			}
		})
	}
}

// TestPrefetchedErrorDoesNotPoison: a prefetched cell that fails is
// evicted by the worker, so the serial accessor that follows the Join
// recomputes it inline and succeeds.
func TestPrefetchedErrorDoesNotPoison(t *testing.T) {
	const app, pol = "swaptions", "first-touch"
	ref := NewSuite(256)
	want := ref.Xen(app, pol, true)

	s := NewSuiteParallel(256, 2)
	installPlan(t, "exp.cell:hit=1:action=error")
	s.PrefetchXen(app, pol, true)
	s.Join()
	if s.CellErrors() != 1 {
		t.Fatalf("CellErrors after failed prefetch = %d, want 1", s.CellErrors())
	}
	if got := s.Xen(app, pol, true); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-prefetch retry diverged: %+v != %+v", got, want)
	}
}
