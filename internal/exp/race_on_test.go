//go:build race

package exp

// raceEnabled reports whether the race detector is compiled in; the
// full-suite determinism test skips itself under race (the mini variant
// already covers bit-exactness there) to keep CI wall-clock bounded.
const raceEnabled = true
