package exp

import (
	"fmt"
	"sort"
	"sync"

	xennuma "repro"
	"repro/internal/engine"
	"repro/internal/workload"
)

// Suite runs and memoizes simulations so the experiments can share
// results (fig6, fig10 and table4 reuse the fig2/fig7 sweeps). It is
// safe for concurrent use.
type Suite struct {
	// Opt is the base options; policy/baseline fields are overridden per
	// run.
	Opt xennuma.Options

	mu    sync.Mutex
	cache map[string]engine.Result
}

// NewSuite returns a suite at the given scale (0 = default).
func NewSuite(scale int) *Suite {
	return &Suite{
		Opt:   xennuma.Options{Scale: scale},
		cache: make(map[string]engine.Result),
	}
}

// LinuxPolicies are the four combinations of Figure 2.
var LinuxPolicies = []string{"first-touch", "first-touch/carrefour", "round-4k", "round-4k/carrefour"}

// XenPolicies are the five configurations of Figure 7.
var XenPolicies = []string{"round-1g", "round-4k", "first-touch", "round-4k/carrefour", "first-touch/carrefour"}

func (s *Suite) run(key string, fn func() (engine.Result, error)) engine.Result {
	s.mu.Lock()
	if r, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return r
	}
	s.mu.Unlock()
	r, err := fn()
	if err != nil {
		panic(fmt.Sprintf("exp: %s: %v", key, err))
	}
	s.mu.Lock()
	s.cache[key] = r
	s.mu.Unlock()
	return r
}

// Linux runs app natively under pol; mcs selects the MCS-lock variant
// (LinuxNUMA baseline).
func (s *Suite) Linux(app, pol string, mcs bool) engine.Result {
	key := fmt.Sprintf("linux/%s/%s/mcs=%v", app, pol, mcs)
	return s.run(key, func() (engine.Result, error) {
		o := s.Opt
		o.MCS = mcs
		return xennuma.RunLinux(app, xennuma.MustPolicy(pol), o)
	})
}

// Xen runs app in a single 48-vCPU VM under pol; xenplus enables the
// improved baseline (passthrough + MCS).
func (s *Suite) Xen(app, pol string, xenplus bool) engine.Result {
	key := fmt.Sprintf("xen/%s/%s/plus=%v", app, pol, xenplus)
	return s.run(key, func() (engine.Result, error) {
		o := s.Opt
		o.XenPlus = xenplus
		return xennuma.RunXen(app, xennuma.MustPolicy(pol), o)
	})
}

// BestLinux returns the policy minimizing completion natively (the
// LinuxNUMA policy of Table 4) and its result.
func (s *Suite) BestLinux(app string) (string, engine.Result) {
	return s.best(LinuxPolicies, func(p string) engine.Result { return s.Linux(app, p, true) })
}

// BestXen returns the policy minimizing completion under Xen+ (the
// Xen+NUMA policy of Table 4) and its result.
func (s *Suite) BestXen(app string) (string, engine.Result) {
	return s.best(XenPolicies, func(p string) engine.Result { return s.Xen(app, p, true) })
}

func (s *Suite) best(pols []string, run func(string) engine.Result) (string, engine.Result) {
	bestPol, bestRes := "", engine.Result{}
	for _, p := range pols {
		r := run(p)
		if bestPol == "" || r.Completion < bestRes.Completion {
			bestPol, bestRes = p, r
		}
	}
	return bestPol, bestRes
}

// Apps returns the evaluation's application list.
func Apps() []string { return workload.Names() }

// CacheKeys lists memoized runs (for tests).
func (s *Suite) CacheKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.cache))
	for k := range s.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
