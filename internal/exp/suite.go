package exp

import (
	"fmt"
	"sync/atomic"

	xennuma "repro"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/workload"
)

// fiCell is the fault site at cell execution: a fired error or panic
// stands in for a failing simulation, exercising the suite's
// errored-cell eviction without a real defect.
var fiCell = faultinject.Register("exp.cell")

// Suite runs and memoizes simulations so the experiments can share
// results (fig6, fig10 and table4 reuse the fig2/fig7 sweeps). Cells are
// deduplicated with a singleflight cache and can be fanned out across a
// worker pool with the Prefetch methods. The cell accessors (Linux, Xen,
// XenPair, Best*) are safe for concurrent use; a Prefetch…/Join batch
// must be driven from one goroutine at a time (the scheduler's WaitGroup
// forbids submitting concurrently with a pending Wait). Results are
// bit-for-bit deterministic for a fixed Opt.Seed regardless of the
// worker count (each cell derives its own random stream from the cell
// key).
//
// Cache keys carry the cell's seed, so one suite serves any number of
// seeds from the same scheduler and cache: the plain accessors read the
// suite's own seed's cells, the …Seeded variants any other seed's. A
// seeded cell's random stream depends only on (seed, cell key) — never
// on the suite's base seed — so its results are bit-for-bit identical
// to those of a fresh suite whose Opt.Seed is that seed.
type Suite struct {
	// Opt is the base options; policy/baseline fields are overridden per
	// run. Configure it before the first run: cells read it when they
	// execute.
	Opt xennuma.Options

	sched      *Scheduler
	cache      *resultCache
	computed   atomic.Int64
	cellErrors atomic.Int64
}

// NewSuite returns a suite at the given scale (0 = default) with one
// worker per CPU.
func NewSuite(scale int) *Suite { return NewSuiteParallel(scale, 0) }

// NewSuiteParallel returns a suite whose prefetched cells run on at most
// workers goroutines (<= 0 selects runtime.GOMAXPROCS(0)). Each suite
// carries its own warm-machine pool: cells lease and reset pre-built
// machines instead of cold-building one per run (set Opt.NoPool to
// force the fresh-build reference path).
func NewSuiteParallel(scale, workers int) *Suite {
	return &Suite{
		Opt:   xennuma.Options{Scale: scale, Pool: xennuma.NewPool()},
		sched: NewScheduler(workers),
		cache: newResultCache(),
	}
}

// Workers returns the scheduler's concurrency bound.
func (s *Suite) Workers() int { return s.sched.Workers() }

// PoolStats reports the suite pool's warm-machine leases: hits found a
// pre-built machine to reset, misses cold-built one. Zero when the
// suite has no pool attached.
func (s *Suite) PoolStats() (hits, misses uint64) {
	if s.Opt.Pool == nil {
		return 0, 0
	}
	return s.Opt.Pool.Stats()
}

// CellsComputed returns how many distinct simulation cells have been
// executed (cache hits excluded).
func (s *Suite) CellsComputed() int64 { return s.computed.Load() }

// CellErrors returns how many cell executions ended in an error or a
// recovered panic — the suite's degraded-mode counter. Each errored
// cell is evicted from the cache, so a later read of the same key
// recomputes instead of replaying the failure.
func (s *Suite) CellErrors() int64 { return s.cellErrors.Load() }

// PoolResetDrops reports the suite pool's reset-failure drops (zero
// when no pool is attached).
func (s *Suite) PoolResetDrops() uint64 {
	if s.Opt.Pool == nil {
		return 0
	}
	return s.Opt.Pool.ResetDrops()
}

// LinuxPolicies are the four combinations of Figure 2.
var LinuxPolicies = []string{"first-touch", "first-touch/carrefour", "round-4k", "round-4k/carrefour"}

// XenPolicies are the five configurations of Figure 7.
var XenPolicies = []string{"round-1g", "round-4k", "first-touch", "round-4k/carrefour", "first-touch/carrefour"}

// cellFn computes one cell's results from the cell's derived options.
type cellFn func(o xennuma.Options) ([]engine.Result, error)

// baseSeed returns the suite's own seed with the zero default
// normalized to 1 (matching cellSeed and Options.normalized), so the
// two spellings of the default share cache entries.
func (s *Suite) baseSeed() uint64 {
	if s.Opt.Seed == 0 {
		return 1
	}
	return s.Opt.Seed
}

// cacheKey is the memoization key of one (seed, cell) pair.
func cacheKey(seed uint64, key string) string {
	return fmt.Sprintf("seed=%d/%s", seed, key)
}

// cellOpts returns the per-cell options: the suite's base options with
// the seed replaced by the cell's own key-derived stream. The stream
// depends only on (seed, key) — a seeded cell computes exactly what a
// fresh suite based on that seed would.
func (s *Suite) cellOpts(seed uint64, key string) xennuma.Options {
	o := s.Opt
	o.Seed = cellSeed(seed, key)
	return o
}

// cell resolves a cell: the first caller computes it (recovering panics
// into the cell's error so waiters are released), later callers block
// until it is done. It never panics itself; results panics on error.
// An errored cell is counted, evicted and not retained: waiters that
// already hold it observe the failure, but the next read of the key
// recomputes — one bad execution never poisons the cache.
func (s *Suite) cell(seed uint64, key string, fn cellFn) *cell {
	ck := cacheKey(seed, key)
	cl, created := s.cache.claim(ck)
	if !created {
		<-cl.done
		return cl
	}
	func() {
		defer close(cl.done)
		defer func() {
			if p := recover(); p != nil {
				cl.err = fmt.Errorf("panic: %v", p)
			}
		}()
		if err := fiCell.Fire(); err != nil {
			cl.err = err
			return
		}
		cl.res, cl.err = fn(s.cellOpts(seed, key))
	}()
	s.computed.Add(1)
	if cl.err != nil {
		s.cellErrors.Add(1)
		s.cache.evict(ck, cl)
	}
	return cl
}

func (s *Suite) results(seed uint64, key string, fn cellFn) []engine.Result {
	cl := s.cell(seed, key, fn)
	if cl.err != nil {
		panic(fmt.Sprintf("exp: %s: %v", cacheKey(seed, key), cl.err))
	}
	return cl.res
}

// prefetch schedules a cell on the worker pool, warming the cache. A
// failing cell is remembered and reported (as a panic) by the serial
// accessor that reads it, on the caller's goroutine rather than the
// worker's. Cells already computed or in flight are not resubmitted: a
// duplicate task would spend its worker slot blocked on the first
// claimer's completion.
func (s *Suite) prefetch(seed uint64, key string, fn cellFn) {
	if s.cache.has(cacheKey(seed, key)) {
		return
	}
	s.sched.Submit(func() { s.cell(seed, key, fn) })
}

// Join blocks until every prefetched cell has completed.
func (s *Suite) Join() { s.sched.Wait() }

func (s *Suite) linuxCell(app, pol string, mcs bool) (string, cellFn) {
	key := fmt.Sprintf("linux/%s/%s/mcs=%v", app, pol, mcs)
	return key, func(o xennuma.Options) ([]engine.Result, error) {
		o.MCS = mcs
		p, err := xennuma.ParsePolicy(pol)
		if err != nil {
			return nil, err
		}
		r, err := xennuma.RunLinux(app, p, o)
		if err != nil {
			return nil, err
		}
		return []engine.Result{r}, nil
	}
}

func (s *Suite) xenCell(app, pol string, xenplus bool) (string, cellFn) {
	key := fmt.Sprintf("xen/%s/%s/plus=%v", app, pol, xenplus)
	return key, func(o xennuma.Options) ([]engine.Result, error) {
		o.XenPlus = xenplus
		p, err := xennuma.ParsePolicy(pol)
		if err != nil {
			return nil, err
		}
		r, err := xennuma.RunXen(app, p, o)
		if err != nil {
			return nil, err
		}
		return []engine.Result{r}, nil
	}
}

// Linux runs app natively under pol; mcs selects the MCS-lock variant
// (LinuxNUMA baseline).
func (s *Suite) Linux(app, pol string, mcs bool) engine.Result {
	key, fn := s.linuxCell(app, pol, mcs)
	return s.results(s.baseSeed(), key, fn)[0]
}

// Xen runs app in a single 48-vCPU VM under pol; xenplus enables the
// improved baseline (passthrough + MCS).
func (s *Suite) Xen(app, pol string, xenplus bool) engine.Result {
	return s.XenSeeded(app, pol, xenplus, s.baseSeed())
}

// XenSeeded is Xen for an explicit seed, served from the same cache and
// scheduler: the result is bit-for-bit what a fresh suite with
// Opt.Seed = seed would compute. Seed 0 means the suite's own seed.
func (s *Suite) XenSeeded(app, pol string, xenplus bool, seed uint64) engine.Result {
	if seed == 0 {
		seed = s.baseSeed()
	}
	key, fn := s.xenCell(app, pol, xenplus)
	return s.results(seed, key, fn)[0]
}

// PrefetchLinux schedules one native run on the worker pool.
func (s *Suite) PrefetchLinux(app, pol string, mcs bool) {
	key, fn := s.linuxCell(app, pol, mcs)
	s.prefetch(s.baseSeed(), key, fn)
}

// PrefetchXen schedules one single-VM Xen run on the worker pool.
func (s *Suite) PrefetchXen(app, pol string, xenplus bool) {
	s.PrefetchXenSeeded(app, pol, xenplus, s.baseSeed())
}

// PrefetchXenSeeded schedules one single-VM Xen run for an explicit
// seed, so multi-seed sweeps batch every seed's cells on one pool.
// Seed 0 means the suite's own seed.
func (s *Suite) PrefetchXenSeeded(app, pol string, xenplus bool, seed uint64) {
	if seed == 0 {
		seed = s.baseSeed()
	}
	key, fn := s.xenCell(app, pol, xenplus)
	s.prefetch(seed, key, fn)
}

// PrefetchLinuxSweep schedules the full LinuxNUMA policy sweep for app
// (the cells BestLinux reads).
func (s *Suite) PrefetchLinuxSweep(app string) {
	for _, p := range LinuxPolicies {
		s.PrefetchLinux(app, p, true)
	}
}

// PrefetchXenSweep schedules the full Xen+NUMA policy sweep for app (the
// cells BestXen reads).
func (s *Suite) PrefetchXenSweep(app string) {
	for _, p := range XenPolicies {
		s.PrefetchXen(app, p, true)
	}
}

// BestLinux returns the policy minimizing completion natively (the
// LinuxNUMA policy of Table 4) and its result.
func (s *Suite) BestLinux(app string) (string, engine.Result) {
	return s.best(LinuxPolicies, func(p string) engine.Result { return s.Linux(app, p, true) })
}

// BestXen returns the policy minimizing completion under Xen+ (the
// Xen+NUMA policy of Table 4) and its result.
func (s *Suite) BestXen(app string) (string, engine.Result) {
	return s.best(XenPolicies, func(p string) engine.Result { return s.Xen(app, p, true) })
}

func (s *Suite) best(pols []string, run func(string) engine.Result) (string, engine.Result) {
	bestPol, bestRes := "", engine.Result{}
	for _, p := range pols {
		r := run(p)
		if bestPol == "" || r.Completion < bestRes.Completion {
			bestPol, bestRes = p, r
		}
	}
	return bestPol, bestRes
}

// Apps returns the evaluation's application list.
func Apps() []string { return workload.Names() }

// CacheKeys lists memoized cells (for tests).
func (s *Suite) CacheKeys() []string { return s.cache.keys() }
