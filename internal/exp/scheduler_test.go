package exp

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSchedulerBoundsConcurrency(t *testing.T) {
	const workers, tasks = 4, 32
	s := NewScheduler(workers)
	var cur, peak, ran atomic.Int64
	var mu sync.Mutex
	for i := 0; i < tasks; i++ {
		s.Submit(func() {
			c := cur.Add(1)
			mu.Lock()
			if c > peak.Load() {
				peak.Store(c)
			}
			mu.Unlock()
			ran.Add(1)
			cur.Add(-1)
		})
	}
	s.Wait()
	if ran.Load() != tasks {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), tasks)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
	if sub, done := s.Stats(); sub != tasks || done != tasks {
		t.Fatalf("stats = (%d, %d), want (%d, %d)", sub, done, tasks, tasks)
	}
}

func TestSchedulerDefaultWorkers(t *testing.T) {
	if NewScheduler(0).Workers() <= 0 {
		t.Fatal("default worker count not positive")
	}
	if w := NewScheduler(7).Workers(); w != 7 {
		t.Fatalf("Workers() = %d, want 7", w)
	}
}

func TestCellSeed(t *testing.T) {
	a := cellSeed(1, "xen/cg.C/first-touch/plus=true")
	if b := cellSeed(1, "xen/cg.C/first-touch/plus=true"); a != b {
		t.Fatal("cellSeed not stable")
	}
	if b := cellSeed(1, "xen/sp.C/first-touch/plus=true"); a == b {
		t.Fatal("different keys share a seed")
	}
	if b := cellSeed(2, "xen/cg.C/first-touch/plus=true"); a == b {
		t.Fatal("different base seeds share a cell seed")
	}
	// Zero base is normalized to 1 (matching Options.normalized).
	if cellSeed(0, "k") != cellSeed(1, "k") {
		t.Fatal("zero base seed not remapped to 1")
	}
	if cellSeed(1, "k") == 0 {
		t.Fatal("cellSeed returned 0")
	}
}

func TestSingleflightDeduplicates(t *testing.T) {
	s := NewSuiteParallel(256, 8)
	for i := 0; i < 16; i++ {
		s.PrefetchXen("swaptions", "round-4k", true)
	}
	s.Join()
	if n := s.CellsComputed(); n != 1 {
		t.Fatalf("computed %d cells for 16 identical prefetches, want 1", n)
	}
	if keys := s.CacheKeys(); len(keys) != 1 {
		t.Fatalf("cache keys = %v", keys)
	}
	// The serial accessor hits the warmed cell.
	s.Xen("swaptions", "round-4k", true)
	if n := s.CellsComputed(); n != 1 {
		t.Fatalf("cache hit recomputed the cell (computed=%d)", n)
	}
}

func TestPrefetchedErrorSurfacesOnAccess(t *testing.T) {
	s := NewSuiteParallel(256, 2)
	s.PrefetchXen("no-such-app", "round-4k", true)
	s.Join() // the worker must not crash the process
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("accessing a failed cell did not panic")
		}
		if msg, ok := p.(string); !ok || !strings.Contains(msg, "no-such-app") {
			t.Fatalf("panic %v does not name the cell", p)
		}
	}()
	s.Xen("no-such-app", "round-4k", true)
}

func TestCacheShardingCoversKeys(t *testing.T) {
	c := newResultCache()
	keys := []string{"a", "b", "c", "linux/x/ft/mcs=true", "xen/y/r4k/plus=false", "pair/p"}
	for _, k := range keys {
		if _, created := c.claim(k); !created {
			t.Fatalf("first claim of %q not created", k)
		}
	}
	for _, k := range keys {
		if _, created := c.claim(k); created {
			t.Fatalf("second claim of %q created a duplicate", k)
		}
	}
	got := c.keys()
	if len(got) != len(keys) {
		t.Fatalf("keys() = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("keys() not sorted: %v", got)
		}
	}
}
