package exp

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/iosim"
	"repro/internal/ipi"
	"repro/internal/metrics"
	"repro/internal/numa"
	"repro/internal/policy"
	"repro/internal/workload"
)

// Abbrev maps policy names to the paper's Table 4 shorthand through the
// policy registry ("round-4k/carrefour" → "R4K/C", "bind:3" → "B3",
// "ft/carrefour:migration" → "FT/Cm"); unknown names pass through
// unchanged.
func Abbrev(pol string) string {
	cfg, err := policy.Parse(pol)
	if err != nil {
		return pol
	}
	a := policy.Abbrev(cfg.Static)
	if cfg.Carrefour {
		a += "/C"
		switch cfg.CarrefourVariant {
		case policy.CarrefourMigrationOnly:
			a += "m"
		case policy.CarrefourReplicationOnly:
			a += "r"
		}
	}
	return a
}

// RegisteredXenPolicies enumerates every registered policy as
// suite-ready names (lowercase, parameterized kinds instantiated with
// their default argument), each followed by its "/carrefour" variant
// when Carrefour may stack and the kind is runtime-selectable. It is
// the open-registry superset of XenPolicies for policy sweeps.
func RegisteredXenPolicies() []string {
	var out []string
	for _, d := range policy.List() {
		name := d.DefaultSpelling()
		out = append(out, name)
		if d.Carrefour && !d.BootOnly {
			out = append(out, name+"/carrefour")
		}
	}
	return out
}

// Fig1 reports the overhead of stock Xen (round-1G, dom0 I/O, no MCS)
// relative to stock Linux (first-touch) for every application.
func Fig1(s *Suite) *Table {
	t := &Table{
		ID:     "fig1",
		Title:  "Relative overhead of Xen compared to Linux (lower is better)",
		Header: []string{"app", "linux", "xen", "overhead"},
	}
	for _, app := range Apps() {
		s.PrefetchLinux(app, "first-touch", false)
		s.PrefetchXen(app, "round-1g", false)
	}
	s.Join()
	over50, over100 := 0, 0
	for _, app := range Apps() {
		l := s.Linux(app, "first-touch", false)
		x := s.Xen(app, "round-1g", false)
		ov := float64(x.Completion)/float64(l.Completion) - 1
		if ov > 0.5 {
			over50++
		}
		if ov > 1.0 {
			over100++
		}
		t.Rows = append(t.Rows, []string{app, l.Completion.String(), x.Completion.String(), pct(ov)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d applications above 50%% overhead, %d above 100%% (paper: 15 and 11)", over50, over100))
	return t
}

// Fig2 reports the improvement of each Linux NUMA policy over
// first-touch.
func Fig2(s *Suite) *Table {
	t := &Table{
		ID:     "fig2",
		Title:  "Improvement of Linux NUMA policies vs first-touch (higher is better)",
		Header: []string{"app", "ft/carrefour", "round-4k", "r4k/carrefour", "best(paper)"},
	}
	for _, app := range Apps() {
		for _, pol := range LinuxPolicies {
			s.PrefetchLinux(app, pol, false)
		}
	}
	s.Join()
	for _, app := range Apps() {
		ft := s.Linux(app, "first-touch", false)
		impr := func(pol string) string {
			r := s.Linux(app, pol, false)
			return pct(float64(ft.Completion)/float64(r.Completion) - 1)
		}
		prof, _ := workload.Get(app)
		t.Rows = append(t.Rows, []string{app,
			impr("first-touch/carrefour"), impr("round-4k"), impr("round-4k/carrefour"),
			prof.PaperBestLinux})
	}
	return t
}

// Table1 reports memory-access imbalance and interconnect load under the
// two static Linux policies, with the paper's values alongside.
func Table1(s *Suite) *Table {
	t := &Table{
		ID:    "table1",
		Title: "Static policy behaviour in Linux (measured vs paper)",
		Header: []string{"app",
			"imb FT", "(paper)", "imb R4K", "(paper)",
			"link FT", "(paper)", "link R4K", "(paper)", "class", "(paper)"},
	}
	for _, app := range Apps() {
		s.PrefetchLinux(app, "first-touch", false)
		s.PrefetchLinux(app, "round-4k", false)
	}
	s.Join()
	match := 0
	for _, app := range Apps() {
		prof, _ := workload.Get(app)
		ft := s.Linux(app, "first-touch", false)
		r4 := s.Linux(app, "round-4k", false)
		class := metrics.Classify(ft.Imbalance)
		paperClass := metrics.Classify(prof.PaperFTImb)
		if class == paperClass {
			match++
		}
		t.Rows = append(t.Rows, []string{app,
			f0(ft.Imbalance) + "%", f0(prof.PaperFTImb) + "%",
			f0(r4.Imbalance) + "%", f0(prof.PaperR4KImb) + "%",
			f0(ft.InterconnectLoad) + "%", f0(prof.PaperFTLink) + "%",
			f0(r4.InterconnectLoad) + "%", f0(prof.PaperR4KLink) + "%",
			class.String(), paperClass.String()})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("imbalance class matches the paper for %d/%d applications", match, len(Apps())))
	return t
}

// Table2 reports the behaviour parameters of each application profile.
func Table2(*Suite) *Table {
	t := &Table{
		ID:     "table2",
		Title:  "Application behaviour (profile inputs, from the paper's Table 2)",
		Header: []string{"app", "suite", "disk MB/s", "ctx k/s", "footprint MB", "releases/s/core"},
	}
	for _, p := range workload.All() {
		t.Rows = append(t.Rows, []string{p.Name, p.Suite,
			f0(p.DiskMBps), fmt.Sprintf("%.1f", p.CtxSwitchKps), f0(p.FootprintMB), f0(p.ReleasesPerSec)})
	}
	return t
}

// Table3 reports the cache and memory access latencies of the machine
// model in the uncontended (1 thread) and contended (48 threads on one
// node) cases.
func Table3(*Suite) *Table {
	lm := numa.DefaultLatency()
	t := &Table{
		ID:     "table3",
		Title:  "Cache and memory access latency on AMD48 (cycles)",
		Header: []string{"access", "1 thread", "(paper)", "48 threads", "(paper)"},
	}
	t.Rows = append(t.Rows,
		[]string{"L1 cache", f0(float64(lm.L1Cycles)), "5", "-", "-"},
		[]string{"L2 cache", f0(float64(lm.L2Cycles)), "16", "-", "-"},
		[]string{"L3 cache", f0(float64(lm.L3Cycles)), "48", "-", "-"},
		[]string{"local", f0(lm.AccessCycles(0, 0, 0)), "156", f0(lm.AccessCycles(0, 1, 0)), "697"},
		[]string{"remote (1 hop)", f0(lm.AccessCycles(1, 0, 0)), "276", f0(lm.AccessCycles(1, 1, 0)), "740"},
		[]string{"remote (2 hops)", f0(lm.AccessCycles(2, 0, 0)), "383", f0(lm.AccessCycles(2, 1, 0)), "863"},
	)
	t.Notes = append(t.Notes, "contended = destination controller at full utilization; the model charges the controller queueing penalty uniformly, so contended remote runs slightly above the paper's measurement")
	return t
}

// Table4 reports the best policy per application in native Linux and in
// Xen+, next to the paper's choices.
func Table4(s *Suite) *Table {
	t := &Table{
		ID:     "table4",
		Title:  "Best NUMA policies (measured vs paper)",
		Header: []string{"app", "LinuxNUMA", "(paper)", "Xen+NUMA", "(paper)"},
	}
	for _, app := range Apps() {
		s.PrefetchLinuxSweep(app)
		s.PrefetchXenSweep(app)
	}
	s.Join()
	matchL, matchX := 0, 0
	for _, app := range Apps() {
		prof, _ := workload.Get(app)
		lp, _ := s.BestLinux(app)
		xp, _ := s.BestXen(app)
		if Abbrev(lp) == prof.PaperBestLinux {
			matchL++
		}
		if Abbrev(xp) == prof.PaperBestXen {
			matchX++
		}
		t.Rows = append(t.Rows, []string{app, Abbrev(lp), prof.PaperBestLinux, Abbrev(xp), prof.PaperBestXen})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("exact match with the paper: Linux %d/29, Xen+ %d/29 (ties between near-equal policies flip freely)", matchL, matchX))
	return t
}

// Fig5 reports the IPI cost repartition.
func Fig5(*Suite) *Table {
	t := &Table{
		ID:     "fig5",
		Title:  "IPI cost repartition (ns)",
		Header: []string{"stage", "native", "guest"},
	}
	for _, st := range ipi.Breakdown() {
		t.Rows = append(t.Rows, []string{st.Name, st.Native.String(), st.Guest.String()})
	}
	t.Rows = append(t.Rows, []string{"total", ipi.NativeCost().String(), ipi.GuestCost().String()})
	t.Notes = append(t.Notes, "paper totals: 0.9 µs native, 10.9 µs guest")
	return t
}

// Fig6 reports the overhead of Linux, Xen and Xen+ relative to
// LinuxNUMA.
func Fig6(s *Suite) *Table {
	t := &Table{
		ID:     "fig6",
		Title:  "Overhead of Linux, Xen and Xen+ vs LinuxNUMA (lower is better)",
		Header: []string{"app", "linux", "xen", "xen+", "linuxNUMA policy"},
	}
	for _, app := range Apps() {
		s.PrefetchLinuxSweep(app)
		s.PrefetchLinux(app, "first-touch", false)
		s.PrefetchXen(app, "round-1g", false)
		s.PrefetchXen(app, "round-1g", true)
	}
	s.Join()
	over25, over50, over100 := 0, 0, 0
	for _, app := range Apps() {
		pol, base := s.BestLinux(app)
		ov := func(r float64) string { return pct(r/float64(base.Completion) - 1) }
		l := s.Linux(app, "first-touch", false)
		x := s.Xen(app, "round-1g", false)
		xp := s.Xen(app, "round-1g", true)
		o := float64(xp.Completion)/float64(base.Completion) - 1
		if o > 0.25 {
			over25++
		}
		if o > 0.5 {
			over50++
		}
		if o > 1.0 {
			over100++
		}
		t.Rows = append(t.Rows, []string{app,
			ov(float64(l.Completion)), ov(float64(x.Completion)), ov(float64(xp.Completion)), Abbrev(pol)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Xen+ above 25%%/50%%/100%% overhead: %d/%d/%d apps (paper: 20/14/11)", over25, over50, over100))
	return t
}

// Fig7 reports the improvement of each Xen NUMA policy over the Xen+
// default (round-1G).
func Fig7(s *Suite) *Table {
	t := &Table{
		ID:     "fig7",
		Title:  "Improvement of the NUMA policies in Xen+ vs Xen+ (higher is better)",
		Header: []string{"app", "round-4k", "first-touch", "r4k/carrefour", "ft/carrefour", "best", "(paper)"},
	}
	for _, app := range Apps() {
		s.PrefetchXenSweep(app)
	}
	s.Join()
	over100 := 0
	for _, app := range Apps() {
		prof, _ := workload.Get(app)
		base := s.Xen(app, "round-1g", true)
		impr := func(pol string) (string, float64) {
			r := s.Xen(app, pol, true)
			v := float64(base.Completion)/float64(r.Completion) - 1
			return pct(v), v
		}
		c4, v4 := impr("round-4k")
		cf, vf := impr("first-touch")
		c4c, v4c := impr("round-4k/carrefour")
		cfc, vfc := impr("first-touch/carrefour")
		bestPol, _ := s.BestXen(app)
		if maxf(v4, vf, v4c, vfc) > 1.0 {
			over100++
		}
		t.Rows = append(t.Rows, []string{app, c4, cf, c4c, cfc, Abbrev(bestPol), prof.PaperBestXen})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d applications improved by more than 100%% (paper: 9)", over100))
	return t
}

// Fig10 reports Xen+ and Xen+NUMA overheads versus LinuxNUMA.
func Fig10(s *Suite) *Table {
	t := &Table{
		ID:     "fig10",
		Title:  "Overhead of Xen+ and Xen+NUMA vs LinuxNUMA (lower is better)",
		Header: []string{"app", "xen+", "xen+NUMA", "policy"},
	}
	for _, app := range Apps() {
		s.PrefetchLinuxSweep(app)
		s.PrefetchXenSweep(app)
	}
	s.Join()
	over50 := 0
	for _, app := range Apps() {
		_, base := s.BestLinux(app)
		xp := s.Xen(app, "round-1g", true)
		pol, xn := s.BestXen(app)
		o := float64(xn.Completion)/float64(base.Completion) - 1
		if o > 0.5 {
			over50++
		}
		t.Rows = append(t.Rows, []string{app,
			pct(float64(xp.Completion)/float64(base.Completion) - 1), pct(o), Abbrev(pol)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d applications remain above 50%% overhead with Xen+NUMA (paper: 4)", over50))
	return t
}

// IOTable reports the 4 KiB read latency and streaming capacity of the
// three DMA paths (§2.2.2).
func IOTable(*Suite) *Table {
	d := iosim.DefaultDisk()
	t := &Table{
		ID:     "io",
		Title:  "DMA path characteristics",
		Header: []string{"path", "4KiB read", "(paper)", "stream MB/s"},
	}
	paper := map[iosim.Path]string{
		iosim.PathNative: "74µs", iosim.PathPassthrough: "186µs", iosim.PathDom0: "307µs",
	}
	for _, p := range []iosim.Path{iosim.PathNative, iosim.PathPassthrough, iosim.PathDom0} {
		t.Rows = append(t.Rows, []string{p.String(),
			p.Read4KLatency().String(), paper[p], f0(p.StreamCap(d) / 1e6)})
	}
	return t
}

// HypercallTable reports the cost of the page-release notification path
// under the three designs of §4.2.3–4.2.4, for the wrmem release rate
// (one release per 15 µs per core, 48 cores).
func HypercallTable(*Suite) *Table {
	t := &Table{
		ID:     "hcall",
		Title:  "Page-release notification cost at wrmem's rate (48 cores, 15 µs/release/core)",
		Header: []string{"design", "per-release", "slowdown"},
	}
	const interval = 15000.0 // ns
	designs := []struct {
		name string
		cfg  guest.QueueConfig
	}{
		{"hypercall per release (no batching)", guest.QueueConfig{Queues: 1, BatchSize: 1, Unbatched: true}},
		{"single global queue, batch 64", guest.QueueConfig{Queues: 1, BatchSize: 64}},
		{"4 partitioned queues, batch 64 (paper)", guest.DefaultQueueConfig()},
	}
	for _, d := range designs {
		m := guest.ChurnModel{Cfg: d.cfg, Threads: 48}
		per := m.PerReleaseNs(interval)
		t.Rows = append(t.Rows, []string{d.name,
			fmt.Sprintf("%.0fns", per), fmt.Sprintf("%.2fx", 1+per/interval)})
	}
	t.Notes = append(t.Notes,
		"paper: the unbatched hypercall divides wrmem's performance by 3; batching with partitioned queues makes it negligible",
		"per full 64-entry batch, 87.5% of the hypercall time is entry invalidation and 12.5% queue transfer (§4.2.4)")
	return t
}

func maxf(xs ...float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
