package exp

import (
	"fmt"

	xennuma "repro"
	"repro/internal/engine"
)

// Pair names two applications sharing the machine.
type Pair struct{ A, B string }

// Fig8Pairs are the colocated-VM configurations (24 vCPUs each, half the
// nodes each). The paper's figure names five pairs; its text highlights
// cg.C with sp.C as the best case. The axis labels are not recoverable
// from the paper text, so the remaining pairs cover the three imbalance
// classes.
var Fig8Pairs = []Pair{
	{"cg.C", "sp.C"},
	{"facesim", "streamcluster"},
	{"kmeans", "pca"},
	{"ft.C", "bt.C"},
	{"wc", "wrmem"},
}

// Fig9Pairs are the consolidated-VM configurations (48 vCPUs each, every
// physical CPU running two vCPUs); six pairs, for eleven configurations
// total as in the paper.
var Fig9Pairs = []Pair{
	{"cg.C", "sp.C"},
	{"facesim", "kmeans"},
	{"streamcluster", "pca"},
	{"bt.C", "lu.C"},
	{"wc", "wrmem"},
	{"ft.C", "mg.D"},
}

// XenPair runs (and memoizes) a two-VM configuration under Xen+.
func (s *Suite) XenPair(a, polA, b, polB string, mode xennuma.PairMode, swap bool) (engine.Result, engine.Result) {
	key := fmt.Sprintf("pair/%s=%s/%s=%s/mode=%d/swap=%v", a, polA, b, polB, mode, swap)
	keyA, keyB := key+"/A", key+"/B"
	s.mu.Lock()
	ra, okA := s.cache[keyA]
	rb, okB := s.cache[keyB]
	s.mu.Unlock()
	if okA && okB {
		return ra, rb
	}
	o := s.Opt
	o.XenPlus = true
	ra, rb, err := xennuma.RunXenPair(a, xennuma.MustPolicy(polA), b, xennuma.MustPolicy(polB), mode, swap, o)
	if err != nil {
		panic(fmt.Sprintf("exp: %s: %v", key, err))
	}
	s.mu.Lock()
	s.cache[keyA], s.cache[keyB] = ra, rb
	s.mu.Unlock()
	return ra, rb
}

// pairImprovement runs one pair with the default policy (round-1G) and
// with each VM's best single-VM policy, returning the improvement per
// VM. Colocated runs average the two node assignments, as the paper does
// (§5.4.2).
func (s *Suite) pairImprovement(p Pair, mode xennuma.PairMode) (imprA, imprB float64, polA, polB string) {
	polA, _ = s.BestXen(p.A)
	polB, _ = s.BestXen(p.B)
	avg := func(pa, pb string) (float64, float64) {
		a1, b1 := s.XenPair(p.A, pa, p.B, pb, mode, false)
		if mode == xennuma.Consolidated {
			return float64(a1.Completion), float64(b1.Completion)
		}
		a2, b2 := s.XenPair(p.A, pa, p.B, pb, mode, true)
		return (float64(a1.Completion) + float64(a2.Completion)) / 2,
			(float64(b1.Completion) + float64(b2.Completion)) / 2
	}
	baseA, baseB := avg("round-1g", "round-1g")
	bestA, bestB := avg(polA, polB)
	return baseA/bestA - 1, baseB/bestB - 1, polA, polB
}

func pairFigure(s *Suite, id, title string, pairs []Pair, mode xennuma.PairMode) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"pair", "policy A", "impr A", "policy B", "impr B"},
	}
	over50 := 0
	for _, p := range pairs {
		ia, ib, pa, pb := s.pairImprovement(p, mode)
		if ia > 0.5 || ib > 0.5 {
			over50++
		}
		t.Rows = append(t.Rows, []string{
			p.A + " + " + p.B, Abbrev(pa), pct(ia), Abbrev(pb), pct(ib)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d/%d pairs improve at least one VM by more than 50%%", over50, len(pairs)))
	return t
}

// Fig8 reports the improvement of the best NUMA policies over the Xen+
// default with two colocated VMs (24 vCPUs each).
func Fig8(s *Suite) *Table {
	return pairFigure(s, "fig8",
		"Improvement of Xen+NUMA over Xen+ with 2 colocated VMs (24 vCPUs each)",
		Fig8Pairs, xennuma.Colocated)
}

// Fig9 reports the improvement with two consolidated VMs (48 vCPUs
// each, two vCPUs per physical CPU).
func Fig9(s *Suite) *Table {
	return pairFigure(s, "fig9",
		"Improvement of Xen+NUMA over Xen+ with 2 consolidated VMs (48 vCPUs each)",
		Fig9Pairs, xennuma.Consolidated)
}

// AllExperiments runs every driver in paper order.
func AllExperiments(s *Suite) []*Table {
	return []*Table{
		Fig1(s), Fig2(s), Table1(s), Table2(s), Table3(s), Table4(s),
		Fig5(s), Fig6(s), Fig7(s), Fig8(s), Fig9(s), Fig10(s),
		IOTable(s), HypercallTable(s),
	}
}

// ByID returns the driver for an experiment id, or nil.
func ByID(id string) func(*Suite) *Table {
	m := map[string]func(*Suite) *Table{
		"fig1": Fig1, "fig2": Fig2, "table1": Table1, "table2": Table2,
		"table3": Table3, "table4": Table4, "fig5": Fig5, "fig6": Fig6,
		"fig7": Fig7, "fig8": Fig8, "fig9": Fig9, "fig10": Fig10,
		"io": IOTable, "hcall": HypercallTable,
	}
	return m[id]
}

// IDs lists the experiment ids in paper order.
func IDs() []string {
	return []string{"fig1", "fig2", "table1", "table2", "table3", "table4",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "io", "hcall"}
}
