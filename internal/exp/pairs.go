package exp

import (
	"fmt"

	xennuma "repro"
	"repro/internal/engine"
)

// Pair names two applications sharing the machine.
type Pair struct{ A, B string }

// Fig8Pairs are the colocated-VM configurations (24 vCPUs each, half the
// nodes each). The paper's figure names five pairs; its text highlights
// cg.C with sp.C as the best case. The axis labels are not recoverable
// from the paper text, so the remaining pairs cover the three imbalance
// classes.
var Fig8Pairs = []Pair{
	{"cg.C", "sp.C"},
	{"facesim", "streamcluster"},
	{"kmeans", "pca"},
	{"ft.C", "bt.C"},
	{"wc", "wrmem"},
}

// Fig9Pairs are the consolidated-VM configurations (48 vCPUs each, every
// physical CPU running two vCPUs); six pairs, for eleven configurations
// total as in the paper.
var Fig9Pairs = []Pair{
	{"cg.C", "sp.C"},
	{"facesim", "kmeans"},
	{"streamcluster", "pca"},
	{"bt.C", "lu.C"},
	{"wc", "wrmem"},
	{"ft.C", "mg.D"},
}

// pairCell is one two-VM configuration under Xen+: a single cell whose
// two results are VM A's and VM B's.
func (s *Suite) pairCell(a, polA, b, polB string, mode xennuma.PairMode, swap bool) (string, cellFn) {
	key := fmt.Sprintf("pair/%s=%s/%s=%s/mode=%d/swap=%v", a, polA, b, polB, mode, swap)
	return key, func(o xennuma.Options) ([]engine.Result, error) {
		o.XenPlus = true
		pa, err := xennuma.ParsePolicy(polA)
		if err != nil {
			return nil, err
		}
		pb, err := xennuma.ParsePolicy(polB)
		if err != nil {
			return nil, err
		}
		ra, rb, err := xennuma.RunXenPair(a, pa, b, pb, mode, swap, o)
		if err != nil {
			return nil, err
		}
		return []engine.Result{ra, rb}, nil
	}
}

// XenPair runs (and memoizes) a two-VM configuration under Xen+.
func (s *Suite) XenPair(a, polA, b, polB string, mode xennuma.PairMode, swap bool) (engine.Result, engine.Result) {
	key, fn := s.pairCell(a, polA, b, polB, mode, swap)
	r := s.results(s.baseSeed(), key, fn)
	return r[0], r[1]
}

// PrefetchXenPair schedules one two-VM configuration on the worker pool.
func (s *Suite) PrefetchXenPair(a, polA, b, polB string, mode xennuma.PairMode, swap bool) {
	key, fn := s.pairCell(a, polA, b, polB, mode, swap)
	s.prefetch(s.baseSeed(), key, fn)
}

// pairSwaps returns the node-assignment variants one pair configuration
// needs: colocated runs average both halves (§5.4.2), consolidated runs
// have a single assignment.
func pairSwaps(mode xennuma.PairMode) []bool {
	if mode == xennuma.Colocated {
		return []bool{false, true}
	}
	return []bool{false}
}

// pairImprovement runs one pair with the default policy (round-1G) and
// with each VM's best single-VM policy, returning the improvement per
// VM. Colocated runs average the two node assignments, as the paper does
// (§5.4.2).
func (s *Suite) pairImprovement(p Pair, mode xennuma.PairMode) (imprA, imprB float64, polA, polB string) {
	polA, _ = s.BestXen(p.A)
	polB, _ = s.BestXen(p.B)
	avg := func(pa, pb string) (float64, float64) {
		var ca, cb float64
		swaps := pairSwaps(mode)
		for _, sw := range swaps {
			a, b := s.XenPair(p.A, pa, p.B, pb, mode, sw)
			ca += float64(a.Completion)
			cb += float64(b.Completion)
		}
		return ca / float64(len(swaps)), cb / float64(len(swaps))
	}
	baseA, baseB := avg("round-1g", "round-1g")
	bestA, bestB := avg(polA, polB)
	return baseA/bestA - 1, baseB/bestB - 1, polA, polB
}

// prefetchPairFigure warms every cell one pair figure reads, in two
// batches: first the single-VM policy sweeps that select each VM's best
// policy, then — once those have joined — every two-VM configuration
// (default and best, both node assignments). All cells of a batch are
// submitted up front and execute concurrently on the suite's workers.
func prefetchPairFigure(s *Suite, pairs []Pair, mode xennuma.PairMode) {
	seen := map[string]bool{}
	for _, p := range pairs {
		for _, app := range []string{p.A, p.B} {
			if !seen[app] {
				seen[app] = true
				s.PrefetchXenSweep(app)
			}
		}
	}
	s.Join()
	for _, p := range pairs {
		polA, _ := s.BestXen(p.A) // cache hits after the joined sweep
		polB, _ := s.BestXen(p.B)
		for _, sw := range pairSwaps(mode) {
			s.PrefetchXenPair(p.A, "round-1g", p.B, "round-1g", mode, sw)
			s.PrefetchXenPair(p.A, polA, p.B, polB, mode, sw)
		}
	}
	s.Join()
}

func pairFigure(s *Suite, id, title string, pairs []Pair, mode xennuma.PairMode) *Table {
	prefetchPairFigure(s, pairs, mode)
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"pair", "policy A", "impr A", "policy B", "impr B"},
	}
	over50 := 0
	for _, p := range pairs {
		ia, ib, pa, pb := s.pairImprovement(p, mode)
		if ia > 0.5 || ib > 0.5 {
			over50++
		}
		t.Rows = append(t.Rows, []string{
			p.A + " + " + p.B, Abbrev(pa), pct(ia), Abbrev(pb), pct(ib)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d/%d pairs improve at least one VM by more than 50%%", over50, len(pairs)))
	return t
}

// Fig8 reports the improvement of the best NUMA policies over the Xen+
// default with two colocated VMs (24 vCPUs each).
func Fig8(s *Suite) *Table {
	return pairFigure(s, "fig8",
		"Improvement of Xen+NUMA over Xen+ with 2 colocated VMs (24 vCPUs each)",
		Fig8Pairs, xennuma.Colocated)
}

// Fig9 reports the improvement with two consolidated VMs (48 vCPUs
// each, two vCPUs per physical CPU).
func Fig9(s *Suite) *Table {
	return pairFigure(s, "fig9",
		"Improvement of Xen+NUMA over Xen+ with 2 consolidated VMs (48 vCPUs each)",
		Fig9Pairs, xennuma.Consolidated)
}

// AllExperiments runs every driver in paper order. Each driver batches
// its own cells onto the suite's worker pool.
func AllExperiments(s *Suite) []*Table {
	return []*Table{
		Fig1(s), Fig2(s), Table1(s), Table2(s), Table3(s), Table4(s),
		Fig5(s), Fig6(s), Fig7(s), Fig8(s), Fig9(s), Fig10(s),
		IOTable(s), HypercallTable(s),
	}
}

// ByID returns the driver for an experiment id, or nil.
func ByID(id string) func(*Suite) *Table {
	m := map[string]func(*Suite) *Table{
		"fig1": Fig1, "fig2": Fig2, "table1": Table1, "table2": Table2,
		"table3": Table3, "table4": Table4, "fig5": Fig5, "fig6": Fig6,
		"fig7": Fig7, "fig8": Fig8, "fig9": Fig9, "fig10": Fig10,
		"io": IOTable, "hcall": HypercallTable,
	}
	return m[id]
}

// IDs lists the experiment ids in paper order.
func IDs() []string {
	return []string{"fig1", "fig2", "table1", "table2", "table3", "table4",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "io", "hcall"}
}
