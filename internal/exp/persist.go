package exp

import (
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Cache export/import: a suite's computed cells can be snapshotted into
// plain serializable records and restored into a fresh suite, so a
// resident service (internal/serve) survives restarts warm. Snapshots
// carry exactly the externally observable result fields — the ones the
// sweep/advise tables and the golden fixture read — so a response built
// from a restored cell is byte-identical to one built from the freshly
// computed cell. The RunStats accumulator's unexported internals
// (per-node access counts, epoch totals) are not captured: they are
// consumed during the run to derive the exported fields and are dead
// weight afterwards.
//
// Keys are the cache's own "seed=N/<key>" strings; callers pair a
// snapshot with a model-version stamp (xennuma.ModelVersion) so a cache
// written by a different engine is rejected rather than replayed.

// CellSnapshot is one computed cell: its cache key and one result per
// instance (two for pair cells).
type CellSnapshot struct {
	Key     string           `json:"key"`
	Results []ResultSnapshot `json:"results"`
}

// ResultSnapshot is the serializable view of one engine.Result. Floats
// survive the JSON round trip bit-for-bit (Go emits the shortest
// representation that parses back to the same value).
type ResultSnapshot struct {
	App              string  `json:"app"`
	Backend          string  `json:"backend"`
	Completion       int64   `json:"completion"`
	TimedOut         bool    `json:"timed_out,omitempty"`
	InitTime         int64   `json:"init_time"`
	Imbalance        float64 `json:"imbalance"`
	InterconnectLoad float64 `json:"interconnect_load"`
	Locality         float64 `json:"locality"`
	Migrated         uint64  `json:"migrated"`

	// The run-stats accumulator's exported totals.
	RemoteAccesses float64 `json:"remote_accesses"`
	TotalAccesses  float64 `json:"total_accesses"`
	PagesMigrated  uint64  `json:"pages_migrated"`
	Hypercalls     uint64  `json:"hypercalls"`
	HypercallNanos float64 `json:"hypercall_nanos"`
	IPIOverhead    float64 `json:"ipi_overhead"`
	IOSeconds      float64 `json:"io_seconds"`
}

func toSnapshot(r engine.Result) ResultSnapshot {
	s := ResultSnapshot{
		App:              r.App,
		Backend:          r.Backend,
		Completion:       int64(r.Completion),
		TimedOut:         r.TimedOut,
		InitTime:         int64(r.InitTime),
		Imbalance:        r.Imbalance,
		InterconnectLoad: r.InterconnectLoad,
		Locality:         r.Locality,
		Migrated:         r.Migrated,
	}
	if r.Stats != nil {
		s.RemoteAccesses = r.Stats.RemoteAccesses
		s.TotalAccesses = r.Stats.TotalAccesses
		s.PagesMigrated = r.Stats.PagesMigrated
		s.Hypercalls = r.Stats.Hypercalls
		s.HypercallNanos = r.Stats.HypercallNanos
		s.IPIOverhead = r.Stats.IPIOverhead
		s.IOSeconds = r.Stats.IOSeconds
	}
	return s
}

func (s ResultSnapshot) result() engine.Result {
	return engine.Result{
		App:              s.App,
		Backend:          s.Backend,
		Completion:       sim.Time(s.Completion),
		TimedOut:         s.TimedOut,
		InitTime:         sim.Time(s.InitTime),
		Imbalance:        s.Imbalance,
		InterconnectLoad: s.InterconnectLoad,
		Locality:         s.Locality,
		Migrated:         s.Migrated,
		Stats: &metrics.RunStats{
			RemoteAccesses: s.RemoteAccesses,
			TotalAccesses:  s.TotalAccesses,
			PagesMigrated:  s.PagesMigrated,
			Hypercalls:     s.Hypercalls,
			HypercallNanos: s.HypercallNanos,
			IPIOverhead:    s.IPIOverhead,
			IOSeconds:      s.IOSeconds,
		},
	}
}

// Snapshot exports every successfully computed cell, sorted by key.
// Cells still in flight and cells that failed are skipped — a snapshot
// taken while workers run is a consistent prefix, never a torn cell.
// Safe for concurrent use with the cell accessors.
func (s *Suite) Snapshot() []CellSnapshot {
	var out []CellSnapshot
	for _, key := range s.cache.keys() {
		cl, ok := s.cache.get(key)
		if !ok || !cl.resolved() || cl.err != nil {
			continue
		}
		snap := CellSnapshot{Key: key}
		for _, r := range cl.res {
			snap.Results = append(snap.Results, toSnapshot(r))
		}
		out = append(out, snap)
	}
	return out
}

// Restore seeds the cache with previously snapshotted cells and reports
// how many were installed. Keys already present (computed or in flight)
// and malformed records are skipped, and restored cells do not count as
// computed — CellsComputed still measures simulation work only, so warm
// restarts are observable as cache hits.
func (s *Suite) Restore(cells []CellSnapshot) int {
	n := 0
	for _, c := range cells {
		if c.Key == "" || len(c.Results) == 0 {
			continue
		}
		cl, created := s.cache.claim(c.Key)
		if !created {
			continue
		}
		for _, r := range c.Results {
			cl.res = append(cl.res, r.result())
		}
		close(cl.done)
		n++
	}
	return n
}

// CachedCells reports how many resolved, error-free cells the cache
// holds — computed plus restored (the singleflight's visible size, for
// the sweep service's stats endpoint).
func (s *Suite) CachedCells() int {
	n := 0
	for _, key := range s.cache.keys() {
		if cl, ok := s.cache.get(key); ok && cl.resolved() && cl.err == nil {
			n++
		}
	}
	return n
}

// SchedulerStats reports the scheduler's submitted and completed task
// counters (prefetched cells, including duplicates filtered before
// submission).
func (s *Suite) SchedulerStats() (submitted, completed int64) {
	return s.sched.Stats()
}
