package exp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/numa"
	"repro/internal/policy"
	"repro/internal/sim"
)

// The sweep experiment family turns the open policy registry into a
// decision-making instrument: instead of regenerating a fixed figure of
// the paper, a sweep tabulates *every* registered policy for one
// application — the measurement the paper's §7 says an automatic policy
// selector would need. Three sweeps exist: the policy × Carrefour table
// (PolicySweep), the per-node bind sweep mapping placement sensitivity
// (BindSweep), and the seed-averaged stability report (SeedSweep). All
// three fan their cells out through the suite's scheduler and are
// bit-for-bit deterministic for a fixed seed at any worker count.
//
// Because the suite's cache keys carry the seed, one suite serves every
// (app, seed) combination: the …Apps variants batch several
// applications' cells — and SeedSweep every seed's — onto the shared
// pool in a single prefetch wave before any table is read.

// sweepRow is one registered policy as the sweeps run it: the plain
// suite-ready spelling plus whether a Carrefour-stacked cell exists.
type sweepRow struct {
	name      string // "round-4k", "bind:0", ...
	carrefour bool
}

// sweepRows enumerates the registry in registration order. Unlike
// RegisteredXenPolicies it includes the Carrefour variant of boot-only
// kinds: a sweep cell boots the domain with its row's policy, so
// stacking Carrefour on round-1G is legal there (only a *runtime switch*
// to a boot-only layout is not).
func sweepRows() []sweepRow {
	var rows []sweepRow
	for _, d := range policy.List() {
		rows = append(rows, sweepRow{name: d.DefaultSpelling(), carrefour: d.Carrefour})
	}
	return rows
}

// sweepPolicies flattens sweepRows into the cell list both sweeps run:
// each policy's plain spelling plus its Carrefour variant where one
// exists.
func sweepPolicies() []string {
	var pols []string
	for _, r := range sweepRows() {
		pols = append(pols, r.name)
		if r.carrefour {
			pols = append(pols, r.name+"/carrefour")
		}
	}
	return pols
}

// PolicySweep tabulates every registered policy × {plain, Carrefour}
// for app under Xen+: completion time and improvement over the Xen+
// default (round-1G), one simulation cell per table cell, all fanned
// out before any is read.
func PolicySweep(s *Suite, app string) *Table {
	return PolicySweepApps(s, []string{app})[0]
}

// PolicySweepApps is PolicySweep over several applications sharing one
// prefetch wave: every (app, policy) cell is submitted to the suite's
// scheduler before any table is read, so the whole batch runs at the
// pool's full width. One table per app, in input order.
func PolicySweepApps(s *Suite, apps []string) []*Table {
	rows := sweepRows()
	pols := sweepPolicies()
	for _, app := range apps {
		for _, pol := range pols {
			s.PrefetchXen(app, pol, true)
		}
	}
	s.Join()

	tables := make([]*Table, 0, len(apps))
	for _, app := range apps {
		t := &Table{
			ID:     "sweep",
			Title:  fmt.Sprintf("Policy sweep for %s under Xen+ (improvement vs round-1G)", app),
			Header: []string{"policy", "abbrev", "plain", "vs R1G", "carrefour", "vs R1G"},
		}
		base := s.Xen(app, "round-1g", true)
		impr := func(r engine.Result) string {
			return pct(float64(base.Completion)/float64(r.Completion) - 1)
		}
		for _, row := range rows {
			plain := s.Xen(app, row.name, true)
			ccomp, cimpr := "-", "-"
			if row.carrefour {
				c := s.Xen(app, row.name+"/carrefour", true)
				ccomp, cimpr = c.Completion.String(), impr(c)
			}
			t.Rows = append(t.Rows, []string{
				row.name, Abbrev(row.name), plain.Completion.String(), impr(plain), ccomp, cimpr})
		}
		bestPol, bestRes := s.best(pols, func(p string) engine.Result { return s.Xen(app, p, true) })
		t.Notes = append(t.Notes,
			fmt.Sprintf("best: %s (%s, %s vs round-1G) over %d cells",
				bestPol, bestRes.Completion, impr(bestRes), len(pols)))
		tables = append(tables, t)
	}
	return tables
}

// BindSweep maps app's placement sensitivity: one cell per bind:<node>
// policy, pinning every faulted page to that node. The spread between
// the best and worst node shows how much the single-node placement
// decision alone is worth.
func BindSweep(s *Suite, app string) *Table {
	nodes := numa.AMD48Nodes
	for n := 0; n < nodes; n++ {
		s.PrefetchXen(app, fmt.Sprintf("bind:%d", n), true)
	}
	s.Join()

	t := &Table{
		ID:     "sweep-bind",
		Title:  fmt.Sprintf("Per-node bind sweep for %s under Xen+ (placement sensitivity)", app),
		Header: []string{"policy", "completion", "imbalance", "interconnect", "locality"},
	}
	bestNode, worstNode := 0, 0
	var best, worst engine.Result
	for n := 0; n < nodes; n++ {
		r := s.Xen(app, fmt.Sprintf("bind:%d", n), true)
		if n == 0 || r.Completion < best.Completion {
			bestNode, best = n, r
		}
		if n == 0 || r.Completion > worst.Completion {
			worstNode, worst = n, r
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("bind:%d", n), r.Completion.String(),
			f0(r.Imbalance) + "%", f0(r.InterconnectLoad) + "%", f2(r.Locality)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"sensitivity: worst node %d is %s slower than best node %d",
		worstNode, pct(float64(worst.Completion)/float64(best.Completion)-1), bestNode))
	return t
}

// SeedSweep reports best-policy stability: it repeats the full policy
// sweep for app across `seeds` consecutive seeds (starting at the
// suite's seed) and tabulates each policy's mean completion and how
// often it won. Cache keys carry the seed, so every seed's cells run on
// s's own scheduler and cache — all seeds × policies are prefetched in
// one wave before any cell is read, and the first seed's cells are pure
// hits when a PolicySweep ran before.
func SeedSweep(s *Suite, app string, seeds int) *Table {
	return SeedSweepApps(s, []string{app}, seeds)[0]
}

// SeedSweepApps is SeedSweep over several applications sharing one
// prefetch wave of seeds × apps × policies cells on the suite's
// scheduler. One table per app, in input order.
func SeedSweepApps(s *Suite, apps []string, seeds int) []*Table {
	if seeds < 1 {
		seeds = 1
	}
	baseSeed := s.baseSeed()
	pols := sweepPolicies()
	for i := 0; i < seeds; i++ {
		seed := baseSeed + uint64(i)
		for _, app := range apps {
			for _, pol := range pols {
				s.PrefetchXenSeeded(app, pol, true, seed)
			}
		}
	}
	s.Join()

	tables := make([]*Table, 0, len(apps))
	for _, app := range apps {
		tables = append(tables, seedSweepTable(s, app, seeds, baseSeed, pols))
	}
	return tables
}

// seedSweepTable builds one app's stability table from the already
// prefetched seeded cells.
func seedSweepTable(s *Suite, app string, seeds int, baseSeed uint64, pols []string) *Table {
	wins := make(map[string]int, len(pols))
	mean := make(map[string]float64, len(pols))
	var perSeed []string
	for i := 0; i < seeds; i++ {
		seed := baseSeed + uint64(i)
		for _, pol := range pols {
			mean[pol] += float64(s.XenSeeded(app, pol, true, seed).Completion) / float64(seeds)
		}
		best, _ := s.best(pols, func(p string) engine.Result { return s.XenSeeded(app, p, true, seed) })
		wins[best]++
		perSeed = append(perSeed, fmt.Sprintf("seed %d → %s", seed, Abbrev(best)))
	}

	// Rank by mean completion; ties keep registration order (sort is
	// stable over the deterministic pols slice).
	order := append([]string(nil), pols...)
	sort.SliceStable(order, func(a, b int) bool { return mean[order[a]] < mean[order[b]] })

	t := &Table{
		ID:     "sweep-seeds",
		Title:  fmt.Sprintf("Best-policy stability for %s across %d seeds (Xen+)", app, seeds),
		Header: []string{"policy", "abbrev", "mean completion", fmt.Sprintf("wins/%d", seeds)},
	}
	for _, pol := range order {
		t.Rows = append(t.Rows, []string{
			pol, Abbrev(pol), sim.Time(mean[pol]).String(), fmt.Sprintf("%d", wins[pol])})
	}
	modal, modalWins := order[0], wins[order[0]]
	for _, pol := range order {
		if wins[pol] > modalWins {
			modal, modalWins = pol, wins[pol]
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("modal best %s wins %d/%d seeds", Abbrev(modal), modalWins, seeds),
		strings.Join(perSeed, "; "))
	return t
}
