package exp

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
)

// Scheduler fans simulation cells out across a bounded pool of workers.
// Submitted tasks start immediately (each in its own goroutine) but at
// most Workers of them run at a time; the rest queue on the semaphore.
// Submit and Wait must not be called concurrently from different
// goroutines (and tasks must not submit further tasks): the WaitGroup
// forbids an Add racing a Wait whose counter has reached zero.
type Scheduler struct {
	sem       chan struct{}
	wg        sync.WaitGroup
	submitted atomic.Int64
	completed atomic.Int64
}

// NewScheduler returns a pool with the given concurrency; workers <= 0
// selects runtime.GOMAXPROCS(0).
func NewScheduler(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (s *Scheduler) Workers() int { return cap(s.sem) }

// Submit queues fn for execution and returns immediately.
func (s *Scheduler) Submit(fn func()) {
	s.wg.Add(1)
	s.submitted.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.completed.Add(1)
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		fn()
	}()
}

// Wait blocks until every submitted task has finished.
func (s *Scheduler) Wait() { s.wg.Wait() }

// Stats reports how many tasks were submitted and have completed.
func (s *Scheduler) Stats() (submitted, completed int64) {
	return s.submitted.Load(), s.completed.Load()
}

// cell is one memoized simulation: a single-VM run (one result) or a
// two-VM run (two results). The first claimer computes it; everyone else
// blocks on done. Computation never nests cells, so a claimer always
// makes progress and waiters cannot deadlock.
type cell struct {
	done chan struct{}
	res  []engine.Result
	err  error
}

// resultCache is a mutex-sharded singleflight map from cell key to cell,
// so concurrent workers on disjoint cells do not serialize on one lock.
type resultCache struct {
	shards [cacheShards]cacheShard
}

const cacheShards = 16

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*cell
}

func newResultCache() *resultCache {
	c := &resultCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*cell)
	}
	return c
}

func (c *resultCache) shard(key string) *cacheShard {
	return &c.shards[fnv1a(key)%cacheShards]
}

// claim returns the cell for key, creating it if absent. created reports
// whether the caller is the one who must compute it and close done.
func (c *resultCache) claim(key string) (cl *cell, created bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cl, ok := sh.m[key]; ok {
		return cl, false
	}
	cl = &cell{done: make(chan struct{})}
	sh.m[key] = cl
	return cl, true
}

// get returns the cell for key without claiming it.
func (c *resultCache) get(key string) (*cell, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cl, ok := sh.m[key]
	return cl, ok
}

// resolved reports whether the cell's computation has finished (its
// res/err fields are safe to read).
func (cl *cell) resolved() bool {
	select {
	case <-cl.done:
		return true
	default:
		return false
	}
}

// evict removes key from the cache if it still maps to cl (pointer
// compare), so an errored cell does not poison every future read of
// its key. A concurrent re-claim that already replaced the entry is
// left alone.
func (c *resultCache) evict(key string, cl *cell) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.m[key] == cl {
		delete(sh.m, key)
	}
}

// has reports whether key is already claimed (computed or in flight)
// without claiming it.
func (c *resultCache) has(key string) bool {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.m[key]
	return ok
}

// keys returns the sorted cell keys.
func (c *resultCache) keys() []string {
	var out []string
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// cellSeed derives the simulation seed for one cell from the suite's
// base seed and the cell key. Every cell owns an independent random
// stream that depends only on (base, key), so results are bit-for-bit
// identical no matter how many workers run the suite or in which order
// the cells execute. A zero base is remapped to 1 to match
// Options.normalized.
func cellSeed(base uint64, key string) uint64 {
	if base == 0 {
		base = 1
	}
	z := fnv1a(key) ^ (base * 0x9E3779B97F4A7C15)
	// SplitMix64 finalizer.
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}
