package exp

import (
	"fmt"
	"strings"
	"testing"

	xennuma "repro"
)

// miniPairs is a cheap two-VM configuration set built from the fastest
// workloads, used to exercise the full batched pair-figure path (sweep →
// best-policy selection → pair cells) without the full suite's cost.
var miniPairs = []Pair{{"swaptions", "ep.D"}}

// renderMiniTables drives both pair-figure modes through the real
// pairFigure code path on a fresh suite with the given worker count and
// returns the concatenated rendered tables plus the cache keys.
func renderMiniTables(workers int, seed uint64) (string, []string) {
	s := NewSuiteParallel(256, workers)
	s.Opt.Seed = seed
	var b strings.Builder
	b.WriteString(pairFigure(s, "mini8", "mini colocated", miniPairs, xennuma.Colocated).Render())
	b.WriteString(pairFigure(s, "mini9", "mini consolidated", miniPairs, xennuma.Consolidated).Render())
	return b.String(), s.CacheKeys()
}

// TestPairFigureDeterministicAcrossWorkers: the same seed must produce
// byte-identical tables (and an identical cell population) no matter how
// many workers execute the suite. Run with -race to also validate that
// concurrent engine.Run invocations share no mutable state.
func TestPairFigureDeterministicAcrossWorkers(t *testing.T) {
	want, wantKeys := renderMiniTables(1, 7)
	if !strings.Contains(want, "swaptions + ep.D") {
		t.Fatalf("unexpected table:\n%s", want)
	}
	for _, workers := range []int{3, 8} {
		got, gotKeys := renderMiniTables(workers, 7)
		if got != want {
			t.Errorf("workers=%d rendered different tables:\n--- 1 worker ---\n%s--- %d workers ---\n%s",
				workers, want, workers, got)
		}
		if fmt.Sprint(gotKeys) != fmt.Sprint(wantKeys) {
			t.Errorf("workers=%d computed a different cell set", workers)
		}
	}
	// A different seed must change at least the cached results' streams
	// (the rendered improvements generally shift too, but are rounded);
	// assert the suite at least accepts it and stays deterministic.
	again, _ := renderMiniTables(4, 11)
	again2, _ := renderMiniTables(2, 11)
	if again != again2 {
		t.Error("seed 11 not deterministic across worker counts")
	}
}

// TestFullPairTablesDeterministicAcrossWorkers is the acceptance check:
// exp.NewSuite driving both Fig8 and Fig9 produces byte-identical tables
// for a fixed seed with 1 worker and with many. It recomputes the full
// pair evaluation twice (~1 min on one core), so it is skipped in short
// mode and under the race detector, where the mini variant above covers
// the same property.
func TestFullPairTablesDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full pair tables are expensive; run without -short")
	}
	if raceEnabled {
		t.Skip("covered by the mini variant under race")
	}
	render := func(workers int) string {
		s := NewSuiteParallel(64, workers)
		s.Opt.Seed = 1
		return Fig8(s).Render() + Fig9(s).Render()
	}
	want := render(1)
	if got := render(8); got != want {
		t.Fatalf("Fig8+Fig9 differ between 1 and 8 workers:\n--- 1 ---\n%s--- 8 ---\n%s", want, got)
	}
}

// BenchmarkPairFiguresWorkers measures the batched pair-figure wall
// clock at increasing worker counts; on a multi-core machine the sweep
// scales near-linearly until the core count (the cells are independent
// simulations), demonstrating the ≥2x speedup at 4+ workers.
func BenchmarkPairFiguresWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := NewSuiteParallel(64, workers)
				Fig8(s)
				Fig9(s)
			}
		})
	}
}

// BenchmarkMiniPairFiguresWorkers is the same sweep over the cheap
// configuration set, for quick comparisons.
func BenchmarkMiniPairFiguresWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := NewSuiteParallel(256, workers)
				pairFigure(s, "mini8", "mini colocated", miniPairs, xennuma.Colocated)
				pairFigure(s, "mini9", "mini consolidated", miniPairs, xennuma.Consolidated)
			}
		})
	}
}
