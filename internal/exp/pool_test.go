package exp

import (
	"reflect"
	"testing"

	xennuma "repro"
	"repro/internal/engine"
)

// poolCells runs a representative mix of pool-eligible cells — the full
// Xen policy sweep for two apps plus a colocated and a consolidated
// pair — through the suite's scheduler and returns every result in a
// fixed order, along with the pool's hit count.
func poolCells(t *testing.T, workers int, noPool bool) ([]engine.Result, uint64) {
	t.Helper()
	s := NewSuiteParallel(256, workers)
	s.Opt.Seed = 7
	s.Opt.NoPool = noPool
	apps := []string{"swaptions", "ep.D"}
	for _, app := range apps {
		s.PrefetchXenSweep(app)
	}
	for _, mode := range []xennuma.PairMode{xennuma.Colocated, xennuma.Consolidated} {
		s.PrefetchXenPair("swaptions", "first-touch", "ep.D", "round-4k", mode, false)
	}
	s.Join()
	var res []engine.Result
	for _, app := range apps {
		for _, p := range XenPolicies {
			res = append(res, s.Xen(app, p, true))
		}
	}
	for _, mode := range []xennuma.PairMode{xennuma.Colocated, xennuma.Consolidated} {
		a, b := s.XenPair("swaptions", "first-touch", "ep.D", "round-4k", mode, false)
		res = append(res, a, b)
	}
	hits, _ := s.PoolStats()
	return res, hits
}

// TestPooledCellsMatchFreshSuites pins the warm-machine pool end to
// end: a suite leasing and resetting pooled machines must produce
// results bit-for-bit identical to the Options.NoPool reference path
// that cold-builds every cell, at one worker and at several (leases are
// exclusive, so worker count must not matter). The pool must also
// actually fire, or the comparison is vacuous.
func TestPooledCellsMatchFreshSuites(t *testing.T) {
	want, _ := poolCells(t, 1, true)
	for _, workers := range []int{1, 4} {
		got, hits := poolCells(t, workers, false)
		if hits == 0 {
			t.Errorf("workers=%d: pool never hit; test is vacuous", workers)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: result counts differ: %d vs %d", workers, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("workers=%d: result %d diverges:\npooled: %+v\nfresh:  %+v", workers, i, got[i], want[i])
			}
		}
	}
}
