package exp

import (
	"encoding/json"
	"reflect"
	"testing"

	xennuma "repro"
)

// TestSnapshotRestoreRoundTrip pins the cache persistence contract: a
// fresh suite restored from a snapshot serves the same cells
// bit-for-bit without computing anything, including through a JSON
// round trip (the on-disk representation).
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := NewSuiteParallel(256, 2)
	s.Xen("swaptions", "first-touch", true)
	s.Linux("swaptions", "round-4k", true)
	s.XenPair("swaptions", "first-touch", "swaptions", "round-4k", xennuma.Consolidated, false)

	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d cells, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Key >= snap[i].Key {
			t.Fatalf("snapshot keys not sorted: %q >= %q", snap[i-1].Key, snap[i].Key)
		}
	}

	// Disk round trip: marshal, unmarshal, restore into a fresh suite.
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []CellSnapshot
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	s2 := NewSuiteParallel(256, 2)
	if n := s2.Restore(decoded); n != 3 {
		t.Fatalf("restored %d cells, want 3", n)
	}
	if got := s2.CellsComputed(); got != 0 {
		t.Fatalf("restore counted as computed: CellsComputed = %d", got)
	}
	if got := s2.CachedCells(); got != 3 {
		t.Fatalf("CachedCells = %d, want 3", got)
	}

	// The restored suite serves the same observable results without
	// computing: snapshots (which capture every field the tables and
	// golden fixture read) must match exactly.
	r1 := s.Xen("swaptions", "first-touch", true)
	r2 := s2.Xen("swaptions", "first-touch", true)
	if !reflect.DeepEqual(toSnapshot(r1), toSnapshot(r2)) {
		t.Fatalf("restored cell drifted:\n fresh   %+v\n restored %+v", toSnapshot(r1), toSnapshot(r2))
	}
	if got := s2.CellsComputed(); got != 0 {
		t.Fatalf("restored cell recomputed: CellsComputed = %d", got)
	}
	if !reflect.DeepEqual(s2.Snapshot(), snap) {
		t.Fatal("snapshot of restored suite differs from the original snapshot")
	}
}

// TestRestoreSkipsExistingAndMalformed: restoring over a warm cache
// keeps the computed cells, and junk records are ignored.
func TestRestoreSkipsExistingAndMalformed(t *testing.T) {
	s := NewSuiteParallel(256, 1)
	r := s.Xen("swaptions", "first-touch", true)
	snap := s.Snapshot()

	junk := append([]CellSnapshot{
		{Key: "", Results: snap[0].Results}, // empty key
		{Key: "seed=1/bogus"},               // no results
	}, snap...)
	if n := s.Restore(junk); n != 0 {
		t.Fatalf("restore over a warm cache installed %d cells, want 0", n)
	}
	if got := s.Xen("swaptions", "first-touch", true); !reflect.DeepEqual(got, r) {
		t.Fatal("restore over a warm cache changed a computed cell")
	}
}
