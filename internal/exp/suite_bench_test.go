package exp

import "testing"

// BenchmarkSuiteSweep measures experiment-suite throughput: one op is a
// fixed sweep batch — two cheap applications × two seeds × every
// registered policy (with Carrefour variants) — computed from scratch
// on a fresh suite with a fixed two-worker pool, the unit of work
// behind multi-seed, multi-app sweeps. The derived cells/sec metric is
// the suite-throughput trajectory scripts/bench_suite.sh records in
// BENCH_suite.json (mirroring BenchmarkEpoch → BENCH_engine.json for
// the engine hot loop).
func BenchmarkSuiteSweep(b *testing.B) {
	apps := []string{"swaptions", "ep.D"}
	var cells int64
	for i := 0; i < b.N; i++ {
		s := NewSuiteParallel(256, 2)
		s.Opt.Seed = 7
		SeedSweepApps(s, apps, 2)
		cells += s.CellsComputed()
	}
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/sec")
}
