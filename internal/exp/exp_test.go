package exp

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"row-one-cell", "1"}, {"r", "22"}},
		Notes:  []string{"a note"},
	}
	out := tab.Render()
	if !strings.Contains(out, "== x: demo ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "note: a note") {
		t.Fatal("missing note")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header, separator, two rows, note.
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	// Columns align: the second column starts at the same offset in the
	// header and row lines.
	h, r := lines[1], lines[3]
	if strings.Index(h, "long-column") != strings.Index(r, "1") {
		t.Fatalf("columns misaligned:\n%s\n%s", h, r)
	}
}

func TestAbbrev(t *testing.T) {
	cases := map[string]string{
		"first-touch":           "FT",
		"first-touch/carrefour": "FT/C",
		"round-4k":              "R4K",
		"round-4k/carrefour":    "R4K/C",
		"round-1g":              "R1G",
		"other":                 "other",
	}
	for in, want := range cases {
		if got := Abbrev(in); got != want {
			t.Errorf("Abbrev(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIDsAndByID(t *testing.T) {
	ids := IDs()
	if len(ids) != 14 {
		t.Fatalf("IDs() = %d entries", len(ids))
	}
	for _, id := range ids {
		if ByID(id) == nil {
			t.Errorf("ByID(%q) = nil", id)
		}
	}
	if ByID("fig99") != nil {
		t.Fatal("unknown id resolved")
	}
}

// The cheap drivers (no simulation runs) must produce well-formed
// tables.
func TestCheapDrivers(t *testing.T) {
	s := NewSuite(64)
	for _, fn := range []func(*Suite) *Table{Table2, Table3, Fig5, IOTable, HypercallTable} {
		tab := fn(s)
		if tab.ID == "" || len(tab.Header) == 0 || len(tab.Rows) == 0 {
			t.Fatalf("driver %s produced an empty table", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("%s: row width %d != header %d", tab.ID, len(row), len(tab.Header))
			}
		}
	}
}

func TestHypercallTableShape(t *testing.T) {
	tab := HypercallTable(nil)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Unbatched must be the most expensive design, partitioned the
	// cheapest.
	if !(tab.Rows[0][1] > tab.Rows[1][1]) { // string compare is fine: "NNNNns"
		t.Logf("rows: %v", tab.Rows)
	}
}

func TestSuiteCaching(t *testing.T) {
	s := NewSuite(256)
	r1 := s.Xen("swaptions", "round-4k", true)
	if len(s.CacheKeys()) != 1 {
		t.Fatalf("cache keys = %v", s.CacheKeys())
	}
	r2 := s.Xen("swaptions", "round-4k", true)
	if r1.Completion != r2.Completion {
		t.Fatal("cache returned a different result")
	}
	if len(s.CacheKeys()) != 1 {
		t.Fatal("cache grew on a hit")
	}
	// A different configuration is a different key.
	s.Xen("swaptions", "round-4k", false)
	if len(s.CacheKeys()) != 2 {
		t.Fatal("miss did not populate the cache")
	}
}

func TestBestXenPicksMinimum(t *testing.T) {
	s := NewSuite(256)
	pol, best := s.BestXen("swaptions")
	found := false
	for _, p := range XenPolicies {
		r := s.Xen("swaptions", p, true)
		if r.Completion < best.Completion {
			t.Fatalf("BestXen(%q) missed %s (%v < %v)", pol, p, r.Completion, best.Completion)
		}
		if p == pol {
			found = true
		}
	}
	if !found {
		t.Fatalf("BestXen returned unknown policy %q", pol)
	}
}

func TestPairConfigsCount(t *testing.T) {
	// The paper evaluates eleven two-VM configurations (§5.4.2).
	if len(Fig8Pairs)+len(Fig9Pairs) != 11 {
		t.Fatalf("pairs = %d + %d, want 11 total", len(Fig8Pairs), len(Fig9Pairs))
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "with|pipe"}},
		Notes:  []string{"note"},
	}
	md := tab.RenderMarkdown()
	for _, want := range []string{"### x: demo", "| a | b |", "| --- | --- |", "with\\|pipe", "*note*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
