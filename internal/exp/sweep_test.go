package exp

import (
	"fmt"
	"strings"
	"testing"
)

// renderSweeps drives all three sweep tables for one cheap app on a
// fresh suite with the given worker count.
func renderSweeps(workers int, seed uint64) string {
	s := NewSuiteParallel(256, workers)
	s.Opt.Seed = seed
	var b strings.Builder
	b.WriteString(PolicySweep(s, "swaptions").Render())
	b.WriteString(BindSweep(s, "swaptions").Render())
	b.WriteString(SeedSweep(s, "swaptions", 2).Render())
	return b.String()
}

// TestSweepsDeterministicAcrossWorkers: the same seed must produce
// byte-identical sweep tables no matter how many workers execute the
// cells. Run with -race to also validate concurrent cell execution.
func TestSweepsDeterministicAcrossWorkers(t *testing.T) {
	want := renderSweeps(1, 7)
	got := renderSweeps(6, 7)
	if got != want {
		t.Fatalf("sweep tables differ across worker counts:\n--- 1 worker ---\n%s--- 6 workers ---\n%s", want, got)
	}
}

// TestPolicySweepCoversRegistry: the policy sweep must have one row per
// registered policy and a Carrefour cell exactly where the descriptor
// allows stacking.
func TestPolicySweepCoversRegistry(t *testing.T) {
	s := NewSuiteParallel(256, 0)
	tab := PolicySweep(s, "swaptions")
	rows := sweepRows()
	if len(tab.Rows) != len(rows) {
		t.Fatalf("sweep has %d rows, registry has %d policies", len(tab.Rows), len(rows))
	}
	for i, r := range rows {
		if tab.Rows[i][0] != r.name {
			t.Errorf("row %d is %q, want %q", i, tab.Rows[i][0], r.name)
		}
		carrefourCell := tab.Rows[i][4]
		if r.carrefour && carrefourCell == "-" {
			t.Errorf("%s: missing carrefour cell", r.name)
		}
		if !r.carrefour && carrefourCell != "-" {
			t.Errorf("%s: carrefour cell %q for an unstackable policy", r.name, carrefourCell)
		}
	}
}

// TestBindSweepCoversEveryNode: one row per node of the machine.
func TestBindSweepCoversEveryNode(t *testing.T) {
	s := NewSuiteParallel(256, 0)
	tab := BindSweep(s, "swaptions")
	if len(tab.Rows) != 8 {
		t.Fatalf("bind sweep has %d rows, want 8 (AMD48 nodes)", len(tab.Rows))
	}
	if tab.Rows[3][0] != "bind:3" {
		t.Fatalf("row 3 is %q, want bind:3", tab.Rows[3][0])
	}
}

// TestSeedSweepWinsSumToSeeds: every seed elects exactly one winner.
func TestSeedSweepWinsSumToSeeds(t *testing.T) {
	s := NewSuiteParallel(256, 0)
	const seeds = 3
	tab := SeedSweep(s, "swaptions", seeds)
	total := 0
	for _, row := range tab.Rows {
		n := 0
		if _, err := fmt.Sscan(row[3], &n); err != nil {
			t.Fatalf("bad wins cell %q: %v", row[3], err)
		}
		total += n
	}
	if total != seeds {
		t.Fatalf("wins sum to %d, want %d", total, seeds)
	}
}

// TestBindSweepDefaultScale: a suite built with the documented zero
// default (NewSuite(0) → run-time scale 64) must sweep without
// panicking in the table layer.
func TestBindSweepDefaultScale(t *testing.T) {
	if testing.Short() {
		t.Skip("8 default-scale cells")
	}
	tab := BindSweep(NewSuite(0), "swaptions")
	if len(tab.Rows) != 8 {
		t.Fatalf("bind sweep has %d rows, want 8", len(tab.Rows))
	}
}

// TestSeedSweepReusesCallerSuite: the first seed is the caller's own,
// so it must be served from the suite's cache — a prior PolicySweep
// makes its cells pure hits. Seed 0 (the documented default, which
// cellSeed normalizes to 1) must reuse too.
func TestSeedSweepReusesCallerSuite(t *testing.T) {
	for _, seed := range []uint64{7, 0} {
		s := NewSuiteParallel(256, 0)
		s.Opt.Seed = seed
		PolicySweep(s, "swaptions")
		before := s.CellsComputed()
		SeedSweep(s, "swaptions", 1)
		if got := s.CellsComputed(); got != before {
			t.Fatalf("seed %d: seed sweep recomputed %d cells the suite already held", seed, got-before)
		}
	}
}
