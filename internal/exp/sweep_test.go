package exp

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
)

// renderSweeps drives all three sweep tables for one cheap app on a
// fresh suite with the given worker count.
func renderSweeps(workers int, seed uint64) string {
	s := NewSuiteParallel(256, workers)
	s.Opt.Seed = seed
	var b strings.Builder
	b.WriteString(PolicySweep(s, "swaptions").Render())
	b.WriteString(BindSweep(s, "swaptions").Render())
	b.WriteString(SeedSweep(s, "swaptions", 2).Render())
	return b.String()
}

// TestSweepsDeterministicAcrossWorkers: the same seed must produce
// byte-identical sweep tables no matter how many workers execute the
// cells. Run with -race to also validate concurrent cell execution.
func TestSweepsDeterministicAcrossWorkers(t *testing.T) {
	want := renderSweeps(1, 7)
	got := renderSweeps(6, 7)
	if got != want {
		t.Fatalf("sweep tables differ across worker counts:\n--- 1 worker ---\n%s--- 6 workers ---\n%s", want, got)
	}
}

// TestPolicySweepCoversRegistry: the policy sweep must have one row per
// registered policy and a Carrefour cell exactly where the descriptor
// allows stacking.
func TestPolicySweepCoversRegistry(t *testing.T) {
	s := NewSuiteParallel(256, 0)
	tab := PolicySweep(s, "swaptions")
	rows := sweepRows()
	if len(tab.Rows) != len(rows) {
		t.Fatalf("sweep has %d rows, registry has %d policies", len(tab.Rows), len(rows))
	}
	for i, r := range rows {
		if tab.Rows[i][0] != r.name {
			t.Errorf("row %d is %q, want %q", i, tab.Rows[i][0], r.name)
		}
		carrefourCell := tab.Rows[i][4]
		if r.carrefour && carrefourCell == "-" {
			t.Errorf("%s: missing carrefour cell", r.name)
		}
		if !r.carrefour && carrefourCell != "-" {
			t.Errorf("%s: carrefour cell %q for an unstackable policy", r.name, carrefourCell)
		}
	}
}

// TestBindSweepCoversEveryNode: one row per node of the machine.
func TestBindSweepCoversEveryNode(t *testing.T) {
	s := NewSuiteParallel(256, 0)
	tab := BindSweep(s, "swaptions")
	if len(tab.Rows) != 8 {
		t.Fatalf("bind sweep has %d rows, want 8 (AMD48 nodes)", len(tab.Rows))
	}
	if tab.Rows[3][0] != "bind:3" {
		t.Fatalf("row 3 is %q, want bind:3", tab.Rows[3][0])
	}
}

// TestSeedSweepWinsSumToSeeds: every seed elects exactly one winner.
func TestSeedSweepWinsSumToSeeds(t *testing.T) {
	s := NewSuiteParallel(256, 0)
	const seeds = 3
	tab := SeedSweep(s, "swaptions", seeds)
	total := 0
	for _, row := range tab.Rows {
		n := 0
		if _, err := fmt.Sscan(row[3], &n); err != nil {
			t.Fatalf("bad wins cell %q: %v", row[3], err)
		}
		total += n
	}
	if total != seeds {
		t.Fatalf("wins sum to %d, want %d", total, seeds)
	}
}

// TestMultiAppSweepBatchesOnOnePool: the …Apps variants must produce
// one table per app (identical to the single-app sweeps) from a single
// prefetch wave on the shared suite.
func TestMultiAppSweepBatchesOnOnePool(t *testing.T) {
	apps := []string{"swaptions", "ep.D"}
	s := NewSuiteParallel(256, 4)
	s.Opt.Seed = 7
	tabs := PolicySweepApps(s, apps)
	if len(tabs) != len(apps) {
		t.Fatalf("got %d tables for %d apps", len(tabs), len(apps))
	}
	want := int64(len(apps) * len(sweepPolicies()))
	if got := s.CellsComputed(); got != want {
		t.Fatalf("multi-app sweep computed %d cells, want %d", got, want)
	}
	for i, app := range apps {
		single := NewSuiteParallel(256, 1)
		single.Opt.Seed = 7
		if got, wantTab := tabs[i].Render(), PolicySweep(single, app).Render(); got != wantTab {
			t.Errorf("%s: multi-app table differs from single-app sweep:\n--- multi ---\n%s--- single ---\n%s",
				app, got, wantTab)
		}
	}
	// Seed sweeps compose with the app batch on the same pool: only the
	// additional seed's cells are new.
	before := s.CellsComputed()
	SeedSweepApps(s, apps, 2)
	extra := int64(len(apps) * len(sweepPolicies()))
	if got := s.CellsComputed(); got != before+extra {
		t.Fatalf("seed sweep over the app batch computed %d new cells, want %d (one extra seed)",
			got-before, extra)
	}
}

// TestBindSweepDefaultScale: a suite built with the documented zero
// default (NewSuite(0) → run-time scale 64) must sweep without
// panicking in the table layer.
func TestBindSweepDefaultScale(t *testing.T) {
	if testing.Short() {
		t.Skip("8 default-scale cells")
	}
	tab := BindSweep(NewSuite(0), "swaptions")
	if len(tab.Rows) != 8 {
		t.Fatalf("bind sweep has %d rows, want 8", len(tab.Rows))
	}
}

// flatResult projects the bit-exact observable fields of a result for
// equality comparison across suites (Stats is a pointer, so the struct
// itself cannot be compared directly).
func flatResult(r engine.Result) [8]float64 {
	return [8]float64{
		float64(r.Completion), float64(r.InitTime), r.Imbalance,
		r.InterconnectLoad, r.Locality, float64(r.Migrated),
		r.Stats.TotalAccesses, r.Stats.RemoteAccesses,
	}
}

// TestSeedSweepSharedScheduler: a seed sweep must compute all
// seeds × policies cells on the caller's own suite — one scheduler, one
// cache — rather than spinning up fresh per-seed suites.
func TestSeedSweepSharedScheduler(t *testing.T) {
	s := NewSuiteParallel(256, 4)
	s.Opt.Seed = 7
	const seeds = 2
	SeedSweep(s, "swaptions", seeds)
	want := int64(seeds * len(sweepPolicies()))
	if got := s.CellsComputed(); got != want {
		t.Fatalf("shared suite computed %d cells, want %d (seeds × policies)", got, want)
	}
	submitted, completed := s.sched.Stats()
	if submitted != want || completed != want {
		t.Fatalf("scheduler ran %d/%d tasks, want %d: per-seed cells not batched on the shared pool",
			submitted, completed, want)
	}
	// Re-reading any seed's cells is pure cache hits.
	SeedSweep(s, "swaptions", seeds)
	if got := s.CellsComputed(); got != want {
		t.Fatalf("second sweep recomputed %d cells", got-want)
	}
}

// TestSeedKeyedCellsMatchFreshSuites is the cross-suite determinism
// check: every (seed, policy) result a shared multi-seed suite serves
// must be bit-identical to the same cell computed by a fresh suite
// dedicated to that seed — across worker counts (the shared suite runs
// wide, the fresh suites serially).
func TestSeedKeyedCellsMatchFreshSuites(t *testing.T) {
	const app = "swaptions"
	const seeds = 2
	shared := NewSuiteParallel(256, 4)
	shared.Opt.Seed = 7
	SeedSweep(shared, app, seeds)
	pols := sweepPolicies()
	for i := 0; i < seeds; i++ {
		seed := uint64(7 + i)
		fresh := NewSuiteParallel(256, 1)
		fresh.Opt.Seed = seed
		for _, pol := range pols {
			fresh.PrefetchXen(app, pol, true)
		}
		fresh.Join()
		for _, pol := range pols {
			got := flatResult(shared.XenSeeded(app, pol, true, seed))
			want := flatResult(fresh.Xen(app, pol, true))
			if got != want {
				t.Errorf("seed %d %s: shared suite %v != fresh suite %v", seed, pol, got, want)
			}
		}
	}
}

// TestSeedSweepReusesCallerSuite: the first seed is the caller's own,
// so it must be served from the suite's cache — a prior PolicySweep
// makes its cells pure hits. Seed 0 (the documented default, which
// cellSeed normalizes to 1) must reuse too.
func TestSeedSweepReusesCallerSuite(t *testing.T) {
	for _, seed := range []uint64{7, 0} {
		s := NewSuiteParallel(256, 0)
		s.Opt.Seed = seed
		PolicySweep(s, "swaptions")
		before := s.CellsComputed()
		SeedSweep(s, "swaptions", 1)
		if got := s.CellsComputed(); got != before {
			t.Fatalf("seed %d: seed sweep recomputed %d cells the suite already held", seed, got-before)
		}
	}
}
