package advisor

import (
	"testing"

	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/policy"
)

// TestRuleMatchesPaper pins the §3.5.2 mapping — the recommendation the
// original policy-advisor example produced per imbalance class.
func TestRuleMatchesPaper(t *testing.T) {
	cases := map[metrics.ImbalanceClass]string{
		metrics.ClassHigh:     "round-4k/carrefour",
		metrics.ClassModerate: "first-touch/carrefour",
		metrics.ClassLow:      "first-touch",
	}
	for class, want := range cases {
		if got := RuleFor(class); got != want {
			t.Errorf("RuleFor(%v) = %q, want %q", class, got, want)
		}
	}
}

// TestCandidatesBoundedByRegistry: the bounded-search property. The
// advisor must never propose a boot-only policy as a runtime choice,
// never stack Carrefour (or a variant) on an unstackable policy, and
// never propose a hypervisor-only policy for the native target.
func TestCandidatesBoundedByRegistry(t *testing.T) {
	for _, target := range []Target{TargetXen, TargetLinux} {
		cands := Candidates(target)
		if len(cands) == 0 {
			t.Fatalf("%v: empty candidate set", target)
		}
		for _, c := range cands {
			cfg, err := policy.Parse(c)
			if err != nil {
				t.Errorf("%v: candidate %q does not parse: %v", target, c, err)
				continue
			}
			d, _, err := policy.Describe(cfg.Static)
			if err != nil {
				t.Errorf("%v: candidate %q unknown to the registry: %v", target, c, err)
				continue
			}
			if d.BootOnly {
				t.Errorf("%v: candidate %q is a boot-only layout", target, c)
			}
			if cfg.Carrefour && !d.Carrefour {
				t.Errorf("%v: candidate %q stacks carrefour on an unstackable policy", target, c)
			}
			if target == TargetLinux && d.Native == nil {
				t.Errorf("linux: candidate %q has no native placer", c)
			}
		}
	}
}

// TestCandidatesIncludeVariantKnobs: the §7 knobs and the adaptive
// policy widen the search space beyond the paper's five policies.
func TestCandidatesIncludeVariantKnobs(t *testing.T) {
	has := func(set []string, want string) bool {
		for _, s := range set {
			if s == want {
				return true
			}
		}
		return false
	}
	cands := Candidates(TargetXen)
	for _, want := range []string{
		"adaptive", "adaptive/carrefour",
		"first-touch/carrefour:migration",
		"round-4k/carrefour:replication",
	} {
		if !has(cands, want) {
			t.Errorf("candidates missing %q", want)
		}
	}
	if has(cands, "round-1g") || has(cands, "round-1g/carrefour") {
		t.Error("candidates include the boot-only round-1G")
	}
}

// TestAdviseProposesACandidate: the advised policy is always inside the
// bounded set, for every imbalance class the probe can produce.
func TestAdviseProposesACandidate(t *testing.T) {
	for _, class := range []metrics.ImbalanceClass{
		metrics.ClassLow, metrics.ClassModerate, metrics.ClassHigh,
	} {
		advice := RuleFor(class)
		found := false
		for _, c := range Candidates(TargetXen) {
			if c == advice {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("advice %q for class %v is outside the candidate set", advice, class)
		}
	}
}

// TestAdviseEndToEnd runs a real probe on a scaled-down suite and
// validates the advice against the full bounded sweep; the gap must be
// finite and the best policy a candidate.
func TestAdviseEndToEnd(t *testing.T) {
	s := exp.NewSuite(256)
	Prefetch(s, TargetXen, "swaptions")
	s.Join()
	rec := Advise(s, TargetXen, "swaptions")
	if rec.Policy != RuleFor(rec.Class) {
		t.Fatalf("recommendation %q does not follow the rule for class %v", rec.Policy, rec.Class)
	}
	val := Validate(s, rec)
	if val.Gap < 0 {
		t.Fatalf("advice gap %f < 0: best policy missed by the sweep", val.Gap)
	}
	found := false
	for _, c := range rec.Candidates {
		if c == val.Best {
			found = true
		}
	}
	if !found {
		t.Fatalf("sweep best %q is not a candidate", val.Best)
	}
}

// TestAdviseDefaultAppsUnchanged pins the recommendation for the five
// applications the policy-advisor example defaults to — the library
// must return exactly what the pre-library example printed (§3.5.2
// probe at the default scale and seed).
func TestAdviseDefaultAppsUnchanged(t *testing.T) {
	want := map[string]string{
		"facesim": "round-4k/carrefour",
		"bt.C":    "first-touch/carrefour",
		"cg.C":    "first-touch",
		"kmeans":  "round-4k/carrefour",
		"mg.D":    "first-touch",
	}
	s := exp.NewSuite(64)
	for app := range want {
		s.PrefetchXen(app, "first-touch", true)
	}
	s.Join()
	for app, pol := range want {
		if rec := Advise(s, TargetXen, app); rec.Policy != pol {
			t.Errorf("Advise(%s) = %q (class %v, imbalance %.0f%%), want %q",
				app, rec.Policy, rec.Class, rec.Imbalance, pol)
		}
	}
}
