// Package advisor promotes the policy-selection rule of the paper's
// §3.5.2 into a library: run a cheap first-touch probe, classify the
// application's memory-access imbalance (metrics.Classify), and map the
// class to a policy — high → round-4K/Carrefour, moderate →
// first-touch/Carrefour, low → first-touch. The paper measures this
// rule at a 1–2 % average loss over its five policies and closes by
// noting that automatic in-hypervisor selection "remains an open
// subject" (§7); Validate quantifies exactly that gap against an
// exhaustive sweep over a candidate set bounded by the policy
// registry's metadata (never a boot-only layout as a runtime choice,
// Carrefour only where it stacks, native-capable policies only for
// native targets).
package advisor

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Target selects the platform a recommendation is for.
type Target int

const (
	// TargetXen advises a policy for a VM under Xen+ (selected at run
	// time through HypercallSetPolicy, so boot-only layouts are out).
	TargetXen Target = iota
	// TargetLinux advises a native-Linux policy (only kinds with a
	// registered native placer exist there).
	TargetLinux
)

func (t Target) String() string {
	if t == TargetLinux {
		return "linux"
	}
	return "xen"
}

// probePolicy is the cheap profiling run the rule classifies: one
// first-touch execution, as in §3.5.2.
const probePolicy = "first-touch"

// DefaultApps is the demonstration set spanning the three imbalance
// classes, shared by `xnuma advise` and examples/policy-advisor.
var DefaultApps = []string{"facesim", "bt.C", "cg.C", "kmeans", "mg.D"}

// RuleFor maps an imbalance class to the §3.5.2 policy choice. It is
// the whole rule: everything else in this package is probing, bounding
// and validating.
func RuleFor(class metrics.ImbalanceClass) string {
	switch class {
	case metrics.ClassHigh:
		return "round-4k/carrefour"
	case metrics.ClassModerate:
		return "first-touch/carrefour"
	default:
		return "first-touch"
	}
}

// Candidates returns the policies the advisor may propose or validate
// against for target, bounded by registry metadata instead of a
// hard-coded list:
//
//   - boot-only layouts (round-1G) are excluded — the advisor's output
//     is applied to a running VM through the SetPolicy hypercall, which
//     rejects them (§4.2.1);
//   - Carrefour-stacked variants (including the §7 migration-only and
//     replication-only knobs) appear only where the descriptor allows
//     stacking;
//   - for TargetLinux, only kinds with a native placer qualify.
//
// Parameterized kinds are instantiated with their default argument.
func Candidates(target Target) []string {
	var out []string
	for _, d := range policy.List() {
		if d.BootOnly {
			continue
		}
		if target == TargetLinux && d.Native == nil {
			continue
		}
		name := d.DefaultSpelling()
		out = append(out, name)
		if d.Carrefour {
			out = append(out, name+"/carrefour",
				name+"/carrefour:"+policy.CarrefourMigrationOnly,
				name+"/carrefour:"+policy.CarrefourReplicationOnly)
		}
	}
	return out
}

// Recommendation is the advisor's output for one application.
type Recommendation struct {
	App    string
	Target Target
	// Imbalance is the probe run's memory-access imbalance (%).
	Imbalance float64
	// Class is the paper's three-way classification of the probe.
	Class metrics.ImbalanceClass
	// Policy is the advised configuration (RuleFor applied to Class).
	Policy string
	// Candidates is the registry-bounded set Validate sweeps.
	Candidates []string
}

// Prefetch schedules everything Advise and Validate read for app — the
// probe cell and the full candidate sweep — on the suite's worker pool.
// Call it for every application of interest, then let Advise/Validate
// hit the warmed cache.
func Prefetch(s *exp.Suite, target Target, app string) {
	pols := Candidates(target)
	// The probe is normally itself a candidate (first-touch is
	// runtime-selectable everywhere); submit it separately only when it
	// is not, or the duplicate task would idle a worker slot on the
	// first submission's singleflight completion.
	probeCovered := false
	for _, pol := range pols {
		if pol == probePolicy {
			probeCovered = true
			break
		}
	}
	if !probeCovered {
		prefetchCell(s, target, app, probePolicy)
	}
	for _, pol := range pols {
		prefetchCell(s, target, app, pol)
	}
}

func prefetchCell(s *exp.Suite, target Target, app, pol string) {
	if target == TargetLinux {
		s.PrefetchLinux(app, pol, true)
		return
	}
	s.PrefetchXen(app, pol, true)
}

func cell(s *exp.Suite, target Target, app, pol string) engine.Result {
	if target == TargetLinux {
		return s.Linux(app, pol, true)
	}
	return s.Xen(app, pol, true)
}

// Advise runs the probe for app on the suite (a cache hit after
// Prefetch) and applies the rule. The returned recommendation always
// proposes a member of Candidates(target).
func Advise(s *exp.Suite, target Target, app string) Recommendation {
	probe := cell(s, target, app, probePolicy)
	class := metrics.Classify(probe.Imbalance)
	return Recommendation{
		App:        app,
		Target:     target,
		Imbalance:  probe.Imbalance,
		Class:      class,
		Policy:     RuleFor(class),
		Candidates: Candidates(target),
	}
}

// Validation measures a recommendation against the exhaustive sweep of
// its candidate set.
type Validation struct {
	// Best is the candidate minimizing completion, and its time.
	Best           string
	BestCompletion sim.Time
	// AdvisedCompletion is the advised policy's time.
	AdvisedCompletion sim.Time
	// Gap is the relative loss of following the advice instead of the
	// sweep's best (0 = the advice was optimal; the paper reports 1–2 %
	// for this rule over its five policies).
	Gap float64
}

// Validate sweeps rec's candidate set (cache hits after Prefetch) and
// returns the advice gap.
func Validate(s *exp.Suite, rec Recommendation) Validation {
	best, bestRes := "", engine.Result{}
	for _, pol := range rec.Candidates {
		r := cell(s, rec.Target, rec.App, pol)
		if best == "" || r.Completion < bestRes.Completion {
			best, bestRes = pol, r
		}
	}
	advised := cell(s, rec.Target, rec.App, rec.Policy)
	return Validation{
		Best:              best,
		BestCompletion:    bestRes.Completion,
		AdvisedCompletion: advised.Completion,
		Gap:               float64(advised.Completion)/float64(bestRes.Completion) - 1,
	}
}

// Table renders advisor output for several applications as an
// experiment-style table: probe, class, advice, sweep best and gap per
// row. It prefetches every cell up front and joins once.
func Table(s *exp.Suite, target Target, apps []string) *exp.Table {
	for _, app := range apps {
		Prefetch(s, target, app)
	}
	s.Join()
	t := &exp.Table{
		ID:     "advise",
		Title:  fmt.Sprintf("Policy advice (§3.5.2 rule) vs exhaustive sweep, %s target", target),
		Header: []string{"app", "imbalance", "class", "advised", "best (sweep)", "advice gap"},
	}
	for _, app := range apps {
		rec := Advise(s, target, app)
		val := Validate(s, rec)
		t.Rows = append(t.Rows, []string{
			app, fmt.Sprintf("%.0f%%", rec.Imbalance), rec.Class.String(),
			rec.Policy, val.Best, fmt.Sprintf("%+.0f%%", 100*val.Gap)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("candidate set: %d policies bounded by registry metadata", len(Candidates(target))),
		"gap = advised completion vs the sweep's best; the paper measures 1-2% average loss for this rule over its five policies (§3.5.2)")
	return t
}
