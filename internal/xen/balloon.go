package xen

import (
	"fmt"

	"repro/internal/mem"
)

// Balloon is the classical memory-ballooning driver, implemented here to
// demonstrate why the paper could NOT use it to learn about guest page
// releases (§4.2.3): a page inflated into the balloon is surrendered to
// the hypervisor — its frame is freed for other domains and the guest
// may no longer use the physical page at all. The first-touch policy
// instead needs the guest to keep free pages reallocatable at any time,
// which is exactly what the page-queue hypercall provides.
type Balloon struct {
	dom *Domain
	// inflated tracks pages currently surrendered.
	inflated map[mem.PFN]bool
}

// NewBalloon attaches a balloon driver to dom.
func NewBalloon(dom *Domain) *Balloon {
	return &Balloon{dom: dom, inflated: make(map[mem.PFN]bool)}
}

// Inflate surrenders a guest physical page: its hypervisor page-table
// entry is invalidated and the machine frame returned to the machine
// allocator for other domains.
func (b *Balloon) Inflate(pfn mem.PFN) error {
	if b.inflated[pfn] {
		return fmt.Errorf("xen: page %d already in the balloon", pfn)
	}
	if _, ok := b.dom.NodeOfPFN(pfn); !ok {
		return fmt.Errorf("xen: page %d not populated", pfn)
	}
	b.dom.InvalidatePage(pfn)
	b.inflated[pfn] = true
	return nil
}

// Deflate reclaims a ballooned page: the hypervisor populates it with a
// fresh frame (from the domain's home nodes) and the guest may use it
// again. This is the only way back — and it requires a hypercall and a
// frame allocation, which is why a guest cannot treat ballooned pages as
// an ordinary free list.
func (b *Balloon) Deflate(pfn mem.PFN) error {
	if !b.inflated[pfn] {
		return fmt.Errorf("xen: page %d not in the balloon", pfn)
	}
	mfn, err := b.dom.AllocFrameOn(b.dom.homes[0])
	if err != nil {
		return fmt.Errorf("xen: deflating page %d: %w", pfn, err)
	}
	b.dom.MapPage(pfn, mfn)
	delete(b.inflated, pfn)
	return nil
}

// Held reports whether pfn is currently surrendered. A guest allocator
// consulting only its own free list would hand such a page to a process
// and fault forever — the structural inadequacy the paper points out.
func (b *Balloon) Held(pfn mem.PFN) bool { return b.inflated[pfn] }

// Size reports the number of ballooned pages.
func (b *Balloon) Size() int { return len(b.inflated) }
