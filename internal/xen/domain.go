package xen

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/policy"
	"repro/internal/pt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// VCPU is one virtual CPU pinned to a physical CPU. The evaluation pins
// every vCPU (§5.4.1), so the model has no vCPU migration; consolidated
// setups simply pin several vCPUs to one physical CPU.
type VCPU struct {
	ID   int
	PCPU numa.CPUID
}

// Domain is one virtual machine.
type Domain struct {
	ID    DomID
	Name  string
	VCPUs []VCPU

	hv        *Hypervisor
	table     *pt.HypervisorTable
	homes     []numa.NodeID
	physPages uint64

	bootKind policy.Kind
	// bootPlacer is the boot layout's eager placement hook (nil for
	// lazily booted domains: every entry starts invalid and the first
	// access faults into the runtime policy).
	bootPlacer policy.BootPlacer
	cfg        policy.Config
	pol        policy.Policy
	// CarrefourHook, when non-nil, receives page-queue batches so the
	// dynamic policy can track page liveness. Set by package carrefour.
	CarrefourHook func(ops []policy.PageOp)

	// grants is the domain's grant table (nil until NewGrantTable);
	// pinned counts outstanding grant mappings per page — pinned pages
	// cannot be migrated or invalidated while a DMA may target them.
	grants *GrantTable
	pinned map[mem.PFN]int

	// frames tracks every machine allocation backing this domain so the
	// memory can be returned on destroy. Blocks allocated at order > 0
	// (round-1G regions) are recorded once.
	frames []frameAlloc
	// frameOf mirrors the hypervisor table for 4 KiB-grained ownership:
	// pages individually invalidated/remapped by first-touch or
	// migration are tracked here so releaseFrames does not double-free.
	ownedPages map[mem.PFN]mem.MFN

	// Observers used by the workload engine to keep per-region node
	// histograms in sync with the hypervisor page table.
	OnPlace      func(pfn mem.PFN, node numa.NodeID)
	OnInvalidate func(pfn mem.PFN)

	// Per-domain counters.
	Faults        uint64
	FaultTime     sim.Time
	Hypercalls    uint64
	HypercallTime sim.Time
	Migrated      uint64
	Invalidated   uint64

	// nextAllocNode implements the round-robin fallback of first-touch
	// when the preferred node is full.
	nextAllocNode int

	// passthrough reports whether the PCI passthrough driver is active
	// for this domain's I/O (requires the machine IOMMU and a policy
	// other than first-touch, §4.4.1).
	passthrough bool

	// accessor is the node of the vCPU performing the current access;
	// it parameterizes the fault handler during Translate.
	accessor numa.NodeID
}

type frameAlloc struct {
	mfn   mem.MFN
	order int
}

func newDomain(h *Hypervisor, id DomID, spec DomainSpec, pins []numa.CPUID, boot policy.BootPlacer, pol policy.Policy) *Domain {
	// A recycled shell (left behind by Hypervisor.Reset) carries the
	// previous domain's map buckets and slice capacities; refilling it
	// is bit-for-bit equivalent to a cold build, minus the allocation
	// and rehash work.
	d := h.takeShell()
	if d == nil {
		d = &Domain{
			table:      pt.NewHypervisorTable(),
			ownedPages: make(map[mem.PFN]mem.MFN),
			pinned:     make(map[mem.PFN]int),
		}
	}
	d.ID = id
	d.Name = spec.Name
	d.hv = h
	d.physPages = uint64(spec.MemBytes) / mem.PageSize
	d.bootKind = spec.Boot
	d.bootPlacer = boot
	d.cfg = policy.Config{Static: spec.Boot}
	d.pol = pol
	for i, c := range pins {
		d.VCPUs = append(d.VCPUs, VCPU{ID: i, PCPU: c})
	}
	for _, c := range pins {
		n := h.Topo.NodeOf(c)
		found := false
		for _, home := range d.homes {
			if home == n {
				found = true
				break
			}
		}
		if !found {
			d.homes = append(d.homes, n)
		}
	}
	// A lazily booted domain starts with every entry invalid; the IOMMU
	// cannot resolve invalid entries (§4.4.1), so passthrough is off
	// from the start.
	d.passthrough = h.Cfg.IOMMU && boot != nil
	d.table.SetFaultHandler(func(pfn mem.PFN, write bool, kind pt.FaultKind) {
		d.pol.HandleFault(d, pfn, d.accessor, kind)
	})
	return d
}

// recycleShell strips a domain down to its reusable storage — page-table
// buckets, ownership maps, slice capacities — and clears everything
// else, so newDomain can refill it exactly as it fills a zero literal.
// The domain's frames are NOT returned to the allocator: recycling
// happens only from Hypervisor.Reset, which restores the whole
// allocator to pristine shape wholesale.
func (d *Domain) recycleShell() {
	d.table.Reset()
	clear(d.ownedPages)
	clear(d.pinned)
	d.frames = d.frames[:0]
	d.VCPUs = d.VCPUs[:0]
	d.homes = d.homes[:0]
	d.grants = nil
	d.CarrefourHook = nil
	d.OnPlace, d.OnInvalidate = nil, nil
	d.bootPlacer, d.pol = nil, nil
	d.Faults, d.FaultTime = 0, 0
	d.Hypercalls, d.HypercallTime = 0, 0
	d.Migrated, d.Invalidated = 0, 0
	d.nextAllocNode = 0
	d.passthrough = false
	d.accessor = 0
	d.hv = nil
	d.ID, d.Name = 0, ""
	d.physPages = 0
	d.bootKind = ""
	d.cfg = policy.Config{}
}

// populate eagerly builds the physical address space through the boot
// layout's placement hook; lazily booted domains place nothing here.
func (d *Domain) populate() error {
	if d.bootPlacer == nil {
		return nil
	}
	return d.bootPlacer(d)
}

// releaseFrames returns all machine memory to the allocator. Frames are
// freed in ascending PFN order: each Free reshapes the buddy free
// lists, so freeing in map order would leave the allocator in a
// run-dependent state and make every allocation after a domain destroy
// nondeterministic.
func (d *Domain) releaseFrames() {
	for _, f := range d.frames {
		d.hv.Alloc.Free(f.mfn, f.order)
	}
	d.frames = nil
	pfns := make([]mem.PFN, 0, len(d.ownedPages))
	for pfn := range d.ownedPages {
		pfns = append(pfns, pfn)
	}
	sort.Slice(pfns, func(i, j int) bool { return pfns[i] < pfns[j] })
	for _, pfn := range pfns {
		d.hv.Alloc.Free(d.ownedPages[pfn], mem.Order4K)
		delete(d.ownedPages, pfn)
	}
}

// --- policy.DomainOps (the internal interface, §4.1) ---

// HomeNodes returns the domain's home nodes.
func (d *Domain) HomeNodes() []numa.NodeID { return d.homes }

// Table returns the domain's hypervisor page table.
func (d *Domain) Table() *pt.HypervisorTable { return d.table }

// AllocFrameOn allocates a 4 KiB machine frame on node, falling back
// round-robin to the home nodes then to every node, mirroring Linux's
// behaviour when the preferred bank is full (§3.1).
func (d *Domain) AllocFrameOn(node numa.NodeID) (mem.MFN, error) {
	if mfn, err := d.hv.Alloc.Alloc(node, mem.Order4K); err == nil {
		return mfn, nil
	}
	for range d.homes {
		n := d.homes[d.nextAllocNode%len(d.homes)]
		d.nextAllocNode++
		if n == node {
			continue
		}
		if mfn, err := d.hv.Alloc.Alloc(n, mem.Order4K); err == nil {
			return mfn, nil
		}
	}
	for i := 0; i < d.hv.Topo.NumNodes(); i++ {
		n := numa.NodeID(i)
		if mfn, err := d.hv.Alloc.Alloc(n, mem.Order4K); err == nil {
			return mfn, nil
		}
	}
	return mem.NoMFN, fmt.Errorf("xen: machine out of memory: %w", mem.ErrNoMemory)
}

// FreeFrame returns one 4 KiB frame.
func (d *Domain) FreeFrame(mfn mem.MFN) { d.hv.Alloc.Free(mfn, mem.Order4K) }

// NodeOfFrame maps a frame to its node.
func (d *Domain) NodeOfFrame(mfn mem.MFN) numa.NodeID { return d.hv.Alloc.NodeOf(mfn) }

// NodeFreeBytes reports the free machine memory on node, for
// load-aware policies.
func (d *Domain) NodeFreeBytes(node numa.NodeID) int64 { return d.hv.Alloc.FreeBytes(node) }

// --- policy.BootOps (eager boot placement) ---

// RegionOrders returns the hypervisor's scaled huge and mid region
// orders.
func (d *Domain) RegionOrders() (huge, mid int) { return d.hv.Cfg.HugeOrder, d.hv.Cfg.MidOrder }

// AllocRegion allocates one 2^order block on node, without fallback.
func (d *Domain) AllocRegion(node numa.NodeID, order int) (mem.MFN, error) {
	return d.hv.Alloc.Alloc(node, order)
}

// MapRegion maps the 2^order frames of block phys-contiguously starting
// at base. The block is recorded as a single allocation, so releaseFrames
// returns it whole; pages inside it individually invalidated later stay
// owned by the block record (see InvalidatePage).
func (d *Domain) MapRegion(base mem.PFN, block mem.MFN, order int) {
	d.frames = append(d.frames, frameAlloc{mfn: block, order: order})
	for i := uint64(0); i < mem.FramesOf(order); i++ {
		d.table.Map(base+mem.PFN(i), block+mem.MFN(i))
	}
}

// MapPage installs pfn→mfn, records ownership at page granularity and
// notifies the placement observer.
func (d *Domain) MapPage(pfn mem.PFN, mfn mem.MFN) {
	d.table.Map(pfn, mfn)
	d.ownedPages[pfn] = mfn
	if d.OnPlace != nil {
		d.OnPlace(pfn, d.hv.Alloc.NodeOf(mfn))
	}
}

// InvalidatePage clears pfn's entry and frees its frame; the next access
// faults into the policy. Part of the first-touch implementation.
func (d *Domain) InvalidatePage(pfn mem.PFN) {
	if d.pinned[pfn] > 0 {
		// A DMA may target this page through an outstanding grant
		// mapping; invalidating it would abort the transfer through the
		// IOMMU (§4.4.1). Leave it mapped.
		return
	}
	old := d.table.Invalidate(pfn)
	if old == mem.NoMFN {
		return
	}
	d.Invalidated++
	d.hv.EntriesFlushed++
	if _, owned := d.ownedPages[pfn]; owned {
		delete(d.ownedPages, pfn)
		d.hv.Alloc.Free(old, mem.Order4K)
	}
	// Frames inside eager blocks (round-1G/round-4K boot regions) stay
	// owned by the block record; they are reused only after the block is
	// torn down. This wastes the frame but never double-frees — and is
	// exactly why the paper boots first-touch domains with round-4K.
	if d.OnInvalidate != nil {
		d.OnInvalidate(pfn)
	}
}

// MigratePage implements the second function of the internal interface:
// write-protect the entry, copy the page, remap it on the target node and
// free the old frame (§4.1). It reports whether the page moved.
func (d *Domain) MigratePage(pfn mem.PFN, to numa.NodeID) bool {
	if d.pinned[pfn] > 0 {
		return false // granted I/O buffer: the frame must not move
	}
	e := d.table.Lookup(pfn)
	if !e.Valid {
		return false
	}
	if d.hv.Alloc.NodeOf(e.MFN) == to {
		return false
	}
	newMFN, err := d.hv.Alloc.Alloc(to, mem.Order4K)
	if err != nil {
		return false // target node full: leave the page where it is
	}
	d.table.WriteProtect(pfn)
	// Copy happens here; the time cost is charged by the caller through
	// CostMigratePage, the traffic through the load accumulator.
	d.table.Map(pfn, newMFN)
	if old, owned := d.ownedPages[pfn]; owned {
		d.hv.Alloc.Free(old, mem.Order4K)
	}
	d.ownedPages[pfn] = newMFN
	d.Migrated++
	d.hv.PagesMigrated++
	d.hv.MigrationTime += CostMigratePage
	d.hv.Trace.Record(trace.Event{
		Time: d.hv.Eng.Now(), Kind: trace.KindMigrate, Dom: int(d.ID),
		Arg0: uint64(pfn), Arg1: uint64(to),
	})
	if d.OnPlace != nil {
		d.OnPlace(pfn, to)
	}
	return true
}

// --- guest-facing operations ---

// Policy returns the active policy configuration.
func (d *Domain) Policy() policy.Config { return d.cfg }

// Passthrough reports whether the PCI passthrough driver is active.
func (d *Domain) Passthrough() bool { return d.passthrough }

// PhysPages returns the size of the physical address space in pages.
func (d *Domain) PhysPages() uint64 { return d.physPages }

// NodeOfPCPU returns the node of vCPU v's physical CPU.
func (d *Domain) NodeOfPCPU(v int) numa.NodeID {
	return d.hv.Topo.NodeOf(d.VCPUs[v].PCPU)
}

// HypercallSetPolicy is the first hypercall of the external interface
// (§4.2.1): switch the static policy and/or toggle Carrefour. The
// target policy is resolved through the registry; boot-only layouts
// (round-1G) are rejected at run time, as in the paper. The returned
// duration is the cost charged to the calling vCPU.
//
// The Carrefour fields (on/off and variant) recorded here are the
// domain's guest-visible configuration; the simulation's Carrefour
// controller itself is configured per engine.Instance at build time,
// so — like toggling Carrefour — changing the variant mid-run updates
// Policy() and traces but not an already-running engine's sampler.
func (d *Domain) HypercallSetPolicy(cfg policy.Config) (sim.Time, error) {
	cost := CostHypercall
	d.Hypercalls++
	d.hv.Hypercalls++
	// Canonicalize so aliases and case variants ("ft", "BIND:03")
	// compare equal to the stored boot/current kinds.
	desc, arg, canon, err := policy.Resolve(cfg.Static)
	if err != nil {
		return cost, fmt.Errorf("xen: %w", err)
	}
	cfg.Static = canon
	if desc.BootOnly && d.bootKind != cfg.Static {
		return cost, fmt.Errorf("xen: %s is a boot option, not a runtime policy (§4.2.1)", cfg.Static)
	}
	// Config-shape rules (Carrefour stackability, variant validity) are
	// the registry's; only the boot-kind check above is domain-specific.
	if err := policy.CheckConfig(cfg); err != nil {
		return cost, fmt.Errorf("xen: %w", err)
	}
	// Build the new policy before any state changes: a rejected switch
	// must leave the domain untouched (in particular its passthrough
	// driver).
	var pol policy.Policy
	if cfg.Static != d.cfg.Static {
		pol, err = desc.New(arg, d.hv.Topo.NumNodes())
		if err != nil {
			return cost, fmt.Errorf("xen: %w", err)
		}
	}
	if desc.UsesPageQueue && d.hv.Cfg.IOMMU && d.passthrough {
		// §4.4.1: the IOMMU cannot resolve invalid entries, so the
		// passthrough driver must be disabled for entry-invalidating
		// policies.
		d.passthrough = false
		d.hv.PassthroughOffs++
	}
	if pol != nil {
		d.pol = pol
	}
	d.cfg = cfg
	d.HypercallTime += cost
	d.hv.HypercallTime += cost
	d.hv.Trace.Record(trace.Event{
		Time: d.hv.Eng.Now(), Kind: trace.KindPolicySwitch, Dom: int(d.ID),
		Arg0: uint64(policy.IndexOf(cfg.Static)),
	})
	return cost, nil
}

// HypercallPageQueue is the second hypercall of the external interface
// (§4.2.3): deliver one batched queue of page allocations and releases.
// The returned duration is the hypercall's cost, dominated by entry
// invalidation (§4.2.4).
func (d *Domain) HypercallPageQueue(ops []policy.PageOp) sim.Time {
	d.Hypercalls++
	d.hv.Hypercalls++
	invalidated := d.pol.OnPageQueue(d, ops)
	if d.CarrefourHook != nil {
		d.CarrefourHook(ops)
	}
	cost := CostHypercall + CostQueueSend + sim.Time(invalidated)*CostInvalidateEntry
	d.HypercallTime += cost
	d.hv.HypercallTime += cost
	d.hv.Trace.Record(trace.Event{
		Time: d.hv.Eng.Now(), Kind: trace.KindHypercall, Dom: int(d.ID),
		Arg0: uint64(len(ops)), Arg1: uint64(invalidated),
	})
	return cost
}

// Touch simulates one guest access to a physical page by a vCPU whose
// physical CPU sits on accessor. It resolves hypervisor faults through
// the active policy and returns the backing frame's node plus the time
// spent in the hypervisor (zero on the fast path).
func (d *Domain) Touch(pfn mem.PFN, accessor numa.NodeID, write bool) (numa.NodeID, sim.Time) {
	if pfn >= mem.PFN(d.physPages) {
		panic(fmt.Sprintf("xen: domain %q touching PFN %d beyond %d pages", d.Name, pfn, d.physPages))
	}
	before := d.table.Faults + d.table.WriteProtFaults
	d.accessor = accessor
	mfn := d.table.Translate(pfn, write)
	faults := d.table.Faults + d.table.WriteProtFaults - before
	var cost sim.Time
	if faults > 0 {
		cost = sim.Time(faults) * (CostHVFault + CostFrameAlloc)
		d.Faults += faults
		d.hv.PageFaults += faults
		d.FaultTime += cost
		d.hv.FaultTime += cost
		d.hv.Trace.Record(trace.Event{
			Time: d.hv.Eng.Now(), Kind: trace.KindFault, Dom: int(d.ID),
			Arg0: uint64(pfn), Arg1: uint64(accessor),
		})
	}
	return d.hv.Alloc.NodeOf(mfn), cost
}

// NodeOfPFN returns the node currently backing pfn without faulting;
// ok is false when the entry is invalid.
func (d *Domain) NodeOfPFN(pfn mem.PFN) (numa.NodeID, bool) {
	mfn, ok := d.table.TranslateNoFault(pfn)
	if !ok {
		return 0, false
	}
	return d.hv.Alloc.NodeOf(mfn), true
}
