package xen

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/policy"
	"repro/internal/sim"
)

// postDestroyAllocSequence boots a hypervisor, creates and destroys a
// 4K-mapped domain, then records the machine-frame sequence the buddy
// allocator hands out afterwards. Destroying the domain frees every
// owned page, and each Free reshapes the buddy free lists — so the
// recorded sequence is a fingerprint of the order releaseFrames walked
// ownedPages in.
func postDestroyAllocSequence(t *testing.T) []mem.MFN {
	t.Helper()
	topo := numa.SmallMachine(4, 4, 64<<20)
	hv, err := New(topo, sim.NewEngine(), Config{HugeOrder: 10, MidOrder: 3}, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	d, err := hv.CreateDomain(DomainSpec{
		Name: "victim", VCPUs: 4, MemBytes: 16 << 20,
		PinCPUs: []numa.CPUID{0, 4, 8, 12},
		Boot:    policy.Round4K,
	})
	if err != nil {
		t.Fatal(err)
	}
	hv.DestroyDomain(d.ID)

	var seq []mem.MFN
	for node := numa.NodeID(0); node < 4; node++ {
		for i := 0; i < 64; i++ {
			mfn, err := hv.Alloc.Alloc(node, mem.Order4K)
			if err != nil {
				t.Fatalf("post-destroy alloc on node %d: %v", node, err)
			}
			seq = append(seq, mfn)
		}
	}
	return seq
}

// TestDestroyDomainDeterministic is the regression test for the
// releaseFrames map-order bug found by the maporder analyzer: freeing
// ownedPages in map iteration order left the buddy allocator in a
// run-dependent state, so every allocation after a domain destroy was
// nondeterministic. Two identical runs must now hand out identical
// frame sequences.
func TestDestroyDomainDeterministic(t *testing.T) {
	a := postDestroyAllocSequence(t)
	b := postDestroyAllocSequence(t)
	if len(a) != len(b) {
		t.Fatalf("sequence lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("post-destroy allocation %d differs between identical runs: %d vs %d", i, a[i], b[i])
		}
	}
}
