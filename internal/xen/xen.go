// Package xen models the hypervisor: domain lifecycle (dom0 and domU),
// vCPU placement with home-node packing, the eager memory allocation of
// the round-1G default policy, the hypervisor page table per domain, the
// two hypercalls of the paper's external interface, and the
// write-protect → copy → remap page-migration mechanism of the internal
// interface.
package xen

import (
	"fmt"
	"sort"

	"repro/internal/faultinject"
	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fiReplay is the fault site at the dom0 frame replay of Reset: an
// injected fault stands in for a replay divergence, so the warm pool's
// drop-and-cold-build degradation is testable on demand.
var fiReplay = faultinject.Register("xen.replay")

// DomID identifies a domain. Dom0 is always domain 0.
type DomID int

// Config tunes the hypervisor for a (possibly scaled-down) machine.
type Config struct {
	// HugeOrder is the buddy order of the "1 GiB" allocation regions of
	// the round-1G policy. On a full-size machine this is mem.Order1G;
	// scaled-down simulations shrink it in lockstep with the node bank
	// size so the policy keeps its shape.
	HugeOrder int
	// MidOrder is the order of the "2 MiB" fallback regions.
	MidOrder int
	// IOMMU reports whether the machine's IOMMU is enabled. The PCI
	// passthrough driver needs it; the first-touch policy is
	// incompatible with it (§4.4.1), so selecting first-touch on a
	// domain force-disables passthrough for that domain.
	IOMMU bool
}

// DefaultConfig returns the configuration for the unscaled AMD48.
func DefaultConfig() Config {
	return Config{HugeOrder: mem.Order1G, MidOrder: mem.Order2M, IOMMU: true}
}

// ScaledConfig shrinks the region orders by log2(scale) to match a
// machine whose node banks were divided by scale. Scale must be a power
// of two between 1 and 512.
func ScaledConfig(scale int) Config {
	shift := 0
	for s := scale; s > 1; s >>= 1 {
		if s%2 != 0 {
			panic(fmt.Sprintf("xen: scale %d is not a power of two", scale))
		}
		shift++
	}
	if shift > 9 {
		panic(fmt.Sprintf("xen: scale %d too large", scale))
	}
	cfg := DefaultConfig()
	cfg.HugeOrder -= shift
	cfg.MidOrder -= shift
	if cfg.MidOrder < 0 {
		cfg.MidOrder = 0
	}
	return cfg
}

// Cost model of hypervisor operations, in virtual time. The page-queue
// costs are chosen so that a full 64-entry batch spends 87.5 % of its
// time invalidating entries and 12.5 % sending the queue, the split the
// paper measures in §4.2.4.
const (
	// CostHypercall is the fixed world-switch cost of any hypercall
	// (guest → hypervisor → guest).
	CostHypercall = 1 * sim.Microsecond
	// CostQueueSend is the cost of transferring one page-queue batch to
	// the hypervisor, excluding per-entry processing.
	CostQueueSend = 2200 * sim.Nanosecond
	// CostInvalidateEntry is the per-page cost of invalidating a
	// hypervisor page-table entry (locking, PTE clear, TLB shootdown
	// share). 64 entries × 350 ns = 22.4 µs vs 3.2 µs of send+hypercall:
	// 87.5 % / 12.5 %.
	CostInvalidateEntry = 350 * sim.Nanosecond
	// CostHVFault is a hypervisor page fault round trip (VM exit,
	// walk, resolve, VM entry), excluding frame allocation.
	CostHVFault = 1500 * sim.Nanosecond
	// CostFrameAlloc is one buddy allocation inside the hypervisor.
	CostFrameAlloc = 300 * sim.Nanosecond
	// CostMigratePage is the fixed cost of migrating one page
	// (write-protect, 4 KiB copy, remap, TLB shootdown), excluding the
	// interconnect traffic it induces (charged by the caller).
	CostMigratePage = 6 * sim.Microsecond
)

// Hypervisor owns the machine.
type Hypervisor struct {
	Topo  *numa.Topology
	Alloc *mem.Allocator
	Eng   *sim.Engine
	Cfg   Config

	// Trace, when non-nil, records hypercalls, faults, migrations and
	// policy switches.
	Trace *trace.Ring

	domains map[DomID]*Domain
	nextID  DomID
	// cpuUse counts vCPUs assigned to each physical CPU (several in
	// consolidated setups).
	cpuUse []int

	// shells holds stripped domain carcasses left behind by Reset;
	// newDomain pops one instead of allocating fresh page tables and
	// ownership maps. Empty outside warm-pool use, so cold-build paths
	// are untouched.
	shells []*Domain

	// Counters.
	Hypercalls      uint64
	HypercallTime   sim.Time
	PageFaults      uint64
	PagesMigrated   uint64
	EntriesFlushed  uint64
	MigrationTime   sim.Time
	FaultTime       sim.Time
	PassthroughOffs uint64 // times passthrough was disabled for first-touch
}

// New boots a hypervisor on topo. It creates dom0 pinned to the CPUs of
// node 0 (the paper's setting, §5.2) holding dom0MemBytes of memory
// placed on node 0.
func New(topo *numa.Topology, eng *sim.Engine, cfg Config, dom0MemBytes int64) (*Hypervisor, error) {
	h := &Hypervisor{
		Topo:    topo,
		Alloc:   mem.NewAllocator(topo),
		Eng:     eng,
		Cfg:     cfg,
		domains: make(map[DomID]*Domain),
		cpuUse:  make([]int, topo.NumCPUs()),
	}
	spec := DomainSpec{
		Name:     "dom0",
		VCPUs:    len(topo.Nodes[0].CPUs),
		MemBytes: dom0MemBytes,
		PinCPUs:  append([]numa.CPUID(nil), topo.Nodes[0].CPUs...),
		Boot:     policy.Round1G,
	}
	if _, err := h.CreateDomain(spec); err != nil {
		return nil, fmt.Errorf("xen: creating dom0: %w", err)
	}
	return h, nil
}

// Dom0 returns the control domain.
func (h *Hypervisor) Dom0() *Domain { return h.domains[0] }

// Domain returns the domain with the given id, or nil.
func (h *Hypervisor) Domain(id DomID) *Domain { return h.domains[id] }

// Domains returns all live domains sorted by id.
func (h *Hypervisor) Domains() []*Domain {
	out := make([]*Domain, 0, len(h.domains))
	for _, d := range h.domains { //xnuma:maporder-ok collected set is order-free and fully sorted by unique domain ID below
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DomainSpec describes a domain to create.
type DomainSpec struct {
	Name     string
	VCPUs    int
	MemBytes int64
	// PinCPUs optionally pins vCPU i to PinCPUs[i]. When empty the
	// builder packs the domain onto the minimal set of underloaded
	// nodes, reserving one physical CPU per vCPU (§3.3).
	PinCPUs []numa.CPUID
	// Boot selects the boot-time memory layout: any registered policy
	// kind that may be booted — eagerly placed like Round4K (the
	// paper's default, §4.2.1) or Round1G (Xen's stock behaviour, kept
	// as a boot option and the default when empty), or lazily for kinds
	// without a boot placer (every entry starts invalid and faults into
	// the policy). Runtime-only kinds such as FirstTouch are rejected.
	Boot policy.Kind
}

// CreateDomain builds a domain: chooses home nodes, pins vCPUs, eagerly
// populates the physical address space according to the boot policy, and
// installs the matching runtime policy.
func (h *Hypervisor) CreateDomain(spec DomainSpec) (*Domain, error) {
	if spec.VCPUs <= 0 {
		return nil, fmt.Errorf("xen: domain %q needs at least one vCPU", spec.Name)
	}
	if spec.MemBytes < mem.PageSize {
		return nil, fmt.Errorf("xen: domain %q needs at least one page", spec.Name)
	}
	if spec.Boot == "" {
		spec.Boot = policy.Round1G // Xen's stock default layout
	}
	// Resolve once and keep the canonical kind: bootKind is compared
	// against runtime policies later, and an alias spelling ("r1g")
	// must not defeat those checks.
	bdesc, barg, bootCanon, err := policy.Resolve(spec.Boot)
	if err != nil {
		return nil, fmt.Errorf("xen: domain %q: %w", spec.Name, err)
	}
	spec.Boot = bootCanon
	if bdesc.RuntimeOnly {
		return nil, fmt.Errorf("xen: %s is not a boot layout; boot round-4K and switch (§4.2.1)", spec.Boot)
	}
	pol, err := bdesc.New(barg, h.Topo.NumNodes())
	if err != nil {
		return nil, fmt.Errorf("xen: domain %q: %w", spec.Name, err)
	}
	pins := spec.PinCPUs
	if len(pins) == 0 {
		pins, err = h.packVCPUs(spec.VCPUs, spec.MemBytes)
		if err != nil {
			return nil, err
		}
	} else if len(pins) != spec.VCPUs {
		return nil, fmt.Errorf("xen: %d pins for %d vCPUs", len(pins), spec.VCPUs)
	}
	d := newDomain(h, h.nextID, spec, pins, bdesc.Boot, pol)
	if err := d.populate(); err != nil {
		d.releaseFrames()
		return nil, fmt.Errorf("xen: populating domain %q: %w", spec.Name, err)
	}
	h.nextID++
	h.domains[d.ID] = d
	// Dom0 is mostly idle (it only backs I/O) and the paper pins it to
	// node 0 alongside guest vCPUs; it does not count against CPU
	// shares.
	if d.ID != 0 {
		for _, c := range pins {
			h.cpuUse[c]++
		}
	}
	return d, nil
}

// DestroyDomain tears a domain down and releases its memory and CPUs.
func (h *Hypervisor) DestroyDomain(id DomID) {
	d, ok := h.domains[id]
	if !ok {
		panic(fmt.Sprintf("xen: destroying unknown domain %d", id))
	}
	d.releaseFrames()
	if d.ID != 0 {
		for _, v := range d.VCPUs {
			h.cpuUse[v.PCPU]--
		}
	}
	delete(h.domains, id)
}

// packVCPUs implements the home-node packing of §3.3: pick the minimal
// number of underloaded nodes that can host one physical CPU per vCPU
// and the domain's memory, preferring the least-loaded nodes.
func (h *Hypervisor) packVCPUs(vcpus int, memBytes int64) ([]numa.CPUID, error) {
	type cand struct {
		node     numa.NodeID
		freeCPUs []numa.CPUID
		freeMem  int64
	}
	var cands []cand
	for _, n := range h.Topo.Nodes {
		c := cand{node: n.ID, freeMem: h.Alloc.FreeBytes(n.ID)}
		for _, cpu := range n.CPUs {
			if h.cpuUse[cpu] == 0 {
				c.freeCPUs = append(c.freeCPUs, cpu)
			}
		}
		cands = append(cands, c)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if len(cands[i].freeCPUs) != len(cands[j].freeCPUs) {
			return len(cands[i].freeCPUs) > len(cands[j].freeCPUs)
		}
		if cands[i].freeMem != cands[j].freeMem {
			return cands[i].freeMem > cands[j].freeMem
		}
		return cands[i].node < cands[j].node
	})
	var pins []numa.CPUID
	var memOK int64
	for _, c := range cands {
		if len(pins) >= vcpus && memOK >= memBytes {
			break
		}
		for _, cpu := range c.freeCPUs {
			if len(pins) < vcpus {
				pins = append(pins, cpu)
			}
		}
		memOK += c.freeMem
	}
	if len(pins) < vcpus {
		return nil, fmt.Errorf("xen: not enough free physical CPUs for %d vCPUs", vcpus)
	}
	if memOK < memBytes {
		return nil, fmt.Errorf("xen: not enough free memory on packed nodes")
	}
	return pins, nil
}

// CPULoad returns the number of vCPUs sharing physical CPU c.
func (h *Hypervisor) CPULoad(c numa.CPUID) int { return h.cpuUse[c] }

// takeShell pops a recycled domain shell, or returns nil when none is
// available (the cold-build case).
func (h *Hypervisor) takeShell() *Domain {
	if n := len(h.shells); n > 0 {
		d := h.shells[n-1]
		h.shells[n-1] = nil
		h.shells = h.shells[:n-1]
		return d
	}
	return nil
}

// Reset returns the hypervisor to its just-booted state so a warm-pool
// lease can build new guest domains on it: every domU is torn down (its
// storage kept as a shell for the next CreateDomain), the buddy
// allocator is restored to pristine shape wholesale, and dom0's boot
// allocations are replayed on top so the machine's free memory is
// bit-identical to a freshly booted hypervisor's. All counters reset.
//
// Reset requires that dom0 holds only block allocations from boot (no
// page-grained ownership), which is true in every cell: nothing runs a
// policy on dom0. It returns an error — rather than reconstruct an
// unknowable allocation order, or kill the process — when that
// precondition fails or the frame replay diverges; a hypervisor whose
// Reset errored is no longer bit-identical to a cold boot and must be
// discarded (the warm pool drops it and cold-builds).
func (h *Hypervisor) Reset() error {
	for id := DomID(1); id < h.nextID; id++ {
		d, ok := h.domains[id]
		if !ok {
			continue
		}
		d.recycleShell()
		h.shells = append(h.shells, d)
		delete(h.domains, id)
	}
	h.nextID = 1
	for i := range h.cpuUse {
		h.cpuUse[i] = 0
	}
	h.Hypercalls, h.HypercallTime = 0, 0
	h.PageFaults, h.PagesMigrated = 0, 0
	h.EntriesFlushed = 0
	h.MigrationTime, h.FaultTime = 0, 0
	h.PassthroughOffs = 0

	dom0 := h.domains[0]
	if len(dom0.ownedPages) != 0 {
		return fmt.Errorf("xen: Reset with page-grained dom0 allocations")
	}
	// Restore the allocator to pristine shape, then replay dom0's boot
	// allocations in their original order. The buddy allocator is
	// deterministic in its state, so each replayed Alloc must return the
	// frame dom0 already maps — any divergence means the pristine shape
	// was not restored and the machine would no longer be bit-identical
	// to a cold boot.
	h.Alloc.Reset()
	if err := fiReplay.Fire(); err != nil {
		return fmt.Errorf("xen: dom0 frame replay: %w", err)
	}
	for _, f := range dom0.frames {
		mfn, err := h.Alloc.Alloc(h.Alloc.NodeOf(f.mfn), f.order)
		if err != nil || mfn != f.mfn {
			return fmt.Errorf("xen: dom0 frame replay diverged: got %v/%v, want %d", mfn, err, f.mfn)
		}
	}
	dom0.Faults, dom0.FaultTime = 0, 0
	dom0.Hypercalls, dom0.HypercallTime = 0, 0
	dom0.Migrated, dom0.Invalidated = 0, 0
	dom0.nextAllocNode = 0
	return nil
}
