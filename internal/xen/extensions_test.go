package xen

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/policy"
)

func extTestDomain(t *testing.T) (*Hypervisor, *Domain) {
	t.Helper()
	hv := testHV(t)
	d, err := hv.CreateDomain(DomainSpec{
		Name: "ext", VCPUs: 4, MemBytes: 8 << 20,
		PinCPUs: []numa.CPUID{0, 4, 8, 12}, Boot: policy.Round4K,
	})
	if err != nil {
		t.Fatal(err)
	}
	return hv, d
}

func TestBalloonInflateDeflate(t *testing.T) {
	hv, d := extTestDomain(t)
	b := NewBalloon(d)
	free := hv.Alloc.TotalFreeBytes()
	const pfn = mem.PFN(100)
	if err := b.Inflate(pfn); err != nil {
		t.Fatal(err)
	}
	// The frame went back to the machine allocator — that is the whole
	// point of ballooning, and why a ballooned page is NOT a usable
	// guest free page (§4.2.3).
	if hv.Alloc.TotalFreeBytes() != free+mem.PageSize {
		t.Fatal("inflation did not release the frame")
	}
	if _, ok := d.NodeOfPFN(pfn); ok {
		t.Fatal("ballooned page still mapped")
	}
	if !b.Held(pfn) || b.Size() != 1 {
		t.Fatal("balloon bookkeeping wrong")
	}
	if err := b.Inflate(pfn); err == nil {
		t.Fatal("double inflation accepted")
	}
	if err := b.Deflate(pfn); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.NodeOfPFN(pfn); !ok {
		t.Fatal("deflated page not repopulated")
	}
	if err := b.Deflate(pfn); err == nil {
		t.Fatal("double deflation accepted")
	}
}

func TestBalloonInadequateForFirstTouch(t *testing.T) {
	// The paper's argument (§4.2.3): with ballooning, a "released" page
	// cannot be reallocated by the guest at will — any access before a
	// deflate hypercall faults with no policy able to resolve it into
	// the guest's expectations. The page-queue hypercall keeps the page
	// guest-usable: the next touch simply faults into first-touch.
	_, d := extTestDomain(t)
	d.HypercallSetPolicy(policy.Config{Static: policy.FirstTouch})
	b := NewBalloon(d)

	// Page-queue path: release then reuse works transparently.
	d.HypercallPageQueue([]policy.PageOp{{Kind: policy.OpRelease, PFN: 200}})
	if node, _ := d.Touch(200, 2, true); node != 2 {
		t.Fatal("page-queue release broke guest reuse")
	}

	// Balloon path: the guest must NOT touch the page before deflating;
	// the hypervisor would have to guess, and real Xen injects a fault
	// into the guest. Here the balloon still holds the page.
	if err := b.Inflate(201); err != nil {
		t.Fatal(err)
	}
	if !b.Held(201) {
		t.Fatal("balloon lost the page")
	}
	// Reuse requires an explicit deflate hypercall first.
	if err := b.Deflate(201); err != nil {
		t.Fatal(err)
	}
}

func TestGrantLifecycle(t *testing.T) {
	_, d := extTestDomain(t)
	gt := NewGrantTable(d)
	ref, err := gt.GrantAccess(0, 50, true)
	if err != nil {
		t.Fatal(err)
	}
	mfn, err := gt.Map(0, ref)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := d.table.TranslateNoFault(50); got != mfn {
		t.Fatal("grant mapped the wrong frame")
	}
	// Wrong grantee refused.
	if _, err := gt.Map(DomID(9), ref); err == nil {
		t.Fatal("foreign domain mapped the grant")
	}
	// Revocation refused while mapped.
	if err := gt.EndAccess(ref); err == nil {
		t.Fatal("EndAccess succeeded with outstanding mappings")
	}
	if err := gt.Unmap(ref); err != nil {
		t.Fatal(err)
	}
	if err := gt.EndAccess(ref); err != nil {
		t.Fatal(err)
	}
	if gt.Active() != 0 {
		t.Fatal("grant leaked")
	}
}

func TestGrantPinsAgainstMigration(t *testing.T) {
	_, d := extTestDomain(t)
	gt := NewGrantTable(d)
	const pfn = mem.PFN(60)
	from, _ := d.NodeOfPFN(pfn)
	to := numa.NodeID((int(from) + 1) % 4)
	ref, _ := gt.GrantAccess(0, pfn, false)
	if _, err := gt.Map(0, ref); err != nil {
		t.Fatal(err)
	}
	if d.MigratePage(pfn, to) {
		t.Fatal("migrated a granted (pinned) I/O buffer")
	}
	// First-touch invalidation must also skip the pinned page —
	// otherwise the in-flight DMA would abort through the IOMMU
	// (§4.4.1).
	d.HypercallSetPolicy(policy.Config{Static: policy.FirstTouch})
	d.HypercallPageQueue([]policy.PageOp{{Kind: policy.OpRelease, PFN: pfn}})
	if _, ok := d.NodeOfPFN(pfn); !ok {
		t.Fatal("pinned page invalidated under first-touch")
	}
	// After unmapping, migration works again.
	gt.Unmap(ref)
	if !d.MigratePage(pfn, to) {
		t.Fatal("unpinned page still refuses migration")
	}
}

func TestGrantUnpopulatedPageRejected(t *testing.T) {
	_, d := extTestDomain(t)
	gt := NewGrantTable(d)
	d.HypercallSetPolicy(policy.Config{Static: policy.FirstTouch})
	d.HypercallPageQueue([]policy.PageOp{{Kind: policy.OpRelease, PFN: 70}})
	if _, err := gt.GrantAccess(0, 70, false); err == nil {
		t.Fatal("granted an invalidated page (the IOMMU conflict, §4.4.1)")
	}
}
