package xen

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/policy"
)

// lazyDomain builds a domain booting the given (lazily placed) policy
// on a 4-node test hypervisor. Pins span all four nodes so every node
// is a home.
func lazyDomain(t *testing.T, boot policy.Kind) (*Hypervisor, *Domain) {
	t.Helper()
	hv := testHV(t)
	d, err := hv.CreateDomain(DomainSpec{
		Name: "lazy", VCPUs: 4, MemBytes: 4 << 20,
		PinCPUs: []numa.CPUID{0, 4, 8, 12}, Boot: boot,
	})
	if err != nil {
		t.Fatal(err)
	}
	return hv, d
}

// touchDist touches the first n pages from accessor and histograms the
// resulting placement.
func touchDist(d *Domain, n int, accessor numa.NodeID) map[numa.NodeID]uint64 {
	dist := make(map[numa.NodeID]uint64)
	for p := 0; p < n; p++ {
		node, _ := d.Touch(mem.PFN(p), accessor, true)
		dist[node]++
	}
	return dist
}

// TestLazyBootFaultsIn: a registered policy without a boot placer boots
// with every entry invalid, faults pages in on first touch, and — since
// the IOMMU cannot resolve invalid entries — runs without passthrough.
func TestLazyBootFaultsIn(t *testing.T) {
	_, d := lazyDomain(t, policy.Interleave)
	if d.Passthrough() {
		t.Fatal("lazily booted domain kept PCI passthrough")
	}
	if _, ok := d.NodeOfPFN(0); ok {
		t.Fatal("lazy boot pre-populated an entry")
	}
	before := d.Faults
	d.Touch(0, 2, true)
	if d.Faults != before+1 {
		t.Fatalf("first touch took %d faults, want 1", d.Faults-before)
	}
	if _, ok := d.NodeOfPFN(0); !ok {
		t.Fatal("fault did not fill the entry")
	}
	// The second touch is a fast-path hit.
	if _, cost := d.Touch(0, 2, true); cost != 0 {
		t.Fatalf("second touch cost %v, want 0", cost)
	}
}

// TestInterleaveDomainDistribution pins interleave's placement: lazy
// round-robin across all four home nodes, evenly.
func TestInterleaveDomainDistribution(t *testing.T) {
	_, d := lazyDomain(t, policy.Interleave)
	const pages = 400
	dist := touchDist(d, pages, 0)
	for n := numa.NodeID(0); n < 4; n++ {
		if dist[n] != pages/4 {
			t.Fatalf("interleave distribution %v, want %d per node", dist, pages/4)
		}
	}
}

// TestBindDomainDistribution pins bind:<node>: every page on the bound
// node regardless of the accessor.
func TestBindDomainDistribution(t *testing.T) {
	_, d := lazyDomain(t, policy.Bind(3))
	dist := touchDist(d, 200, 1)
	if dist[3] != 200 {
		t.Fatalf("bind:3 distribution %v, want all on node 3", dist)
	}
	if d.Policy().Static != policy.Bind(3) {
		t.Fatalf("policy = %v", d.Policy())
	}
}

// TestBindDomainRangeChecked: a bind node beyond the machine is
// rejected at domain creation, not at fault time.
func TestBindDomainRangeChecked(t *testing.T) {
	hv := testHV(t)
	_, err := hv.CreateDomain(DomainSpec{
		Name: "oob", VCPUs: 1, MemBytes: 1 << 20,
		PinCPUs: []numa.CPUID{0}, Boot: policy.Bind(9),
	})
	if err == nil {
		t.Fatal("bind:9 accepted on a 4-node machine")
	}
}

// TestLeastLoadedDomainDistribution pins least-loaded: dom0's memory
// lives on node 0, so the three emptier nodes absorb the whole fill in
// rotation — an exact even split, with the loaded node left alone.
func TestLeastLoadedDomainDistribution(t *testing.T) {
	_, d := lazyDomain(t, policy.LeastLoaded)
	const pages = 600 // 2.4 MiB, well under dom0's 4 MiB bite on node 0
	dist := touchDist(d, pages, 0)
	if dist[0] != 0 {
		t.Fatalf("least-loaded placed %d pages on the fullest node: %v", dist[0], dist)
	}
	for n := numa.NodeID(1); n < 4; n++ {
		if dist[n] != pages/3 {
			t.Fatalf("least-loaded distribution %v, want %d on each empty node", dist, pages/3)
		}
	}
}

// TestRuntimeSwitchToRegisteredPolicy: an eagerly booted domain can
// switch to a new registered policy through the hypercall; passthrough
// survives because the policy never invalidates entries.
func TestRuntimeSwitchToRegisteredPolicy(t *testing.T) {
	hv := testHV(t)
	d, err := hv.CreateDomain(DomainSpec{
		Name: "sw", VCPUs: 4, MemBytes: 4 << 20,
		PinCPUs: []numa.CPUID{0, 4, 8, 12}, Boot: policy.Round4K,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.HypercallSetPolicy(policy.Config{Static: policy.LeastLoaded}); err != nil {
		t.Fatal(err)
	}
	if !d.Passthrough() {
		t.Fatal("least-loaded needlessly disabled passthrough")
	}
	if _, err := d.HypercallSetPolicy(policy.Config{Static: policy.Kind("nosuch")}); err == nil {
		t.Fatal("unknown runtime policy accepted")
	}
	if _, err := d.HypercallSetPolicy(policy.Config{Static: policy.Bind(9)}); err == nil {
		t.Fatal("out-of-range bind accepted at runtime")
	}
	// The descriptor declares bind Carrefour-unstackable; programmatic
	// configs must be rejected like parsed ones.
	if _, err := d.HypercallSetPolicy(policy.Config{Static: policy.Bind(1), Carrefour: true}); err == nil {
		t.Fatal("carrefour stacked on bind at runtime")
	}
}

// TestAliasBootCanonicalized: booting through an alias spelling must
// behave exactly like the canonical kind — the stored boot kind is
// canonical, so the boot-only runtime check and same-policy comparison
// are not fooled by aliases or case.
func TestAliasBootCanonicalized(t *testing.T) {
	hv := testHV(t)
	d, err := hv.CreateDomain(DomainSpec{
		Name: "alias", VCPUs: 1, MemBytes: 1 << 20,
		PinCPUs: []numa.CPUID{0}, Boot: policy.Kind("r1g"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Policy().Static != policy.Round1G {
		t.Fatalf("boot kind = %v, want canonical round-1G", d.Policy().Static)
	}
	// Re-selecting round-1G at run time is allowed on a round-1G-booted
	// domain, however it was spelled at boot.
	if _, err := d.HypercallSetPolicy(policy.Config{Static: policy.Round1G}); err != nil {
		t.Fatalf("round-1G re-select rejected after alias boot: %v", err)
	}
	// And the hypercall canonicalizes too: an alias selects the same
	// policy, not a rebuilt one under a different name.
	if _, err := d.HypercallSetPolicy(policy.Config{Static: policy.Kind("R1G")}); err != nil {
		t.Fatalf("aliased re-select rejected: %v", err)
	}
	if d.Policy().Static != policy.Round1G {
		t.Fatalf("runtime kind = %v, want canonical round-1G", d.Policy().Static)
	}
}

// TestDefaultBootIsRound1G: an empty Boot keeps Xen's stock layout, as
// the zero value did when Kind was an enum.
func TestDefaultBootIsRound1G(t *testing.T) {
	hv := testHV(t)
	d, err := hv.CreateDomain(DomainSpec{
		Name: "def", VCPUs: 1, MemBytes: 4 << 20, PinCPUs: []numa.CPUID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Policy().Static != policy.Round1G {
		t.Fatalf("default boot = %v, want round-1G", d.Policy().Static)
	}
	if _, ok := d.NodeOfPFN(0); !ok {
		t.Fatal("round-1G default boot did not populate eagerly")
	}
}

// TestAdaptiveDomainSwitchesToFirstTouch: a domain booted with the
// adaptive policy probes least-loaded placement, then — once its
// placement imbalance stabilizes — replaces itself with first-touch
// through HypercallSetPolicy, so the switch is observable on the
// domain exactly like a guest-initiated one (config change, hypercall
// counter, later touches placed on the accessor's node).
func TestAdaptiveDomainSwitchesToFirstTouch(t *testing.T) {
	_, d := lazyDomain(t, policy.Adaptive)
	if d.Policy().Static != policy.Adaptive {
		t.Fatalf("boot policy = %v, want adaptive", d.Policy().Static)
	}
	// Stack Carrefour at run time; the internal switch must preserve it.
	if _, err := d.HypercallSetPolicy(policy.Config{Static: policy.Adaptive, Carrefour: true}); err != nil {
		t.Fatal(err)
	}
	hcBefore := d.Hypercalls
	// Two fault windows with even least-loaded spreading stabilize the
	// probe; touch enough distinct pages from one node to get there.
	touchDist(d, 600, 1)
	if got := d.Policy(); got.Static != policy.FirstTouch || !got.Carrefour {
		t.Fatalf("policy after probe = %+v, want first-touch with carrefour", got)
	}
	if d.Hypercalls == hcBefore {
		t.Fatal("switch did not go through the hypercall path")
	}
	// Post-switch touches run the installed first-touch policy: pages
	// land on the accessor's node.
	node, _ := d.Touch(700, 3, true)
	if node != 3 {
		t.Fatalf("post-switch touch placed on node %d, want 3", node)
	}
}
