package xen

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/policy"
	"repro/internal/sim"
)

// testHV boots a hypervisor on a small 4-node machine with 64 MiB/node
// and scaled-down region orders (huge = 4 MiB, mid = 32 KiB).
func testHV(t *testing.T) *Hypervisor {
	t.Helper()
	topo := numa.SmallMachine(4, 4, 64<<20)
	cfg := Config{HugeOrder: 10, MidOrder: 3, IOMMU: true}
	hv, err := New(topo, sim.NewEngine(), cfg, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	return hv
}

func TestDom0Creation(t *testing.T) {
	hv := testHV(t)
	d0 := hv.Dom0()
	if d0 == nil || d0.ID != 0 {
		t.Fatal("dom0 missing")
	}
	// Dom0 is pinned to node 0 (§5.2).
	for _, v := range d0.VCPUs {
		if hv.Topo.NodeOf(v.PCPU) != 0 {
			t.Fatalf("dom0 vCPU on node %d", hv.Topo.NodeOf(v.PCPU))
		}
	}
	// Dom0 does not consume CPU shares.
	if hv.CPULoad(0) != 0 {
		t.Fatal("dom0 counted in CPU load")
	}
}

func TestCreateDomainRound4K(t *testing.T) {
	hv := testHV(t)
	d, err := hv.CreateDomain(DomainSpec{
		Name: "u1", VCPUs: 4, MemBytes: 16 << 20,
		PinCPUs: []numa.CPUID{0, 4, 8, 12},
		Boot:    policy.Round4K,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.HomeNodes()) != 4 {
		t.Fatalf("home nodes = %v", d.HomeNodes())
	}
	// Every physical page must be mapped, spread round-robin.
	counts := make(map[numa.NodeID]int)
	for p := uint64(0); p < d.PhysPages(); p++ {
		node, ok := d.NodeOfPFN(mem.PFN(p))
		if !ok {
			t.Fatalf("PFN %d unmapped after round-4K boot", p)
		}
		counts[node]++
	}
	for n, c := range counts {
		if c != int(d.PhysPages())/4 {
			t.Fatalf("node %d holds %d pages, want %d", n, c, d.PhysPages()/4)
		}
	}
}

func TestCreateDomainRound1G(t *testing.T) {
	hv := testHV(t)
	// 24 MiB = 6 huge regions of 4 MiB; first and last are fragmented.
	d, err := hv.CreateDomain(DomainSpec{
		Name: "u1", VCPUs: 4, MemBytes: 24 << 20,
		PinCPUs: []numa.CPUID{0, 4, 8, 12},
		Boot:    policy.Round1G,
	})
	if err != nil {
		t.Fatal(err)
	}
	hugeFrames := mem.FramesOf(hv.Cfg.HugeOrder)
	// A middle huge region must be phys-contiguously on one node.
	node0, _ := d.NodeOfPFN(mem.PFN(hugeFrames))
	for p := hugeFrames; p < 2*hugeFrames; p++ {
		node, ok := d.NodeOfPFN(mem.PFN(p))
		if !ok || node != node0 {
			t.Fatalf("middle huge region not node-contiguous at PFN %d", p)
		}
	}
	// Consecutive middle regions land on different nodes (round-robin).
	node1, _ := d.NodeOfPFN(mem.PFN(2 * hugeFrames))
	if node1 == node0 {
		t.Fatal("consecutive huge regions on the same node")
	}
	// The first "GiB" is fragmented: it must span several nodes.
	firstNodes := make(map[numa.NodeID]bool)
	for p := uint64(0); p < hugeFrames; p++ {
		n, _ := d.NodeOfPFN(mem.PFN(p))
		firstNodes[n] = true
	}
	if len(firstNodes) < 2 {
		t.Fatal("fragmented first GiB landed on a single node")
	}
}

func TestFirstTouchBootRejected(t *testing.T) {
	hv := testHV(t)
	_, err := hv.CreateDomain(DomainSpec{
		Name: "u1", VCPUs: 1, MemBytes: 1 << 20,
		PinCPUs: []numa.CPUID{0}, Boot: policy.FirstTouch,
	})
	if err == nil {
		t.Fatal("first-touch accepted as boot layout")
	}
}

func TestPackVCPUsMinimalNodes(t *testing.T) {
	hv := testHV(t)
	d, err := hv.CreateDomain(DomainSpec{
		Name: "u1", VCPUs: 4, MemBytes: 8 << 20, Boot: policy.Round4K,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 vCPUs fit on one 4-CPU node: packing must use exactly one node.
	if len(d.HomeNodes()) != 1 {
		t.Fatalf("packed onto %v, want a single node", d.HomeNodes())
	}
	// A second domain must pack onto a different node.
	d2, err := hv.CreateDomain(DomainSpec{
		Name: "u2", VCPUs: 4, MemBytes: 8 << 20, Boot: policy.Round4K,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d2.HomeNodes()[0] == d.HomeNodes()[0] {
		t.Fatal("second domain packed onto an occupied node")
	}
}

func TestPackVCPUsExhaustion(t *testing.T) {
	hv := testHV(t)
	if _, err := hv.CreateDomain(DomainSpec{
		Name: "big", VCPUs: 17, MemBytes: 1 << 20, Boot: policy.Round4K,
	}); err == nil {
		t.Fatal("17 vCPUs on a 16-CPU machine accepted")
	}
}

func TestSetPolicySwitchesAndDisablesPassthrough(t *testing.T) {
	hv := testHV(t)
	d, err := hv.CreateDomain(DomainSpec{
		Name: "u1", VCPUs: 2, MemBytes: 4 << 20,
		PinCPUs: []numa.CPUID{0, 4}, Boot: policy.Round4K,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Passthrough() {
		t.Fatal("passthrough off despite IOMMU")
	}
	cost, err := d.HypercallSetPolicy(policy.Config{Static: policy.FirstTouch})
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("hypercall has no cost")
	}
	// §4.4.1: first-touch is incompatible with the IOMMU.
	if d.Passthrough() {
		t.Fatal("passthrough still on under first-touch")
	}
	if d.Policy().Static != policy.FirstTouch {
		t.Fatal("policy not switched")
	}
}

func TestSetPolicyRound1GRejectedAtRuntime(t *testing.T) {
	hv := testHV(t)
	d, _ := hv.CreateDomain(DomainSpec{
		Name: "u1", VCPUs: 1, MemBytes: 4 << 20,
		PinCPUs: []numa.CPUID{0}, Boot: policy.Round4K,
	})
	if _, err := d.HypercallSetPolicy(policy.Config{Static: policy.Round1G}); err == nil {
		t.Fatal("runtime switch to round-1G accepted (§4.2.1 forbids it)")
	}
}

func TestPageQueueInvalidatesAndRefaults(t *testing.T) {
	hv := testHV(t)
	d, _ := hv.CreateDomain(DomainSpec{
		Name: "u1", VCPUs: 2, MemBytes: 4 << 20,
		PinCPUs: []numa.CPUID{0, 4}, Boot: policy.Round4K,
	})
	if _, err := d.HypercallSetPolicy(policy.Config{Static: policy.FirstTouch}); err != nil {
		t.Fatal(err)
	}
	const pfn = mem.PFN(100)
	// Release the page: its entry must be invalidated.
	d.HypercallPageQueue([]policy.PageOp{{Kind: policy.OpRelease, PFN: pfn}})
	if _, ok := d.NodeOfPFN(pfn); ok {
		t.Fatal("released page still mapped")
	}
	// Touch from node 1: first-touch must place it there.
	node, cost := d.Touch(pfn, 1, true)
	if node != 1 {
		t.Fatalf("first-touch placed page on node %d, want 1", node)
	}
	if cost <= 0 {
		t.Fatal("fault cost not charged")
	}
	// Second touch from elsewhere must not move it.
	node, cost = d.Touch(pfn, 2, true)
	if node != 1 || cost != 0 {
		t.Fatalf("second touch moved page (node %d) or charged cost (%v)", node, cost)
	}
}

func TestPageQueueNewestOperationWins(t *testing.T) {
	hv := testHV(t)
	d, _ := hv.CreateDomain(DomainSpec{
		Name: "u1", VCPUs: 1, MemBytes: 4 << 20,
		PinCPUs: []numa.CPUID{0}, Boot: policy.Round4K,
	})
	d.HypercallSetPolicy(policy.Config{Static: policy.FirstTouch})
	const pfn = mem.PFN(50)
	before, _ := d.NodeOfPFN(pfn)
	// Release then realloc in the same batch: the page may already be in
	// use, so its entry must be left intact (§4.2.4).
	d.HypercallPageQueue([]policy.PageOp{
		{Kind: policy.OpRelease, PFN: pfn},
		{Kind: policy.OpAlloc, PFN: pfn},
	})
	node, ok := d.NodeOfPFN(pfn)
	if !ok || node != before {
		t.Fatal("reallocated page was invalidated or moved")
	}
	// The reverse order (alloc then release) must invalidate.
	d.HypercallPageQueue([]policy.PageOp{
		{Kind: policy.OpAlloc, PFN: pfn},
		{Kind: policy.OpRelease, PFN: pfn},
	})
	if _, ok := d.NodeOfPFN(pfn); ok {
		t.Fatal("released page survived the batch")
	}
}

func TestMigratePage(t *testing.T) {
	hv := testHV(t)
	d, _ := hv.CreateDomain(DomainSpec{
		Name: "u1", VCPUs: 4, MemBytes: 4 << 20,
		PinCPUs: []numa.CPUID{0, 4, 8, 12}, Boot: policy.Round4K,
	})
	const pfn = mem.PFN(10)
	from, _ := d.NodeOfPFN(pfn)
	to := numa.NodeID((int(from) + 1) % 4)
	var placed []numa.NodeID
	d.OnPlace = func(p mem.PFN, n numa.NodeID) {
		if p == pfn {
			placed = append(placed, n)
		}
	}
	if !d.MigratePage(pfn, to) {
		t.Fatal("migration refused")
	}
	if node, _ := d.NodeOfPFN(pfn); node != to {
		t.Fatalf("page on node %d after migration to %d", node, to)
	}
	if len(placed) != 1 || placed[0] != to {
		t.Fatalf("observer saw %v", placed)
	}
	// Migrating to the same node is a no-op.
	if d.MigratePage(pfn, to) {
		t.Fatal("same-node migration reported success")
	}
	if d.Migrated != 1 {
		t.Fatalf("Migrated = %d", d.Migrated)
	}
}

func TestDestroyDomainReleasesResources(t *testing.T) {
	hv := testHV(t)
	free := hv.Alloc.TotalFreeBytes()
	d, err := hv.CreateDomain(DomainSpec{
		Name: "u1", VCPUs: 4, MemBytes: 16 << 20,
		PinCPUs: []numa.CPUID{0, 4, 8, 12}, Boot: policy.Round4K,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exercise first-touch churn before destroying so individually-owned
	// pages exist.
	d.HypercallSetPolicy(policy.Config{Static: policy.FirstTouch})
	d.HypercallPageQueue([]policy.PageOp{{Kind: policy.OpRelease, PFN: 1}})
	d.Touch(1, 2, true)
	hv.DestroyDomain(d.ID)
	if got := hv.Alloc.TotalFreeBytes(); got != free {
		t.Fatalf("leak: free %d, want %d", got, free)
	}
	if hv.CPULoad(0) != 0 {
		t.Fatal("CPU still loaded after destroy")
	}
}

func TestScaledConfig(t *testing.T) {
	cfg := ScaledConfig(64)
	if cfg.HugeOrder != mem.Order1G-6 || cfg.MidOrder != mem.Order2M-6 {
		t.Fatalf("scaled orders = %d/%d", cfg.HugeOrder, cfg.MidOrder)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two scale accepted")
		}
	}()
	ScaledConfig(3)
}

func TestHypercallCostsBatchSplit(t *testing.T) {
	// 64 invalidations must account for 87.5% of the full batch cost
	// (§4.2.4).
	invalidate := 64 * CostInvalidateEntry
	total := CostHypercall + CostQueueSend + invalidate
	ratio := float64(invalidate) / float64(total)
	if ratio < 0.87 || ratio > 0.88 {
		t.Fatalf("invalidation share = %.3f, want 0.875", ratio)
	}
}
