package xen

import (
	"fmt"

	"repro/internal/mem"
)

// GrantRef names one grant-table entry.
type GrantRef uint32

// grantEntry records one active grant.
type grantEntry struct {
	pfn      mem.PFN
	grantee  DomID
	readonly bool
	mapped   int // outstanding mappings by the grantee
}

// GrantTable is the mechanism Xen's para-virtualized split drivers use
// to share I/O buffers between a domU and dom0: the guest grants access
// to one of its physical pages, the backend maps the underlying machine
// frame, performs the transfer, and unmaps.
//
// Grants interact with the paper's mechanisms in one important way: a
// granted-and-mapped page is pinned — migrating it would pull the frame
// out from under a DMA in flight, so Domain.MigratePage refuses it. The
// dynamic Carrefour policy therefore skips I/O buffers, mirroring how
// real Xen pins granted frames.
type GrantTable struct {
	dom     *Domain
	next    GrantRef
	entries map[GrantRef]*grantEntry
}

// NewGrantTable attaches a grant table to dom.
func NewGrantTable(dom *Domain) *GrantTable {
	gt := &GrantTable{dom: dom, entries: make(map[GrantRef]*grantEntry)}
	dom.grants = gt
	return gt
}

// GrantAccess creates a grant for pfn toward grantee. The page must be
// populated (an invalid entry cannot be the target of a DMA — the same
// constraint the IOMMU enforces, §4.4.1).
func (g *GrantTable) GrantAccess(grantee DomID, pfn mem.PFN, readonly bool) (GrantRef, error) {
	if _, ok := g.dom.NodeOfPFN(pfn); !ok {
		return 0, fmt.Errorf("xen: granting unpopulated page %d", pfn)
	}
	ref := g.next
	g.next++
	g.entries[ref] = &grantEntry{pfn: pfn, grantee: grantee, readonly: readonly}
	return ref, nil
}

// Map resolves a grant for the grantee and pins the page against
// migration. It returns the machine frame backing the granted page.
func (g *GrantTable) Map(grantee DomID, ref GrantRef) (mem.MFN, error) {
	e, ok := g.entries[ref]
	if !ok {
		return mem.NoMFN, fmt.Errorf("xen: unknown grant %d", ref)
	}
	if e.grantee != grantee {
		return mem.NoMFN, fmt.Errorf("xen: grant %d is for domain %d, not %d", ref, e.grantee, grantee)
	}
	mfn, ok := g.dom.table.TranslateNoFault(e.pfn)
	if !ok {
		return mem.NoMFN, fmt.Errorf("xen: granted page %d became invalid", e.pfn)
	}
	e.mapped++
	g.dom.pinned[e.pfn]++
	return mfn, nil
}

// Unmap releases one mapping of a grant.
func (g *GrantTable) Unmap(ref GrantRef) error {
	e, ok := g.entries[ref]
	if !ok {
		return fmt.Errorf("xen: unknown grant %d", ref)
	}
	if e.mapped == 0 {
		return fmt.Errorf("xen: grant %d not mapped", ref)
	}
	e.mapped--
	if g.dom.pinned[e.pfn]--; g.dom.pinned[e.pfn] == 0 {
		delete(g.dom.pinned, e.pfn)
	}
	return nil
}

// EndAccess revokes a grant. It fails while mappings are outstanding,
// as in real Xen.
func (g *GrantTable) EndAccess(ref GrantRef) error {
	e, ok := g.entries[ref]
	if !ok {
		return fmt.Errorf("xen: unknown grant %d", ref)
	}
	if e.mapped > 0 {
		return fmt.Errorf("xen: grant %d still mapped %d times", ref, e.mapped)
	}
	delete(g.entries, ref)
	return nil
}

// Active reports the number of live grants.
func (g *GrantTable) Active() int { return len(g.entries) }
