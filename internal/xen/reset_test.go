package xen

import (
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/policy"
)

// TestResetMatchesFreshHypervisor pins the xen half of the warm-pool
// reset protocol: after creating guest domains, faulting pages through a
// runtime policy and migrating some, Reset must leave the hypervisor
// bit-identical in behavior to a freshly booted one — same free memory
// per node, same next domain ID, zeroed counters, and a subsequent
// CreateDomain sequence producing the same placements.
func TestResetMatchesFreshHypervisor(t *testing.T) {
	build := func() *Hypervisor { return testHV(t) }

	churn := func(hv *Hypervisor) {
		d, err := hv.CreateDomain(DomainSpec{
			Name: "u1", VCPUs: 4, MemBytes: 16 << 20,
			PinCPUs: []numa.CPUID{0, 4, 8, 12},
			Boot:    policy.Round4K,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Switch to first-touch so the page queue invalidates entries
		// and faults re-place them page by page (page-grained ownership,
		// the hard case for allocator restoration).
		if _, err := d.HypercallSetPolicy(policy.Config{Static: policy.FirstTouch}); err != nil {
			t.Fatal(err)
		}
		ops := make([]policy.PageOp, 0, 64)
		for p := mem.PFN(0); p < 64; p++ {
			ops = append(ops, policy.PageOp{PFN: p, Kind: policy.OpRelease})
		}
		d.HypercallPageQueue(ops)
		for p := mem.PFN(0); p < 64; p++ {
			d.Touch(p, numa.NodeID(int(p)%hv.Topo.NumNodes()), p%2 == 0)
		}
		for p := mem.PFN(0); p < 16; p++ {
			d.MigratePage(p, numa.NodeID(3))
		}
		if _, err := hv.CreateDomain(DomainSpec{
			Name: "u2", VCPUs: 2, MemBytes: 8 << 20, Boot: policy.Round1G,
		}); err != nil {
			t.Fatal(err)
		}
	}

	hv := build()
	churn(hv)
	if err := hv.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}

	fresh := build()
	for n := 0; n < hv.Topo.NumNodes(); n++ {
		node := numa.NodeID(n)
		if got, want := hv.Alloc.FreeBytes(node), fresh.Alloc.FreeBytes(node); got != want {
			t.Errorf("node %d free bytes after Reset = %d, fresh = %d", n, got, want)
		}
	}
	if hv.nextID != fresh.nextID {
		t.Errorf("nextID after Reset = %d, fresh = %d", hv.nextID, fresh.nextID)
	}
	if len(hv.domains) != 1 || hv.Dom0() == nil {
		t.Errorf("domains after Reset = %d, want dom0 only", len(hv.domains))
	}
	if hv.Hypercalls != 0 || hv.PageFaults != 0 || hv.PagesMigrated != 0 ||
		hv.EntriesFlushed != 0 || hv.PassthroughOffs != 0 {
		t.Error("hypervisor counters not zeroed by Reset")
	}
	for c := 0; c < hv.Topo.NumCPUs(); c++ {
		if hv.CPULoad(numa.CPUID(c)) != 0 {
			t.Errorf("CPU %d still loaded after Reset", c)
		}
	}

	// Rebuilding the same domains on the reset machine must reproduce a
	// fresh machine's placements exactly — shells and refilled maps must
	// not change a single frame.
	for _, h := range []*Hypervisor{hv, fresh} {
		churn(h)
	}
	dr, df := hv.Domain(1), fresh.Domain(1)
	if dr.PhysPages() != df.PhysPages() {
		t.Fatalf("phys pages diverge: %d vs %d", dr.PhysPages(), df.PhysPages())
	}
	for p := uint64(0); p < dr.PhysPages(); p++ {
		nr, okr := dr.NodeOfPFN(mem.PFN(p))
		nf, okf := df.NodeOfPFN(mem.PFN(p))
		if okr != okf || nr != nf {
			t.Fatalf("PFN %d placement diverges after Reset: (%v,%v) vs (%v,%v)", p, nr, okr, nf, okf)
		}
	}
	if dr.Faults != df.Faults || dr.Migrated != df.Migrated {
		t.Errorf("counters diverge after rebuild: faults %d/%d migrated %d/%d",
			dr.Faults, df.Faults, dr.Migrated, df.Migrated)
	}
}

// TestResetReplayDivergenceReturnsError pins the degradation contract
// of the xen.replay fault site: a divergence in the dom0 frame replay
// surfaces as an error from Reset — never a panic — so the warm pool
// can drop the machine and cold-build instead of taking the process
// down.
func TestResetReplayDivergenceReturnsError(t *testing.T) {
	plan, err := faultinject.Parse("xen.replay:hit=1:action=error")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Install(plan)
	defer faultinject.Install(nil)

	hv := testHV(t)
	if _, err := hv.CreateDomain(DomainSpec{
		Name: "u1", VCPUs: 2, MemBytes: 8 << 20, Boot: policy.Round1G,
	}); err != nil {
		t.Fatal(err)
	}
	if err := hv.Reset(); err == nil || !strings.Contains(err.Error(), "frame replay") {
		t.Fatalf("Reset under injected replay fault = %v, want frame-replay error", err)
	}
	if plan.Fired("xen.replay") != 1 {
		t.Fatalf("site fired %d times, want 1", plan.Fired("xen.replay"))
	}
	// The fault fires once: the next Reset succeeds and the machine is
	// usable again (the allocator was restored before the injection
	// point, so this particular failure is recoverable in-test; real
	// divergences are not, which is why the pool drops the machine).
	if err := hv.Reset(); err != nil {
		t.Fatalf("second Reset: %v", err)
	}
}
