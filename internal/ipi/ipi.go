// Package ipi models inter-processor-interrupt costs, the second
// virtualization overhead the paper mitigates in Xen+ (§5.3.2, Figure 5).
//
// In native mode an IPI send-to-wake round trip costs ~0.9 µs. In guest
// mode each stage traps to the hypervisor: the sender's APIC write exits,
// the hypervisor routes the virtual interrupt, the target vCPU must be
// kicked (a real IPI plus a VM entry) and the halted guest resumed —
// ~10.9 µs in total. Applications that block frequently (locks, condition
// variables, network waits) pay this on every wakeup.
package ipi

import "repro/internal/sim"

// Stage is one component of the IPI round trip, for the Figure 5
// breakdown.
type Stage struct {
	Name   string
	Native sim.Time
	Guest  sim.Time
}

// Breakdown returns the cost repartition of one IPI wakeup in native and
// guest mode. The totals are calibrated to the paper's measurements:
// 0.9 µs native, 10.9 µs guest.
func Breakdown() []Stage {
	return []Stage{
		// Writing the APIC ICR. In guest mode this traps (VM exit) and
		// the hypervisor emulates the APIC.
		{Name: "send (APIC write)", Native: 200 * sim.Nanosecond, Guest: 1900 * sim.Nanosecond},
		// Routing the interrupt to the target CPU. The hypervisor must
		// locate the target vCPU and send a physical IPI to its pCPU.
		{Name: "route/deliver", Native: 300 * sim.Nanosecond, Guest: 2600 * sim.Nanosecond},
		// Waking the halted target. Natively this is the HLT wakeup;
		// in guest mode the hypervisor re-enters the guest (VM entry,
		// virtual interrupt injection).
		{Name: "wake target (VM entry)", Native: 250 * sim.Nanosecond, Guest: 4100 * sim.Nanosecond},
		// Acknowledging the interrupt (EOI). Trapped in guest mode.
		{Name: "ack (EOI)", Native: 150 * sim.Nanosecond, Guest: 2300 * sim.Nanosecond},
	}
}

// The totals are fixed calibration constants; precomputing them keeps
// the engine's per-epoch overhead query from rebuilding the breakdown
// slice on every call.
var (
	nativeCost = total(false)
	guestCost  = total(true)
)

// NativeCost returns the native IPI round-trip cost (~0.9 µs).
//
//xnuma:noalloc
func NativeCost() sim.Time { return nativeCost }

// GuestCost returns the virtualized IPI round-trip cost (~10.9 µs).
//
//xnuma:noalloc
func GuestCost() sim.Time { return guestCost }

func total(guest bool) sim.Time {
	var t sim.Time
	for _, s := range Breakdown() {
		if guest {
			t += s.Guest
		} else {
			t += s.Native
		}
	}
	return t
}

// Model computes the time an application loses to blocking
// synchronization for a given platform.
type Model struct {
	// Virtualized selects guest-mode costs.
	Virtualized bool
	// MCSSpin models the paper's Xen+ mitigation: pthread mutexes and
	// condition variables replaced by MCS spin loops, so threads never
	// leave the CPU and no wakeup IPIs are sent (§5.3.2). It only helps
	// applications whose blocking goes through pthread primitives.
	MCSSpin bool
}

// WakeupCost returns the cost of one blocked-waiter wakeup.
//
//xnuma:noalloc
func (m Model) WakeupCost() sim.Time {
	if m.Virtualized {
		return GuestCost()
	}
	return NativeCost()
}

// OverheadFraction returns the fraction of a core's time lost to wakeups
// for a thread performing ctxPerSec intentional context switches per
// second. amplification captures wakeup convoys (a futex chain or a
// network stack wakes several waiters per event; the effective stall is
// several IPI round trips). usesPthread reports whether the application's
// blocking goes through pthread primitives (and is therefore removed by
// the MCS mitigation).
//
//xnuma:noalloc
func (m Model) OverheadFraction(ctxPerSec, amplification float64, usesPthread bool) float64 {
	if ctxPerSec <= 0 {
		return 0
	}
	if m.MCSSpin && usesPthread {
		// Spinning burns a little CPU instead of blocking.
		return 0.01
	}
	if amplification <= 0 {
		amplification = 1
	}
	perWakeup := float64(m.WakeupCost()) - float64(NativeCost())
	if !m.Virtualized {
		perWakeup = 0 // the native cost is already part of the baseline
	}
	frac := ctxPerSec * perWakeup * amplification / 1e9
	if frac > 0.95 {
		frac = 0.95
	}
	return frac
}
