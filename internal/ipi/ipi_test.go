package ipi

import (
	"testing"

	"repro/internal/sim"
)

func TestTotalsMatchPaper(t *testing.T) {
	// Figure 5: ~0.9 µs native, ~10.9 µs guest.
	if got := NativeCost(); got != 900*sim.Nanosecond {
		t.Fatalf("native IPI = %v, want 900ns", got)
	}
	if got := GuestCost(); got != 10900*sim.Nanosecond {
		t.Fatalf("guest IPI = %v, want 10.9µs", got)
	}
}

func TestBreakdownStagesPositiveAndOrdered(t *testing.T) {
	for _, s := range Breakdown() {
		if s.Native <= 0 || s.Guest <= 0 {
			t.Fatalf("stage %q has non-positive cost", s.Name)
		}
		if s.Guest <= s.Native {
			t.Fatalf("stage %q not more expensive in guest mode", s.Name)
		}
	}
}

func TestOverheadFractionNativeIsZero(t *testing.T) {
	m := Model{Virtualized: false}
	if f := m.OverheadFraction(100000, 2, false); f != 0 {
		t.Fatalf("native overhead = %v (baseline already includes native IPIs)", f)
	}
}

func TestOverheadFractionGuest(t *testing.T) {
	m := Model{Virtualized: true}
	// 10k wakeups/s × 10 µs extra = 10 %.
	f := m.OverheadFraction(10000, 1, false)
	if f < 0.095 || f > 0.105 {
		t.Fatalf("guest overhead = %v, want ~0.10", f)
	}
	// Amplification scales it.
	if f2 := m.OverheadFraction(10000, 2, false); f2 < 1.9*f || f2 > 2.1*f {
		t.Fatalf("amplification not applied: %v vs %v", f2, f)
	}
}

func TestOverheadCapped(t *testing.T) {
	m := Model{Virtualized: true}
	if f := m.OverheadFraction(1e7, 10, false); f > 0.95 {
		t.Fatalf("overhead uncapped: %v", f)
	}
}

func TestMCSSpinRemovesPthreadWakeups(t *testing.T) {
	m := Model{Virtualized: true, MCSSpin: true}
	// pthread-blocking app: overhead collapses to the spin cost.
	if f := m.OverheadFraction(29500, 1.5, true); f > 0.02 {
		t.Fatalf("MCS did not remove pthread wakeups: %v", f)
	}
	// Futex/network blocking is unaffected (ua.C, memcached, §5.5).
	withMCS := m.OverheadFraction(37400, 1.5, false)
	without := Model{Virtualized: true}.OverheadFraction(37400, 1.5, false)
	if withMCS != without {
		t.Fatal("MCS affected non-pthread blocking")
	}
}

func TestZeroRateZeroOverhead(t *testing.T) {
	m := Model{Virtualized: true}
	if m.OverheadFraction(0, 1, false) != 0 {
		t.Fatal("zero wakeup rate has overhead")
	}
}

func TestWakeupCost(t *testing.T) {
	if (Model{Virtualized: true}).WakeupCost() != GuestCost() {
		t.Fatal("guest wakeup cost wrong")
	}
	if (Model{}).WakeupCost() != NativeCost() {
		t.Fatal("native wakeup cost wrong")
	}
}
