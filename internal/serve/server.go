package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/advisor"
	"repro/internal/exp"
	"repro/internal/policy"
)

// Config tunes a Server.
type Config struct {
	// ModelVersion stamps the persisted cache; a cache written under a
	// different stamp is rejected on load. The CLI passes
	// xennuma.ModelVersion().
	ModelVersion string
	// CacheDir, when non-empty, is where LoadCache/SaveCache persist
	// the suite's computed cells across restarts.
	CacheDir string
	// Timeout bounds how long one request waits for its result; 0 means
	// no bound. A timed-out request gets a structured "timeout" error;
	// the computation itself cannot be cancelled and keeps running, so
	// a retry lands on warm cells.
	Timeout time.Duration
}

// Server is a resident sweep service: one warm exp.Suite answering
// sweep/advise/policies/stats requests. Identical in-flight and past
// requests coalesce on flights (so a thundering herd computes each
// simulation cell exactly once and every member receives byte-identical
// payload bytes), and whole-batch computation is serialized — the
// suite's Prefetch/Join protocol is single-driver — while the cells of
// each batch still fan out across the scheduler's full worker pool.
type Server struct {
	suite *exp.Suite
	cfg   Config

	mu      sync.Mutex
	flights map[string]*flight
	// computeMu serializes Prefetch/Join batches: the scheduler forbids
	// submitting concurrently with a pending Wait.
	computeMu sync.Mutex
	// flightWG tracks leader compute goroutines; Drain waits for it
	// after the request sources (stdio loop, HTTP server) have stopped.
	flightWG sync.WaitGroup

	requests  atomic.Int64
	coalesced atomic.Int64
	failures  atomic.Int64
	restored  atomic.Int64
}

// flight is one coalesced request computation: the leader fills result
// or errInfo and closes done; every waiter shares the bytes. Flights
// for cacheable ops are retained, so repeated identical requests replay
// the exact payload without re-rendering.
type flight struct {
	done    chan struct{}
	result  json.RawMessage
	errInfo *ErrorInfo
}

// New returns a server over the given suite. The suite's Opt (seed,
// scale, pool) is fixed for the server's lifetime; every response is a
// deterministic function of it and the request.
func New(s *exp.Suite, cfg Config) *Server {
	return &Server{suite: s, cfg: cfg, flights: make(map[string]*flight)}
}

// Serve answers JSON-lines requests from r on w until r reaches EOF or
// ctx is cancelled (the CLI cancels on SIGTERM/SIGINT), then drains:
// every request already read gets its response before Serve returns.
// Responses are written one per line, matched by id; their order across
// concurrent requests is unspecified.
func (s *Server) Serve(ctx context.Context, r io.Reader, w io.Writer) error {
	out := &lineWriter{w: w}
	type item struct {
		line    []byte
		tooLong bool
	}
	items := make(chan item)
	go func() {
		defer close(items)
		br := bufio.NewReaderSize(r, 64<<10)
		for {
			line, tooLong, err := readLine(br, maxLineBytes)
			if tooLong || len(bytes.TrimSpace(line)) > 0 {
				select {
				case items <- item{line: line, tooLong: tooLong}:
				case <-ctx.Done():
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()

	var handlers sync.WaitGroup
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case it, ok := <-items:
			if !ok {
				break loop
			}
			if it.tooLong {
				out.write(marshalResponse("", nil,
					errorf("overflow", "request line exceeds %d bytes", maxLineBytes)))
				continue
			}
			handlers.Add(1)
			go func(line []byte) {
				defer handlers.Done()
				// Requests in flight when ctx is cancelled still finish:
				// drain is graceful, so the timeout context derives from
				// Background, not from ctx.
				out.write(s.HandleLine(context.Background(), line))
			}(it.line)
		}
	}
	handlers.Wait()
	return nil
}

// Drain blocks until every leader computation has finished. Call it
// after the request sources (Serve, the HTTP server) have stopped and
// before SaveCache, so the snapshot includes the tail of in-flight
// work.
func (s *Server) Drain() { s.flightWG.Wait() }

// HandleLine answers one raw request line with one response line (no
// trailing newline). It never panics: handler panics — including a
// failing simulation cell surfacing through the suite — become
// structured "internal" errors.
func (s *Server) HandleLine(ctx context.Context, line []byte) (resp []byte) {
	s.requests.Add(1)
	req, errInfo := decodeRequest(line)
	if errInfo != nil {
		s.failures.Add(1)
		return marshalResponse(req.ID, nil, errInfo)
	}
	defer func() {
		if p := recover(); p != nil {
			s.failures.Add(1)
			resp = marshalResponse(req.ID, nil, errorf("internal", "%v", p))
		}
	}()
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	result, errInfo := s.dispatch(ctx, req)
	if errInfo != nil {
		s.failures.Add(1)
	}
	return marshalResponse(req.ID, result, errInfo)
}

// dispatch routes one validated request: cheap ops compute inline,
// sweep/advise coalesce through the flight table.
func (s *Server) dispatch(ctx context.Context, req Request) (json.RawMessage, *ErrorInfo) {
	if !req.cacheable() {
		switch req.Op {
		case "policies":
			return policiesResult()
		default: // "stats" — normalize admits nothing else
			return s.statsResult()
		}
	}

	fl, leader := s.claim(req.key())
	if leader {
		s.flightWG.Add(1)
		go func() {
			defer s.flightWG.Done()
			defer close(fl.done)
			defer func() {
				if p := recover(); p != nil {
					fl.errInfo = errorf("internal", "%v", p)
				}
			}()
			fl.result, fl.errInfo = s.compute(req)
		}()
	} else {
		s.coalesced.Add(1)
	}

	// Prefer a completed flight over an expired context, so an
	// already-cached answer never reports timeout.
	select {
	case <-fl.done:
		return fl.result, fl.errInfo
	default:
	}
	select {
	case <-fl.done:
		return fl.result, fl.errInfo
	case <-ctx.Done():
		return nil, errorf("timeout", "request abandoned (%v); the computation continues and a retry will hit warm cells", ctx.Err())
	}
}

// claim returns the flight for key, creating it (leader=true) if absent.
func (s *Server) claim(key string) (*flight, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fl, ok := s.flights[key]; ok {
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[key] = fl
	return fl, true
}

// compute runs one sweep/advise batch on the suite and marshals its
// payload. computeMu makes batches sequential; the cells inside each
// batch fan out across the scheduler.
func (s *Server) compute(req Request) (json.RawMessage, *ErrorInfo) {
	s.computeMu.Lock()
	defer s.computeMu.Unlock()
	var tables []*exp.Table
	switch req.Op {
	case "sweep":
		switch {
		case req.Bind:
			tables = []*exp.Table{exp.BindSweep(s.suite, req.Apps[0])}
		case req.Seeds > 1:
			tables = exp.SeedSweepApps(s.suite, req.Apps, req.Seeds)
		default:
			tables = exp.PolicySweepApps(s.suite, req.Apps)
		}
	case "advise":
		target := advisor.TargetXen
		if req.Target == "linux" {
			target = advisor.TargetLinux
		}
		tables = []*exp.Table{advisor.Table(s.suite, target, req.Apps)}
	}
	payload := struct {
		Tables []TableJSON `json:"tables"`
	}{Tables: make([]TableJSON, 0, len(tables))}
	for _, t := range tables {
		payload.Tables = append(payload.Tables, toTableJSON(t, req.Markdown))
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return nil, errorf("internal", "marshal tables: %v", err)
	}
	return b, nil
}

// policyInfo is one registry row of the policies op.
type policyInfo struct {
	Name          string   `json:"name"`
	Spelling      string   `json:"spelling"`
	Aliases       []string `json:"aliases,omitempty"`
	Abbrev        string   `json:"abbrev"`
	Parameterized bool     `json:"parameterized,omitempty"`
	Carrefour     bool     `json:"carrefour"`
	BootOnly      bool     `json:"boot_only,omitempty"`
	RuntimeOnly   bool     `json:"runtime_only,omitempty"`
	Native        bool     `json:"native"`
	Fault         string   `json:"fault"`
}

func policiesResult() (json.RawMessage, *ErrorInfo) {
	payload := struct {
		Policies []policyInfo `json:"policies"`
	}{}
	for _, d := range policy.List() {
		payload.Policies = append(payload.Policies, policyInfo{
			Name:          d.Name,
			Spelling:      d.DefaultSpelling(),
			Aliases:       d.Aliases,
			Abbrev:        d.Abbrev,
			Parameterized: d.Parameterized,
			Carrefour:     d.Carrefour,
			BootOnly:      d.BootOnly,
			RuntimeOnly:   d.RuntimeOnly,
			Native:        d.Native != nil,
			Fault:         d.Fault,
		})
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return nil, errorf("internal", "marshal policies: %v", err)
	}
	return b, nil
}

// Stats is the stats op's payload: the resident suite's and server's
// counters. No wall-clock fields — the service reports work, and the
// simulation's only clock is virtual.
type Stats struct {
	Workers        int    `json:"workers"`
	CellsComputed  int64  `json:"cells_computed"`
	CellsCached    int    `json:"cells_cached"`
	CellsRestored  int64  `json:"cells_restored"`
	TasksSubmitted int64  `json:"tasks_submitted"`
	TasksCompleted int64  `json:"tasks_completed"`
	PoolHits       uint64 `json:"pool_hits"`
	PoolMisses     uint64 `json:"pool_misses"`
	Requests       int64  `json:"requests"`
	Coalesced      int64  `json:"coalesced"`
	Failures       int64  `json:"failures"`
	ModelVersion   string `json:"model_version,omitempty"`
}

// Snapshot of the server's counters (also the final CLI summary line).
func (s *Server) Stats() Stats {
	hits, misses := s.suite.PoolStats()
	submitted, completed := s.suite.SchedulerStats()
	return Stats{
		Workers:        s.suite.Workers(),
		CellsComputed:  s.suite.CellsComputed(),
		CellsCached:    s.suite.CachedCells(),
		CellsRestored:  s.restored.Load(),
		TasksSubmitted: submitted,
		TasksCompleted: completed,
		PoolHits:       hits,
		PoolMisses:     misses,
		Requests:       s.requests.Load(),
		Coalesced:      s.coalesced.Load(),
		Failures:       s.failures.Load(),
		ModelVersion:   s.cfg.ModelVersion,
	}
}

func (s *Server) statsResult() (json.RawMessage, *ErrorInfo) {
	b, err := json.Marshal(struct {
		Stats Stats `json:"stats"`
	}{s.Stats()})
	if err != nil {
		return nil, errorf("internal", "marshal stats: %v", err)
	}
	return b, nil
}

// Handler returns the HTTP face of the protocol: POST /rpc carries one
// request object per body and returns one response object. Error codes
// map to HTTP statuses (parse/bad_request/overflow → 400, timeout →
// 504, internal → 500), but the body is always the same structured
// Response a stdio caller would read.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /rpc", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxLineBytes+1))
		if err != nil {
			writeHTTP(w, marshalResponse("", nil, errorf("parse", "read body: %v", err)))
			return
		}
		if len(body) > maxLineBytes {
			writeHTTP(w, marshalResponse("", nil,
				errorf("overflow", "request body exceeds %d bytes", maxLineBytes)))
			return
		}
		writeHTTP(w, s.HandleLine(r.Context(), body))
	})
	return mux
}

// writeHTTP sends one response line with the status its error code
// implies.
func writeHTTP(w http.ResponseWriter, line []byte) {
	var resp Response
	status := http.StatusOK
	if err := json.Unmarshal(line, &resp); err == nil && resp.Error != nil {
		switch resp.Error.Code {
		case "timeout":
			status = http.StatusGatewayTimeout
		case "internal":
			status = http.StatusInternalServerError
		default:
			status = http.StatusBadRequest
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(line, '\n'))
}

// lineWriter serializes response lines onto one writer: a single Write
// per response keeps lines atomic under concurrent handlers.
type lineWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lineWriter) write(line []byte) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	lw.w.Write(append(line, '\n'))
}

// readLine reads one newline-terminated line of at most max bytes.
// Oversized lines are consumed to their newline and reported as
// tooLong with no content, so the stream stays framed and the server
// can answer with a structured overflow error instead of desyncing.
func readLine(br *bufio.Reader, max int) (line []byte, tooLong bool, err error) {
	for {
		frag, e := br.ReadSlice('\n')
		if !tooLong {
			if len(line)+len(frag) > max {
				tooLong, line = true, nil
			} else {
				line = append(line, frag...)
			}
		}
		if e == bufio.ErrBufferFull {
			continue
		}
		line = bytes.TrimRight(line, "\r\n")
		return line, tooLong, e
	}
}

// String renders the stats as the CLI's final summary line.
func (st Stats) String() string {
	return fmt.Sprintf("%d requests (%d coalesced, %d failed), %d cells computed, %d cached (%d restored), pool %d hits / %d misses",
		st.Requests, st.Coalesced, st.Failures, st.CellsComputed, st.CellsCached, st.CellsRestored, st.PoolHits, st.PoolMisses)
}
