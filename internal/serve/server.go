package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/advisor"
	"repro/internal/exp"
	"repro/internal/faultinject"
	"repro/internal/policy"
)

// fiRequest is the fault site at request handling, fired after decode
// and inside the handler's recover scope: an injected error surfaces
// as a structured "internal" response, a panic exercises the recover
// path, a delay stalls the request without corrupting it.
var fiRequest = faultinject.Register("serve.request")

// Config tunes a Server.
type Config struct {
	// ModelVersion stamps the persisted cache; a cache written under a
	// different stamp is rejected on load. The CLI passes
	// xennuma.ModelVersion().
	ModelVersion string
	// CacheDir, when non-empty, is where LoadCache/SaveCache persist
	// the suite's computed cells across restarts.
	CacheDir string
	// Timeout bounds how long one request waits for its result; 0 means
	// no bound. A timed-out request gets a structured "timeout" error;
	// the computation itself cannot be cancelled and keeps running, so
	// a retry lands on warm cells.
	Timeout time.Duration
	// MaxFlights bounds the retained completed-flight response cache:
	// once more than MaxFlights completed flights are held, the least
	// recently replayed one is evicted (deterministic completion-order
	// LRU). 0 selects DefaultMaxFlights; in-flight leaders are never
	// evicted.
	MaxFlights int
	// MaxPending bounds concurrent leader computations: a request that
	// would start leader MaxPending+1 is shed with a structured
	// "unavailable" error and a retry hint instead of queueing without
	// bound. 0 means no shedding. Waiters coalescing onto an existing
	// flight are never shed.
	MaxPending int
}

// DefaultMaxFlights is the completed-flight cache bound when
// Config.MaxFlights is 0.
const DefaultMaxFlights = 512

// shedRetryMS is the deterministic retry hint attached to shed
// requests (no wall clock: the hint is a constant, not a measurement).
const shedRetryMS = 1000

// Server is a resident sweep service: one warm exp.Suite answering
// sweep/advise/policies/stats requests. Identical in-flight and past
// requests coalesce on flights (so a thundering herd computes each
// simulation cell exactly once and every member receives byte-identical
// payload bytes), and whole-batch computation is serialized — the
// suite's Prefetch/Join protocol is single-driver — while the cells of
// each batch still fan out across the scheduler's full worker pool.
type Server struct {
	suite *exp.Suite
	cfg   Config

	mu      sync.Mutex
	flights map[string]*flight
	// completed is the retained-flight replay order: completed
	// successful flights in completion order, most recently replayed
	// last. Eviction pops the front once the list exceeds MaxFlights.
	completed []string
	// pending counts active leader computations (for MaxPending
	// shedding).
	pending int
	// computeMu serializes Prefetch/Join batches: the scheduler forbids
	// submitting concurrently with a pending Wait.
	computeMu sync.Mutex
	// flightWG tracks leader compute goroutines; Drain waits for it
	// after the request sources (stdio loop, HTTP server) have stopped.
	flightWG sync.WaitGroup

	requests  atomic.Int64
	coalesced atomic.Int64
	failures  atomic.Int64
	restored  atomic.Int64
	evicted   atomic.Int64
	shed      atomic.Int64
	salvaged  atomic.Int64
}

// flight is one coalesced request computation: the leader fills result
// or errInfo and closes done; every waiter shares the bytes.
// Successful flights are retained (bounded by Config.MaxFlights, LRU
// by replay order), so repeated identical requests replay the exact
// payload without re-rendering; failed flights are dropped on
// completion so retries recompute.
type flight struct {
	done    chan struct{}
	result  json.RawMessage
	errInfo *ErrorInfo
}

// New returns a server over the given suite. The suite's Opt (seed,
// scale, pool) is fixed for the server's lifetime; every response is a
// deterministic function of it and the request.
func New(s *exp.Suite, cfg Config) *Server {
	return &Server{suite: s, cfg: cfg, flights: make(map[string]*flight)}
}

// maxFlights resolves the configured completed-flight bound.
func (s *Server) maxFlights() int {
	if s.cfg.MaxFlights > 0 {
		return s.cfg.MaxFlights
	}
	return DefaultMaxFlights
}

// Serve answers JSON-lines requests from r on w until r reaches EOF or
// ctx is cancelled (the CLI cancels on SIGTERM/SIGINT), then drains:
// every request already read gets its response before Serve returns.
// Responses are written one per line, matched by id; their order across
// concurrent requests is unspecified.
func (s *Server) Serve(ctx context.Context, r io.Reader, w io.Writer) error {
	out := &lineWriter{w: w}
	type item struct {
		line    []byte
		tooLong bool
	}
	items := make(chan item)
	go func() {
		defer close(items)
		br := bufio.NewReaderSize(r, 64<<10)
		for {
			line, tooLong, err := readLine(br, maxLineBytes)
			if tooLong || len(bytes.TrimSpace(line)) > 0 {
				select {
				case items <- item{line: line, tooLong: tooLong}:
				case <-ctx.Done():
					return
				}
			}
			if err != nil {
				return
			}
		}
	}()

	var handlers sync.WaitGroup
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case it, ok := <-items:
			if !ok {
				break loop
			}
			if it.tooLong {
				out.write(marshalResponse("", nil,
					errorf("overflow", "request line exceeds %d bytes", maxLineBytes)))
				continue
			}
			handlers.Add(1)
			go func(line []byte) {
				defer handlers.Done()
				// Requests in flight when ctx is cancelled still finish:
				// drain is graceful, so the timeout context derives from
				// Background, not from ctx.
				out.write(s.HandleLine(context.Background(), line))
			}(it.line)
		}
	}
	handlers.Wait()
	return nil
}

// Drain blocks until every leader computation has finished. Call it
// after the request sources (Serve, the HTTP server) have stopped and
// before SaveCache, so the snapshot includes the tail of in-flight
// work.
func (s *Server) Drain() { s.flightWG.Wait() }

// HandleLine answers one raw request line with one response line (no
// trailing newline). It never panics: handler panics — including a
// failing simulation cell surfacing through the suite — become
// structured "internal" errors.
func (s *Server) HandleLine(ctx context.Context, line []byte) (resp []byte) {
	s.requests.Add(1)
	req, errInfo := decodeRequest(line)
	if errInfo != nil {
		s.failures.Add(1)
		return marshalResponse(req.ID, nil, errInfo)
	}
	defer func() {
		if p := recover(); p != nil {
			s.failures.Add(1)
			resp = marshalResponse(req.ID, nil, errorf("internal", "%v", p))
		}
	}()
	if err := fiRequest.Fire(); err != nil {
		s.failures.Add(1)
		return marshalResponse(req.ID, nil, errorf("internal", "injected fault: %v", err))
	}
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	result, errInfo := s.dispatch(ctx, req)
	if errInfo != nil {
		s.failures.Add(1)
	}
	return marshalResponse(req.ID, result, errInfo)
}

// dispatch routes one validated request: cheap ops compute inline,
// sweep/advise coalesce through the flight table.
func (s *Server) dispatch(ctx context.Context, req Request) (json.RawMessage, *ErrorInfo) {
	if !req.cacheable() {
		switch req.Op {
		case "policies":
			return policiesResult()
		case "health":
			return s.healthResult()
		default: // "stats" — normalize admits nothing else
			return s.statsResult()
		}
	}

	key := req.key()
	fl, leader, shed := s.claim(key)
	if shed {
		s.shed.Add(1)
		e := errorf("unavailable", "server at capacity (%d leader computations in flight); retry after backoff", s.cfg.MaxPending)
		e.RetryAfterMS = shedRetryMS
		return nil, e
	}
	if leader {
		s.flightWG.Add(1)
		go func() {
			defer s.flightWG.Done()
			defer s.finish(key, fl)
			defer close(fl.done)
			defer func() {
				if p := recover(); p != nil {
					fl.errInfo = errorf("internal", "%v", p)
				}
			}()
			fl.result, fl.errInfo = s.compute(req)
		}()
	} else {
		s.coalesced.Add(1)
	}

	// Prefer a completed flight over an expired context, so an
	// already-cached answer never reports timeout.
	select {
	case <-fl.done:
		return fl.result, fl.errInfo
	default:
	}
	select {
	case <-fl.done:
		return fl.result, fl.errInfo
	case <-ctx.Done():
		return nil, errorf("timeout", "request abandoned (%v); the computation continues and a retry will hit warm cells", ctx.Err())
	}
}

// claim returns the flight for key, creating it (leader=true) if
// absent. A replayed completed flight is touched to the back of the
// eviction order. When starting a new leader would exceed MaxPending,
// nothing is created and shed is true; waiters joining an existing
// flight are never shed.
func (s *Server) claim(key string) (fl *flight, leader, shed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fl, ok := s.flights[key]; ok {
		s.touch(key)
		return fl, false, false
	}
	if s.cfg.MaxPending > 0 && s.pending >= s.cfg.MaxPending {
		return nil, false, true
	}
	fl = &flight{done: make(chan struct{})}
	s.flights[key] = fl
	s.pending++
	return fl, true, false
}

// touch moves a retained completed flight to the back of the eviction
// order. In-flight keys are not in the list and are left alone.
func (s *Server) touch(key string) {
	for i, k := range s.completed {
		if k == key {
			copy(s.completed[i:], s.completed[i+1:])
			s.completed[len(s.completed)-1] = key
			return
		}
	}
}

// finish retires a leader computation. Failed flights are dropped —
// errors are reported to their waiters but never replayed from cache,
// so a retry recomputes. Successful flights join the replay cache,
// evicting the least recently replayed one past the MaxFlights bound
// (deterministic: completion order, touched on replay).
func (s *Server) finish(key string, fl *flight) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending--
	if fl.errInfo != nil {
		delete(s.flights, key)
		return
	}
	s.completed = append(s.completed, key)
	for max := s.maxFlights(); len(s.completed) > max; {
		victim := s.completed[0]
		s.completed = s.completed[1:]
		delete(s.flights, victim)
		s.evicted.Add(1)
	}
}

// compute runs one sweep/advise batch on the suite and marshals its
// payload. computeMu makes batches sequential; the cells inside each
// batch fan out across the scheduler.
func (s *Server) compute(req Request) (json.RawMessage, *ErrorInfo) {
	s.computeMu.Lock()
	defer s.computeMu.Unlock()
	var tables []*exp.Table
	switch req.Op {
	case "sweep":
		switch {
		case req.Bind:
			tables = []*exp.Table{exp.BindSweep(s.suite, req.Apps[0])}
		case req.Seeds > 1:
			tables = exp.SeedSweepApps(s.suite, req.Apps, req.Seeds)
		default:
			tables = exp.PolicySweepApps(s.suite, req.Apps)
		}
	case "advise":
		target := advisor.TargetXen
		if req.Target == "linux" {
			target = advisor.TargetLinux
		}
		tables = []*exp.Table{advisor.Table(s.suite, target, req.Apps)}
	}
	payload := struct {
		Tables []TableJSON `json:"tables"`
	}{Tables: make([]TableJSON, 0, len(tables))}
	for _, t := range tables {
		payload.Tables = append(payload.Tables, toTableJSON(t, req.Markdown))
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return nil, errorf("internal", "marshal tables: %v", err)
	}
	return b, nil
}

// policyInfo is one registry row of the policies op.
type policyInfo struct {
	Name          string   `json:"name"`
	Spelling      string   `json:"spelling"`
	Aliases       []string `json:"aliases,omitempty"`
	Abbrev        string   `json:"abbrev"`
	Parameterized bool     `json:"parameterized,omitempty"`
	Carrefour     bool     `json:"carrefour"`
	BootOnly      bool     `json:"boot_only,omitempty"`
	RuntimeOnly   bool     `json:"runtime_only,omitempty"`
	Native        bool     `json:"native"`
	Fault         string   `json:"fault"`
}

func policiesResult() (json.RawMessage, *ErrorInfo) {
	payload := struct {
		Policies []policyInfo `json:"policies"`
	}{}
	for _, d := range policy.List() {
		payload.Policies = append(payload.Policies, policyInfo{
			Name:          d.Name,
			Spelling:      d.DefaultSpelling(),
			Aliases:       d.Aliases,
			Abbrev:        d.Abbrev,
			Parameterized: d.Parameterized,
			Carrefour:     d.Carrefour,
			BootOnly:      d.BootOnly,
			RuntimeOnly:   d.RuntimeOnly,
			Native:        d.Native != nil,
			Fault:         d.Fault,
		})
	}
	b, err := json.Marshal(payload)
	if err != nil {
		return nil, errorf("internal", "marshal policies: %v", err)
	}
	return b, nil
}

// Stats is the stats op's payload: the resident suite's and server's
// counters. No wall-clock fields — the service reports work, and the
// simulation's only clock is virtual.
type Stats struct {
	Workers        int    `json:"workers"`
	CellsComputed  int64  `json:"cells_computed"`
	CellsCached    int    `json:"cells_cached"`
	CellsRestored  int64  `json:"cells_restored"`
	TasksSubmitted int64  `json:"tasks_submitted"`
	TasksCompleted int64  `json:"tasks_completed"`
	PoolHits       uint64 `json:"pool_hits"`
	PoolMisses     uint64 `json:"pool_misses"`
	PoolDrops      uint64 `json:"pool_drops"`
	CellErrors     int64  `json:"cell_errors"`
	Requests       int64  `json:"requests"`
	Coalesced      int64  `json:"coalesced"`
	Failures       int64  `json:"failures"`
	FlightsEvicted int64  `json:"flights_evicted"`
	Shed           int64  `json:"shed"`
	ModelVersion   string `json:"model_version,omitempty"`
}

// Snapshot of the server's counters (also the final CLI summary line).
func (s *Server) Stats() Stats {
	hits, misses := s.suite.PoolStats()
	submitted, completed := s.suite.SchedulerStats()
	return Stats{
		Workers:        s.suite.Workers(),
		CellsComputed:  s.suite.CellsComputed(),
		CellsCached:    s.suite.CachedCells(),
		CellsRestored:  s.restored.Load(),
		TasksSubmitted: submitted,
		TasksCompleted: completed,
		PoolHits:       hits,
		PoolMisses:     misses,
		PoolDrops:      s.suite.PoolResetDrops(),
		CellErrors:     s.suite.CellErrors(),
		Requests:       s.requests.Load(),
		Coalesced:      s.coalesced.Load(),
		Failures:       s.failures.Load(),
		FlightsEvicted: s.evicted.Load(),
		Shed:           s.shed.Load(),
		ModelVersion:   s.cfg.ModelVersion,
	}
}

func (s *Server) statsResult() (json.RawMessage, *ErrorInfo) {
	b, err := json.Marshal(struct {
		Stats Stats `json:"stats"`
	}{s.Stats()})
	if err != nil {
		return nil, errorf("internal", "marshal stats: %v", err)
	}
	return b, nil
}

// Health is the health op's payload: liveness plus every degraded-mode
// counter. Status is "degraded" once any degradation event has
// occurred — a pool machine dropped, a cell errored, a cache salvage
// or a shed request — and "ok" otherwise. Degraded means the server
// survived something, not that it is unhealthy now: every counter
// counts a failure that was contained.
type Health struct {
	Status         string `json:"status"`
	PoolResetDrops uint64 `json:"pool_reset_drops"`
	CellErrors     int64  `json:"cell_errors"`
	CacheSalvaged  int64  `json:"cache_salvaged"`
	FlightsEvicted int64  `json:"flights_evicted"`
	Shed           int64  `json:"shed"`
	Failures       int64  `json:"failures"`
	FaultPlan      string `json:"fault_plan,omitempty"`
}

// Health snapshots the degraded-mode counters (also the health op's
// payload).
func (s *Server) Health() Health {
	h := Health{
		Status:         "ok",
		PoolResetDrops: s.suite.PoolResetDrops(),
		CellErrors:     s.suite.CellErrors(),
		CacheSalvaged:  s.salvaged.Load(),
		FlightsEvicted: s.evicted.Load(),
		Shed:           s.shed.Load(),
		Failures:       s.failures.Load(),
		FaultPlan:      faultinject.ActiveSpec(),
	}
	if h.PoolResetDrops > 0 || h.CellErrors > 0 || h.CacheSalvaged > 0 || h.Shed > 0 {
		h.Status = "degraded"
	}
	return h
}

func (s *Server) healthResult() (json.RawMessage, *ErrorInfo) {
	b, err := json.Marshal(struct {
		Health Health `json:"health"`
	}{s.Health()})
	if err != nil {
		return nil, errorf("internal", "marshal health: %v", err)
	}
	return b, nil
}

// Handler returns the HTTP face of the protocol: POST /rpc carries one
// request object per body and returns one response object. Error codes
// map to HTTP statuses (parse/bad_request/overflow → 400, timeout →
// 504, unavailable → 503 with Retry-After, internal → 500), but the
// body is always the same structured Response a stdio caller would
// read. Bodies are capped at the stdio line limit with
// http.MaxBytesReader, so an oversized POST also stops consuming the
// connection at the cap.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /rpc", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxLineBytes))
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				writeHTTP(w, marshalResponse("", nil,
					errorf("overflow", "request body exceeds %d bytes", maxLineBytes)))
				return
			}
			writeHTTP(w, marshalResponse("", nil, errorf("parse", "read body: %v", err)))
			return
		}
		writeHTTP(w, s.HandleLine(r.Context(), body))
	})
	return mux
}

// writeHTTP sends one response line with the status its error code
// implies.
func writeHTTP(w http.ResponseWriter, line []byte) {
	var resp Response
	status := http.StatusOK
	if err := json.Unmarshal(line, &resp); err == nil && resp.Error != nil {
		switch resp.Error.Code {
		case "timeout":
			status = http.StatusGatewayTimeout
		case "internal":
			status = http.StatusInternalServerError
		case "unavailable":
			status = http.StatusServiceUnavailable
			secs := (resp.Error.RetryAfterMS + 999) / 1000
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		default:
			status = http.StatusBadRequest
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(line, '\n'))
}

// lineWriter serializes response lines onto one writer: a single Write
// per response keeps lines atomic under concurrent handlers.
type lineWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lineWriter) write(line []byte) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	lw.w.Write(append(line, '\n'))
}

// readLine reads one newline-terminated line of at most max bytes.
// Oversized lines are consumed to their newline and reported as
// tooLong with no content, so the stream stays framed and the server
// can answer with a structured overflow error instead of desyncing.
func readLine(br *bufio.Reader, max int) (line []byte, tooLong bool, err error) {
	for {
		frag, e := br.ReadSlice('\n')
		if !tooLong {
			if len(line)+len(frag) > max {
				tooLong, line = true, nil
			} else {
				line = append(line, frag...)
			}
		}
		if e == bufio.ErrBufferFull {
			continue
		}
		line = bytes.TrimRight(line, "\r\n")
		return line, tooLong, e
	}
}

// String renders the stats as the CLI's final summary line.
func (st Stats) String() string {
	return fmt.Sprintf("%d requests (%d coalesced, %d failed), %d cells computed, %d cached (%d restored), pool %d hits / %d misses",
		st.Requests, st.Coalesced, st.Failures, st.CellsComputed, st.CellsCached, st.CellsRestored, st.PoolHits, st.PoolMisses)
}
