package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func installPlan(t *testing.T, spec string) *faultinject.Plan {
	t.Helper()
	p, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Install(p)
	t.Cleanup(func() { faultinject.Install(nil) })
	return p
}

const adviseLine = `{"id":"v","op":"advise","app":"swaptions"}`

// flightKeys snapshots the retained flight table (test-only).
func (s *Server) flightKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.flights))
	for k := range s.flights {
		keys = append(keys, k)
	}
	return keys
}

// TestFlightEviction pins the bounded response cache: past MaxFlights
// completed flights, the least recently replayed one is evicted (and
// counted), while replays of retained flights still return identical
// bytes — the suite's cell cache survives eviction, only the rendered
// payload is re-built.
func TestFlightEviction(t *testing.T) {
	srv, suite := newTestServer(t, Config{MaxFlights: 1})
	first := srv.HandleLine(context.Background(), []byte(sweepLine))
	srv.Drain()
	cells := suite.CellsComputed()
	srv.HandleLine(context.Background(), []byte(adviseLine))
	srv.Drain()

	if got := srv.Stats().FlightsEvicted; got != 1 {
		t.Fatalf("FlightsEvicted = %d, want 1", got)
	}
	if keys := srv.flightKeys(); len(keys) != 1 || !strings.HasPrefix(keys[0], "advise|") {
		t.Fatalf("retained flights = %v, want the advise flight only", keys)
	}
	// Replaying the evicted request re-renders from warm cells: same
	// bytes, no new simulation work beyond what advise added.
	cellsBefore := suite.CellsComputed()
	again := srv.HandleLine(context.Background(), []byte(sweepLine))
	srv.Drain()
	if !bytes.Equal(again, first) {
		t.Fatal("evicted flight replayed with different bytes")
	}
	if got := suite.CellsComputed(); got != cellsBefore {
		t.Fatalf("replay after eviction recomputed cells: %d != %d", got, cellsBefore)
	}
	_ = cells
}

// TestFlightTouchKeepsHotEntries: replaying a retained flight moves it
// to the back of the eviction order, so the cold one goes first.
func TestFlightTouchKeepsHotEntries(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxFlights: 2})
	ctx := context.Background()
	srv.HandleLine(ctx, []byte(sweepLine)) // A
	srv.Drain()
	srv.HandleLine(ctx, []byte(adviseLine)) // B
	srv.Drain()
	srv.HandleLine(ctx, []byte(sweepLine))                                            // touch A: order is now B, A
	srv.HandleLine(ctx, []byte(`{"op":"advise","app":"swaptions","target":"linux"}`)) // C evicts B
	srv.Drain()

	keys := srv.flightKeys()
	if len(keys) != 2 {
		t.Fatalf("retained %d flights, want 2: %v", len(keys), keys)
	}
	for _, k := range keys {
		if strings.HasPrefix(k, "advise|") && strings.Contains(k, "target=xen") {
			t.Fatalf("cold flight survived eviction over the touched one: %v", keys)
		}
	}
}

// TestFailedFlightNotRetained: a flight whose computation fails is
// reported to its waiters but dropped from the cache, so the retry
// recomputes and succeeds — one injected fault never poisons a key.
func TestFailedFlightNotRetained(t *testing.T) {
	ref, _ := newTestServer(t, Config{})
	want := ref.HandleLine(context.Background(), []byte(sweepLine))

	srv, suite := newTestServer(t, Config{})
	// Arm a block of hits so every cell execution during this request
	// faults: the suite's own errored-cell retry (evict + recompute)
	// is exhausted too, and the error surfaces to the flight.
	rules := make([]string, 40)
	for i := range rules {
		rules[i] = fmt.Sprintf("exp.cell:hit=%d:action=error", i+1)
	}
	installPlan(t, strings.Join(rules, ","))
	resp := handle(t, srv, sweepLine)
	if resp.OK || resp.Error == nil || resp.Error.Code != "internal" {
		t.Fatalf("faulted sweep = %+v, want internal error", resp)
	}
	srv.Drain()
	if keys := srv.flightKeys(); len(keys) != 0 {
		t.Fatalf("failed flight retained: %v", keys)
	}
	faultinject.Install(nil)
	got := srv.HandleLine(context.Background(), []byte(sweepLine))
	if !bytes.Equal(got, want) {
		t.Fatalf("retry after failed flight diverged:\n%s\nvs\n%s", got, want)
	}
	if suite.CellErrors() == 0 {
		t.Fatal("no cell errors recorded")
	}
}

// TestLoadShedding: past MaxPending concurrent leader computations,
// new work is shed with a structured "unavailable" error carrying a
// retry hint — and a retry once the server drains succeeds. Waiters
// coalescing onto the pending flight are not shed.
func TestLoadShedding(t *testing.T) {
	srv, _ := newTestServer(t, Config{MaxPending: 1})
	installPlan(t, "exp.cell:hit=1:action=delay:delay=300ms")

	done := make(chan []byte, 1)
	go func() { done <- srv.HandleLine(context.Background(), []byte(sweepLine)) }()
	// Wait for the leader to claim its flight.
	for {
		srv.mu.Lock()
		pending := srv.pending
		srv.mu.Unlock()
		if pending == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	resp := handle(t, srv, adviseLine)
	if resp.OK || resp.Error == nil || resp.Error.Code != "unavailable" {
		t.Fatalf("overloaded advise = %+v, want unavailable", resp)
	}
	if resp.Error.RetryAfterMS != shedRetryMS {
		t.Fatalf("retry_after_ms = %d, want %d", resp.Error.RetryAfterMS, shedRetryMS)
	}
	// Joining the in-flight sweep coalesces instead of shedding.
	joined := handle(t, srv, sweepLine)
	if !joined.OK {
		t.Fatalf("coalescing waiter was shed: %+v", joined.Error)
	}
	<-done
	srv.Drain()
	if got := srv.Stats().Shed; got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
	retry := handle(t, srv, adviseLine)
	if !retry.OK {
		t.Fatalf("retry after drain failed: %+v", retry.Error)
	}
}

// TestHealthOp: a fresh server reports ok with zeroed counters; after
// a contained failure it reports degraded with the counter that
// tripped, plus the active fault plan.
func TestHealthOp(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	var payload struct {
		Health Health `json:"health"`
	}
	resp := handle(t, srv, `{"id":"h1","op":"health"}`)
	if !resp.OK {
		t.Fatalf("health failed: %+v", resp.Error)
	}
	if err := json.Unmarshal(resp.Result, &payload); err != nil {
		t.Fatal(err)
	}
	if h := payload.Health; h.Status != "ok" || h.CellErrors != 0 || h.PoolResetDrops != 0 {
		t.Fatalf("fresh health = %+v, want ok/zeroed", h)
	}

	const spec = "exp.cell:hit=1:action=error"
	installPlan(t, spec)
	handle(t, srv, sweepLine)
	srv.Drain()
	resp = handle(t, srv, `{"op":"health"}`)
	if err := json.Unmarshal(resp.Result, &payload); err != nil {
		t.Fatal(err)
	}
	h := payload.Health
	if h.Status != "degraded" || h.CellErrors != 1 {
		t.Fatalf("post-fault health = %+v, want degraded with 1 cell error", h)
	}
	if h.FaultPlan != spec {
		t.Fatalf("fault_plan = %q, want %q", h.FaultPlan, spec)
	}
	if resp = handle(t, srv, `{"op":"health","app":"x"}`); resp.OK || resp.Error.Code != "bad_request" {
		t.Fatalf("health with params = %+v, want bad_request", resp)
	}
}

// TestServeRequestFaultSite: the serve.request site degrades exactly
// as specified — error becomes a structured internal response, panic
// is recovered by the handler, delay just stalls — and the server
// keeps serving afterwards.
func TestServeRequestFaultSite(t *testing.T) {
	for _, tc := range []struct{ name, spec string }{
		{"error", "serve.request:hit=1:action=error"},
		{"panic", "serve.request:hit=1:action=panic"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, _ := newTestServer(t, Config{})
			plan := installPlan(t, tc.spec)
			resp := handle(t, srv, `{"id":"f","op":"stats"}`)
			if resp.OK || resp.Error == nil || resp.Error.Code != "internal" {
				t.Fatalf("faulted request = %+v, want internal", resp)
			}
			if resp.ID != "f" {
				t.Fatalf("fault response lost the request id: %+v", resp)
			}
			if plan.Fired("serve.request") != 1 {
				t.Fatalf("fired %d, want 1", plan.Fired("serve.request"))
			}
			if next := handle(t, srv, `{"op":"stats"}`); !next.OK {
				t.Fatalf("server did not survive the fault: %+v", next.Error)
			}
		})
	}
	t.Run("delay", func(t *testing.T) {
		srv, _ := newTestServer(t, Config{})
		installPlan(t, "serve.request:hit=1:action=delay:delay=10ms")
		if resp := handle(t, srv, `{"op":"stats"}`); !resp.OK {
			t.Fatalf("delayed request failed: %+v", resp.Error)
		}
	})
}

// TestHTTPUnavailable: the HTTP face maps "unavailable" to 503 with a
// Retry-After header derived from the structured hint.
func TestHTTPUnavailable(t *testing.T) {
	e := errorf("unavailable", "capacity")
	e.RetryAfterMS = shedRetryMS
	rec := httptest.NewRecorder()
	writeHTTP(rec, marshalResponse("x", nil, e))
	if rec.Code != 503 {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After %q, want \"1\"", got)
	}
}

// TestCacheSalvagePrefix pins the persistence degradation: a cache
// with a corrupted tail restores every cell before the first bad line
// and reports the loss, instead of throwing the whole file away.
func TestCacheSalvagePrefix(t *testing.T) {
	dir := t.TempDir()
	srvA, suiteA := persistServer(t, dir, "m")
	srvA.HandleLine(context.Background(), []byte(sweepLine))
	srvA.Drain()
	cells := int(suiteA.CellsComputed())
	if n, err := srvA.SaveCache(); err != nil || n != cells {
		t.Fatalf("SaveCache = %d, %v", n, err)
	}

	// Corrupt the last cell line's checksummed bytes (a flipped byte,
	// as bit rot or a torn write would leave).
	path := filepath.Join(dir, cacheFileName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(b, []byte("\n")), []byte("\n"))
	if len(lines) != cells+1 {
		t.Fatalf("cache has %d lines, want header + %d cells", len(lines), cells)
	}
	last := lines[len(lines)-1]
	last[bytes.IndexByte(last, ':')+2] ^= 0x01
	if err := os.WriteFile(path, append(bytes.Join(lines, []byte("\n")), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	srvB, suiteB := persistServer(t, dir, "m")
	n, err := srvB.LoadCache()
	if err == nil || !strings.Contains(err.Error(), "salvaged") {
		t.Fatalf("corrupt tail: err = %v, want salvage report", err)
	}
	if n != cells-1 {
		t.Fatalf("salvaged %d cells, want %d (all but the corrupt one)", n, cells-1)
	}
	if h := srvB.Health(); h.Status != "degraded" || h.CacheSalvaged != 1 {
		t.Fatalf("health after salvage = %+v", h)
	}
	// The salvaged prefix serves warm; only the lost cell recomputes.
	refResp := srvA.HandleLine(context.Background(), []byte(sweepLine))
	got := srvB.HandleLine(context.Background(), []byte(sweepLine))
	if !bytes.Equal(got, refResp) {
		t.Fatal("salvaged server diverged from the original")
	}
	if c := suiteB.CellsComputed(); c != 1 {
		t.Fatalf("salvaged server recomputed %d cells, want 1", c)
	}
}

// TestStaleTempIgnoredAndSwept simulates a crash between the cache's
// temp-file write and its rename: the orphaned temp file is never
// loaded, and the next SaveCache sweeps it.
func TestStaleTempIgnoredAndSwept(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, cacheFileName+".tmp1234")
	if err := os.WriteFile(stale, []byte("torn half-written cache"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, _ := persistServer(t, dir, "m")
	if n, err := srv.LoadCache(); n != 0 || err != nil {
		t.Fatalf("LoadCache with stale temp = %d, %v; want clean cold start", n, err)
	}
	srv.HandleLine(context.Background(), []byte(sweepLine))
	srv.Drain()
	if _, err := srv.SaveCache(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file not swept: %v", err)
	}
	srvB, suiteB := persistServer(t, dir, "m")
	if n, err := srvB.LoadCache(); err != nil || n == 0 {
		t.Fatalf("reload after sweep = %d, %v", n, err)
	}
	_ = suiteB
}

// TestCacheFaultSites: injected I/O faults at the persistence boundary
// surface as errors — a cold start for load, a skipped snapshot for
// save — and never kill the process.
func TestCacheFaultSites(t *testing.T) {
	dir := t.TempDir()
	srv, _ := persistServer(t, dir, "m")
	srv.HandleLine(context.Background(), []byte(sweepLine))
	srv.Drain()

	installPlan(t, "serve.cache.save:hit=1:action=error")
	if n, err := srv.SaveCache(); err == nil || n != 0 {
		t.Fatalf("faulted SaveCache = %d, %v; want error", n, err)
	}
	faultinject.Install(nil)
	if _, err := srv.SaveCache(); err != nil {
		t.Fatalf("retry SaveCache: %v", err)
	}

	srvB, _ := persistServer(t, dir, "m")
	installPlan(t, "serve.cache.load:hit=1:action=error")
	if n, err := srvB.LoadCache(); err == nil || n != 0 {
		t.Fatalf("faulted LoadCache = %d, %v; want error", n, err)
	}
	faultinject.Install(nil)
	if n, err := srvB.LoadCache(); err != nil || n == 0 {
		t.Fatalf("retry LoadCache = %d, %v", n, err)
	}
}
