package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/exp"
)

// Disk persistence of the cell cache: the suite's computed cells are
// snapshotted to one JSON file under Config.CacheDir, stamped with the
// model version. Cells are keyed by the cache's own "seed=N/<key>"
// strings, so a restart restores exactly the entries a fresh
// computation would have produced; a stamp mismatch — the engine's
// observable behaviour changed, by policy regenerating the golden
// fixture — rejects the whole file rather than replaying results the
// current model would not compute.

// cacheFileName is the single cache file inside CacheDir.
const cacheFileName = "cells.json"

// cacheFile is the on-disk format.
type cacheFile struct {
	Model string             `json:"model"`
	Cells []exp.CellSnapshot `json:"cells"`
}

// LoadCache restores the persisted cell cache, returning how many cells
// were installed. A missing file or empty CacheDir is a clean cold
// start (0, nil). A corrupt file or a model-version mismatch returns an
// error and installs nothing — the caller logs it and serves cold; the
// stale file is overwritten by the next SaveCache.
func (s *Server) LoadCache() (int, error) {
	if s.cfg.CacheDir == "" {
		return 0, nil
	}
	path := filepath.Join(s.cfg.CacheDir, cacheFileName)
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var f cacheFile
	if err := json.Unmarshal(b, &f); err != nil {
		return 0, fmt.Errorf("corrupt cache %s: %v", path, err)
	}
	if f.Model != s.cfg.ModelVersion {
		return 0, fmt.Errorf("stale cache %s: model %q, engine is %q; recomputing",
			path, f.Model, s.cfg.ModelVersion)
	}
	n := s.suite.Restore(f.Cells)
	s.restored.Add(int64(n))
	return n, nil
}

// SaveCache snapshots the suite's computed cells to CacheDir, returning
// how many were written. The write is atomic (temp file + rename), so a
// crash mid-save leaves the previous cache intact.
func (s *Server) SaveCache() (int, error) {
	if s.cfg.CacheDir == "" {
		return 0, nil
	}
	cells := s.suite.Snapshot()
	b, err := json.Marshal(cacheFile{Model: s.cfg.ModelVersion, Cells: cells})
	if err != nil {
		return 0, err
	}
	if err := os.MkdirAll(s.cfg.CacheDir, 0o755); err != nil {
		return 0, err
	}
	path := filepath.Join(s.cfg.CacheDir, cacheFileName)
	tmp, err := os.CreateTemp(s.cfg.CacheDir, cacheFileName+".tmp*")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return len(cells), nil
}
