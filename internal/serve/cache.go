package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/exp"
	"repro/internal/faultinject"
)

// Disk persistence of the cell cache: the suite's computed cells are
// snapshotted to one JSON-lines file under Config.CacheDir — a header
// carrying the format and model-version stamp, then one checksummed
// cell per line. Cells are keyed by the cache's own "seed=N/<key>"
// strings, so a restart restores exactly the entries a fresh
// computation would have produced. A stamp mismatch — the engine's
// observable behaviour changed, by policy regenerating the golden
// fixture — rejects the whole file rather than replaying results the
// current model would not compute; a corrupt tail (torn write, bit
// rot) salvages the valid prefix: every line whose checksum verifies
// is restored, the rest recomputes.

// Fault sites at the persistence boundary: injected errors stand in
// for I/O failures on load and save.
var (
	fiCacheLoad = faultinject.Register("serve.cache.load")
	fiCacheSave = faultinject.Register("serve.cache.save")
)

// cacheFileName is the single cache file inside CacheDir.
const cacheFileName = "cells.json"

// cacheFormat versions the on-disk layout (2 = checksummed
// JSON-lines; 1 was a single all-or-nothing JSON object).
const cacheFormat = 2

// maxCacheLineBytes bounds one cache line; a cell snapshot is a few
// hundred bytes, so the bound only guards against reading garbage.
const maxCacheLineBytes = 8 << 20

// cacheHeader is the file's first line.
type cacheHeader struct {
	Format int    `json:"format"`
	Model  string `json:"model"`
}

// cacheRecord is one cell line: the snapshot's exact JSON bytes plus
// their FNV-1a checksum, so a torn or corrupted line is detected
// before it reaches the suite.
type cacheRecord struct {
	Cell json.RawMessage `json:"cell"`
	Sum  string          `json:"sum"`
}

// cellSum is the checksum of one cell's marshaled bytes.
func cellSum(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// LoadCache restores the persisted cell cache, returning how many cells
// were installed. A missing file or empty CacheDir is a clean cold
// start (0, nil). A bad header or a model-version mismatch installs
// nothing; a corruption further in salvages the valid prefix — the
// cells restored before the first bad line stay installed (counted in
// Health.CacheSalvaged) and the error describes what was lost. In
// every error case the caller logs and serves (partially) cold; the
// next SaveCache overwrites the damaged file.
func (s *Server) LoadCache() (int, error) {
	if s.cfg.CacheDir == "" {
		return 0, nil
	}
	if err := fiCacheLoad.Fire(); err != nil {
		return 0, fmt.Errorf("cache load: %w", err)
	}
	path := filepath.Join(s.cfg.CacheDir, cacheFileName)
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), maxCacheLineBytes)
	if !sc.Scan() {
		return 0, fmt.Errorf("corrupt cache %s: empty file (%v)", path, sc.Err())
	}
	var hdr cacheHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Format != cacheFormat {
		return 0, fmt.Errorf("corrupt cache %s: unrecognized header", path)
	}
	if hdr.Model != s.cfg.ModelVersion {
		return 0, fmt.Errorf("stale cache %s: model %q, engine is %q; recomputing",
			path, hdr.Model, s.cfg.ModelVersion)
	}

	var cells []exp.CellSnapshot
	var corrupt error
	line := 1
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec cacheRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			corrupt = fmt.Errorf("line %d: %v", line, err)
			break
		}
		if got := cellSum(rec.Cell); got != rec.Sum {
			corrupt = fmt.Errorf("line %d: checksum %s, recorded %s", line, got, rec.Sum)
			break
		}
		var c exp.CellSnapshot
		if err := json.Unmarshal(rec.Cell, &c); err != nil {
			corrupt = fmt.Errorf("line %d: cell: %v", line, err)
			break
		}
		cells = append(cells, c)
	}
	if corrupt == nil && sc.Err() != nil {
		corrupt = fmt.Errorf("after line %d: %v", line, sc.Err())
	}
	n := s.suite.Restore(cells)
	s.restored.Add(int64(n))
	if corrupt != nil {
		s.salvaged.Add(1)
		return n, fmt.Errorf("corrupt cache %s: %v; salvaged the %d-cell valid prefix, recomputing the rest",
			path, corrupt, n)
	}
	return n, nil
}

// SaveCache snapshots the suite's computed cells to CacheDir, returning
// how many were written. The write is atomic (temp file + rename), so
// a crash mid-save leaves the previous cache intact; temp files a
// crashed save left behind are swept before writing (LoadCache never
// reads them — only the renamed cacheFileName is ever loaded).
func (s *Server) SaveCache() (int, error) {
	if s.cfg.CacheDir == "" {
		return 0, nil
	}
	if err := fiCacheSave.Fire(); err != nil {
		return 0, fmt.Errorf("cache save: %w", err)
	}
	cells := s.suite.Snapshot()
	var buf bytes.Buffer
	hdr, err := json.Marshal(cacheHeader{Format: cacheFormat, Model: s.cfg.ModelVersion})
	if err != nil {
		return 0, err
	}
	buf.Write(hdr)
	buf.WriteByte('\n')
	for _, c := range cells {
		cb, err := json.Marshal(c)
		if err != nil {
			return 0, err
		}
		rec, err := json.Marshal(cacheRecord{Cell: cb, Sum: cellSum(cb)})
		if err != nil {
			return 0, err
		}
		buf.Write(rec)
		buf.WriteByte('\n')
	}
	if err := os.MkdirAll(s.cfg.CacheDir, 0o755); err != nil {
		return 0, err
	}
	if stale, _ := filepath.Glob(filepath.Join(s.cfg.CacheDir, cacheFileName+".tmp*")); len(stale) > 0 {
		for _, p := range stale {
			os.Remove(p)
		}
	}
	path := filepath.Join(s.cfg.CacheDir, cacheFileName)
	tmp, err := os.CreateTemp(s.cfg.CacheDir, cacheFileName+".tmp*")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return len(cells), nil
}
