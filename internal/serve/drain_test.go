package serve

import (
	"context"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"
)

// TestMidSweepDrain pins graceful shutdown with a request in flight:
// cancelling Serve's context mid-sweep (the CLI does this on
// SIGTERM/SIGINT) stops the read loop but the already-accepted request
// still computes and writes its response before Serve returns — no
// request that was read is ever dropped.
func TestMidSweepDrain(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	// Slow the sweep down so the cancel lands mid-computation.
	installPlan(t, "exp.cell:hit=1:action=delay:delay=200ms")

	pr, pw := io.Pipe()
	var out syncBuffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, pr, &out) }()

	if _, err := io.WriteString(pw, sweepLine+"\n"); err != nil {
		t.Fatal(err)
	}
	// Wait until the server has accepted the request, then pull the
	// plug while the sweep is still computing.
	for srv.Stats().Requests == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not drain")
	}
	pw.Close()

	line := strings.TrimSpace(out.String())
	if line == "" {
		t.Fatal("in-flight request dropped on drain: no response written")
	}
	var resp Response
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatalf("bad drained response %q: %v", line, err)
	}
	if !resp.OK || resp.ID != "h" {
		t.Fatalf("drained response = %+v, want ok for id h", resp)
	}
}
