package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
)

const testScale = 256

func newTestServer(t *testing.T, cfg Config) (*Server, *exp.Suite) {
	t.Helper()
	s := exp.NewSuiteParallel(testScale, 2)
	srv := New(s, cfg)
	t.Cleanup(srv.Drain)
	return srv, s
}

func handle(t *testing.T, srv *Server, line string) Response {
	t.Helper()
	raw := srv.HandleLine(context.Background(), []byte(line))
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, raw)
	}
	return resp
}

// sweepLine is the herd/determinism request: one single-app policy
// sweep, the cheapest request that exercises the full compute path.
const sweepLine = `{"id":"h","op":"sweep","app":"swaptions"}`

// TestThunderingHerd: many concurrent identical requests must coalesce
// into one computation — each simulation cell computed exactly once —
// and every member of the herd receives byte-identical response lines.
// Runs under -race in CI.
func TestThunderingHerd(t *testing.T) {
	// Reference: the same request served alone, to learn the cell count
	// and the expected bytes (servers are deterministic for a fixed
	// seed/scale, so A and B must agree byte-for-byte).
	refSrv, refSuite := newTestServer(t, Config{})
	ref := refSrv.HandleLine(context.Background(), []byte(sweepLine))
	refCells := refSuite.CellsComputed()
	if refCells == 0 {
		t.Fatal("reference sweep computed no cells")
	}

	srv, suite := newTestServer(t, Config{})
	const herd = 32
	responses := make([][]byte, herd)
	var wg sync.WaitGroup
	for i := range responses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i] = srv.HandleLine(context.Background(), []byte(sweepLine))
		}(i)
	}
	wg.Wait()

	for i, r := range responses {
		if !bytes.Equal(r, responses[0]) {
			t.Fatalf("herd member %d got different bytes:\n%s\nvs\n%s", i, r, responses[0])
		}
	}
	if !bytes.Equal(responses[0], ref) {
		t.Fatalf("herd response differs from the solo reference:\n%s\nvs\n%s", responses[0], ref)
	}
	if got := suite.CellsComputed(); got != refCells {
		t.Fatalf("herd computed %d cells, want exactly %d (each cell once)", got, refCells)
	}
	hits, misses := suite.PoolStats()
	if hits+misses != uint64(refCells) {
		t.Fatalf("pool leases %d+%d != %d cells: a cell ran more than once", hits, misses, refCells)
	}
	st := srv.Stats()
	if st.Requests != herd {
		t.Fatalf("requests = %d, want %d", st.Requests, herd)
	}
	if st.Coalesced != herd-1 {
		t.Fatalf("coalesced = %d, want %d (one leader)", st.Coalesced, herd-1)
	}

	// A second wave replays the retained flight: zero new cells.
	again := srv.HandleLine(context.Background(), []byte(sweepLine))
	if !bytes.Equal(again, responses[0]) {
		t.Fatal("replayed request returned different bytes")
	}
	if got := suite.CellsComputed(); got != refCells {
		t.Fatalf("replay recomputed cells: %d != %d", got, refCells)
	}
}

// TestServeStdio drives the full JSON-lines loop: interleaved valid,
// empty, malformed and oversized lines, responses matched by id, EOF
// drains cleanly.
func TestServeStdio(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	var in bytes.Buffer
	in.WriteString(`{"id":"a","op":"policies"}` + "\n")
	in.WriteString("\n")                                        // blank lines are skipped
	in.WriteString("   \r\n")                                   // whitespace too
	in.WriteString("not json\n")                                // parse error, service stays up
	in.WriteString(strings.Repeat("x", maxLineBytes+10) + "\n") // overflow
	in.WriteString(`{"id":"b","op":"stats"}` + "\n")
	in.WriteString(`{"id":"c","op":"stats"}`) // final line without newline

	var out syncBuffer
	if err := srv.Serve(context.Background(), &in, &out); err != nil {
		t.Fatalf("Serve: %v", err)
	}

	byID := map[string]Response{}
	var errorCodes []string
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var resp Response
		if err := json.Unmarshal([]byte(line), &resp); err != nil {
			t.Fatalf("bad response line %q: %v", line, err)
		}
		if resp.Error != nil {
			errorCodes = append(errorCodes, resp.Error.Code)
		}
		byID[resp.ID] = resp
	}
	for _, id := range []string{"a", "b", "c"} {
		if !byID[id].OK {
			t.Errorf("request %q failed: %+v", id, byID[id].Error)
		}
	}
	want := map[string]bool{"parse": true, "overflow": true}
	for _, c := range errorCodes {
		delete(want, c)
	}
	if len(want) != 0 {
		t.Errorf("missing error codes %v in %v", want, errorCodes)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer: Serve writes responses
// from concurrent handlers.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestBadRequests: every malformed or invalid request yields a
// structured error with the right code — never a panic, never an exit.
func TestBadRequests(t *testing.T) {
	srv, suite := newTestServer(t, Config{})
	cases := []struct {
		name, line, code string
	}{
		{"empty object", `{}`, "bad_request"},
		{"unknown op", `{"op":"frobnicate"}`, "bad_request"},
		{"unknown field", `{"op":"stats","bogus":1}`, "parse"},
		{"trailing garbage", `{"op":"stats"} extra`, "parse"},
		{"two objects", `{"op":"stats"}{"op":"stats"}`, "parse"},
		{"non-object", `[1,2,3]`, "parse"},
		{"null", `null`, "bad_request"}, // decodes to the zero request: missing op
		{"unknown app", `{"op":"sweep","app":"nope"}`, "bad_request"},
		{"app and apps", `{"op":"sweep","app":"cg.C","apps":["sp.C"]}`, "bad_request"},
		{"sweep without app", `{"op":"sweep"}`, "bad_request"},
		{"negative seeds", `{"op":"sweep","app":"cg.C","seeds":-1}`, "bad_request"},
		{"seeds over cap", fmt.Sprintf(`{"op":"sweep","app":"cg.C","seeds":%d}`, maxSeeds+1), "bad_request"},
		{"bind and seeds", `{"op":"sweep","app":"cg.C","bind":true,"seeds":2}`, "bad_request"},
		{"bind and apps", `{"op":"sweep","apps":["cg.C","sp.C"],"bind":true}`, "bad_request"},
		{"sweep with target", `{"op":"sweep","app":"cg.C","target":"xen"}`, "bad_request"},
		{"advise bad target", `{"op":"advise","target":"windows"}`, "bad_request"},
		{"advise with bind", `{"op":"advise","bind":true}`, "bad_request"},
		{"stats with params", `{"op":"stats","app":"cg.C"}`, "bad_request"},
		{"policies with md", `{"op":"policies","md":true}`, "bad_request"},
		{"long id", `{"op":"stats","id":"` + strings.Repeat("i", maxIDLen+1) + `"}`, "bad_request"},
	}
	for _, tc := range cases {
		resp := handle(t, srv, tc.line)
		if resp.OK || resp.Error == nil {
			t.Errorf("%s: want error, got ok:\n%s", tc.name, tc.line)
			continue
		}
		if resp.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q (%s)", tc.name, resp.Error.Code, tc.code, resp.Error.Message)
		}
	}
	if got := suite.CellsComputed(); got != 0 {
		t.Errorf("bad requests computed %d cells", got)
	}
}

// TestRequestTimeout: an expired context yields a structured timeout
// error, the computation finishes in the background, and the retry is
// served from the completed flight even though the context is still
// expired (completed work is preferred over the deadline).
func TestRequestTimeout(t *testing.T) {
	srv, _ := newTestServer(t, Config{Timeout: time.Nanosecond})
	resp := handle(t, srv, sweepLine)
	if resp.OK || resp.Error == nil || resp.Error.Code != "timeout" {
		t.Fatalf("want timeout error, got %+v", resp)
	}
	srv.Drain() // let the abandoned computation land in the flight
	resp = handle(t, srv, sweepLine)
	if !resp.OK {
		t.Fatalf("retry after drain failed: %+v", resp.Error)
	}
}

// TestHTTPHandler: the HTTP face carries the same protocol, one request
// per POST body, with error codes mapped to statuses.
func TestHTTPHandler(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/rpc", strings.NewReader(`{"id":"q","op":"stats"}`)))
	if rec.Code != 200 {
		t.Fatalf("stats status %d, want 200", rec.Code)
	}
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || !resp.OK || resp.ID != "q" {
		t.Fatalf("bad stats response: %v %s", err, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/rpc", strings.NewReader(`{"op":"nope"}`)))
	if rec.Code != 400 {
		t.Fatalf("bad-request status %d, want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/rpc", nil))
	if rec.Code != 405 {
		t.Fatalf("GET status %d, want 405", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/rpc", strings.NewReader(strings.Repeat("x", maxLineBytes+10))))
	if rec.Code != 400 {
		t.Fatalf("overflow status %d, want 400", rec.Code)
	}
}

// TestAdviseAndMarkdown: the advise op works end to end and md selects
// the Markdown rendering.
func TestAdviseAndMarkdown(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	resp := handle(t, srv, `{"id":"a","op":"advise","app":"swaptions","md":true}`)
	if !resp.OK {
		t.Fatalf("advise failed: %+v", resp.Error)
	}
	var result struct {
		Tables []TableJSON `json:"tables"`
	}
	if err := json.Unmarshal(resp.Result, &result); err != nil {
		t.Fatal(err)
	}
	if len(result.Tables) != 1 {
		t.Fatalf("advise returned %d tables, want 1", len(result.Tables))
	}
	tb := result.Tables[0]
	if tb.ID != "advise" || !strings.HasPrefix(tb.Text, "### advise:") {
		t.Fatalf("unexpected advise table: id=%q text=%q…", tb.ID, tb.Text[:40])
	}
	if len(tb.Rows) != 1 || tb.Rows[0][0] != "swaptions" {
		t.Fatalf("unexpected advise rows: %v", tb.Rows)
	}
}
