package serve

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exp"
)

// persistServer builds a server with its own fresh suite over dir.
func persistServer(t *testing.T, dir, model string) (*Server, *exp.Suite) {
	t.Helper()
	s := exp.NewSuiteParallel(testScale, 2)
	srv := New(s, Config{CacheDir: dir, ModelVersion: model})
	t.Cleanup(srv.Drain)
	return srv, s
}

// TestCachePersistenceRoundTrip pins the warm-restart contract: a
// server restarted over the same cache dir serves byte-identical
// results without recomputing a single cell, and a model-version flip
// rejects the stale cache and recomputes from scratch.
func TestCachePersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// Cold server: compute, then persist on the way out (as the CLI
	// does after drain).
	srvA, suiteA := persistServer(t, dir, "model-1")
	respA := srvA.HandleLine(context.Background(), []byte(sweepLine))
	cells := suiteA.CellsComputed()
	if cells == 0 {
		t.Fatal("cold sweep computed no cells")
	}
	srvA.Drain()
	if n, err := srvA.SaveCache(); err != nil || n != int(cells) {
		t.Fatalf("SaveCache = %d, %v; want %d cells", n, err, cells)
	}

	// Warm restart: every cell restored, zero computed, same bytes.
	srvB, suiteB := persistServer(t, dir, "model-1")
	if n, err := srvB.LoadCache(); err != nil || n != int(cells) {
		t.Fatalf("LoadCache = %d, %v; want %d cells", n, err, cells)
	}
	respB := srvB.HandleLine(context.Background(), []byte(sweepLine))
	if !bytes.Equal(respA, respB) {
		t.Fatalf("warm response differs from cold:\n%s\nvs\n%s", respA, respB)
	}
	if got := suiteB.CellsComputed(); got != 0 {
		t.Fatalf("warm restart recomputed %d cells", got)
	}
	if st := srvB.Stats(); st.CellsRestored != cells {
		t.Fatalf("stats report %d restored cells, want %d", st.CellsRestored, cells)
	}

	// Model flip: the stale cache is rejected, everything recomputes,
	// and the results still match bit-for-bit (the model did not
	// actually change — only its stamp did).
	srvC, suiteC := persistServer(t, dir, "model-2")
	n, err := srvC.LoadCache()
	if n != 0 || err == nil || !strings.Contains(err.Error(), "model") {
		t.Fatalf("stale cache not rejected: n=%d err=%v", n, err)
	}
	respC := srvC.HandleLine(context.Background(), []byte(sweepLine))
	if got := suiteC.CellsComputed(); got != cells {
		t.Fatalf("after rejection computed %d cells, want %d", got, cells)
	}
	if !bytes.Equal(respA, respC) {
		t.Fatal("recomputed response differs from the original")
	}

	// The next save overwrites the stale file under the new stamp.
	if _, err := srvC.SaveCache(); err != nil {
		t.Fatal(err)
	}
	srvD, suiteD := persistServer(t, dir, "model-2")
	if n, err := srvD.LoadCache(); err != nil || n != int(cells) {
		t.Fatalf("reload after restamp = %d, %v; want %d", n, err, cells)
	}
	srvD.HandleLine(context.Background(), []byte(sweepLine))
	if got := suiteD.CellsComputed(); got != 0 {
		t.Fatalf("restamped warm start recomputed %d cells", got)
	}
}

// TestCacheCornerCases: empty dir config is a no-op, a missing file is
// a clean cold start, and a corrupt file is rejected without killing
// the server.
func TestCacheCornerCases(t *testing.T) {
	srv, _ := persistServer(t, "", "m")
	if n, err := srv.LoadCache(); n != 0 || err != nil {
		t.Fatalf("no cache dir: LoadCache = %d, %v", n, err)
	}
	if n, err := srv.SaveCache(); n != 0 || err != nil {
		t.Fatalf("no cache dir: SaveCache = %d, %v", n, err)
	}

	dir := t.TempDir()
	srv2, _ := persistServer(t, dir, "m")
	if n, err := srv2.LoadCache(); n != 0 || err != nil {
		t.Fatalf("missing file: LoadCache = %d, %v", n, err)
	}
	if err := os.WriteFile(filepath.Join(dir, cacheFileName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := srv2.LoadCache(); n != 0 || err == nil {
		t.Fatalf("corrupt file: LoadCache = %d, %v; want rejection", n, err)
	}
}
