package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzDecodeRequest hammers the protocol decoder: whatever bytes arrive
// on a line, the decoder must return either a normalized request or a
// structured error — never panic, never hang — and the error must
// marshal into a single well-formed response line (no embedded newline,
// so the JSON-lines framing survives hostile ids). CI runs a short
// -fuzztime smoke of this target on every push.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		// Valid requests, every op and parameter.
		`{"op":"stats"}`,
		`{"op":"policies"}`,
		`{"id":"1","op":"sweep","app":"cg.C"}`,
		`{"id":"2","op":"sweep","apps":["cg.C","sp.C"],"seeds":3,"md":true}`,
		`{"op":"sweep","app":"all"}`,
		`{"op":"sweep","app":"cg.C","bind":true}`,
		`{"op":"advise"}`,
		`{"op":"advise","apps":["facesim"],"target":"linux"}`,
		// Truncated and malformed.
		`{"op":"swe`,
		`{"op":"sweep","app":`,
		`{`,
		``,
		`null`,
		`true`,
		`42`,
		`"sweep"`,
		`[{"op":"stats"}]`,
		`{"op":"stats"}{"op":"stats"}`,
		`{"op":"stats"} trailing`,
		// Hostile: unknown fields, wrong types, deep nesting, control
		// characters and newlines in strings, huge numbers, long ids.
		`{"op":"stats","evil":{"a":[[[[[[[[{"b":1}]]]]]]]]}}`,
		`{"op":"sweep","app":123}`,
		`{"op":"sweep","app":"cg.C","seeds":"three"}`,
		`{"op":"sweep","app":"cg.C","seeds":99999999999999999999}`,
		`{"id":"a\nb","op":"stats"}`,
		`{"id":"` + strings.Repeat("x", 300) + `","op":"stats"}`,
		"{\"op\":\"\x00\"}",
		"{\"op\":\"stats\"}\r",
		`{"apps":["all"],"op":"sweep"}`,
		`{"op":"sweep","apps":[]}`,
		`{"op":"sweep","apps":["cg.C","nope"]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		req, errInfo := decodeRequest(line)
		if errInfo != nil {
			if errInfo.Code == "" || errInfo.Message == "" {
				t.Fatalf("unstructured error %+v for %q", errInfo, line)
			}
			resp := marshalResponse(req.ID, nil, errInfo)
			if bytes.IndexByte(resp, '\n') >= 0 {
				t.Fatalf("error response breaks line framing: %q", resp)
			}
			var decoded Response
			if err := json.Unmarshal(resp, &decoded); err != nil {
				t.Fatalf("error response is not JSON: %v: %q", err, resp)
			}
			if decoded.OK || decoded.Error == nil {
				t.Fatalf("error response not marked as error: %q", resp)
			}
			return
		}
		// Accepted requests decode deterministically: same line, same
		// normalized request, same coalescing key.
		req2, errInfo2 := decodeRequest(line)
		if errInfo2 != nil {
			t.Fatalf("second decode of %q errored: %+v", line, errInfo2)
		}
		if req.key() != req2.key() {
			t.Fatalf("unstable key for %q: %q vs %q", line, req.key(), req2.key())
		}
		if len(req.Apps) == 0 && (req.Op == "sweep" || req.Op == "advise") {
			t.Fatalf("normalized %s request has no apps: %q", req.Op, line)
		}
		if bytes.IndexByte(marshalResponse(req.ID, nil, nil), '\n') >= 0 {
			t.Fatalf("ok response breaks line framing for id %q", req.ID)
		}
	})
}
