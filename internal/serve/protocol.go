// Package serve runs the experiment suite as a resident service: one
// warm exp.Suite — scheduler, warm machine pool and seed-keyed result
// cache — behind a JSON-lines request/response protocol on an arbitrary
// reader/writer pair (the CLI wires stdin/stdout) and, optionally, an
// HTTP handler carrying the same protocol one request per POST body.
//
// One request is one JSON object on one line; one response is one JSON
// object on one line. Requests are matched to responses by the caller's
// opaque id — response order across concurrent requests is unspecified.
// Malformed or invalid input yields a structured error response, never a
// process exit: the paper's tables are served to many callers from one
// process, so a hostile line must not take the warm cache with it.
//
// Identical concurrent requests coalesce: the first becomes the leader
// and computes, the rest wait for its bytes, and underneath the suite's
// sharded singleflight guarantees each simulation cell is computed
// exactly once. Results are bit-for-bit deterministic for the server's
// (seed, scale), so a coalesced response is byte-identical to what any
// of the herd would have computed alone.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	xennuma "repro"
	"repro/internal/advisor"
	"repro/internal/exp"
)

// Request is one line of the protocol. Unknown fields are rejected, so
// a typo fails loudly instead of silently running a default sweep.
type Request struct {
	// ID is the caller's opaque correlation token, echoed verbatim in
	// the response. Optional; at most maxIDLen bytes.
	ID string `json:"id,omitempty"`
	// Op selects the operation: "sweep", "advise", "policies", "stats",
	// "health".
	Op string `json:"op"`
	// App / Apps name the applications a sweep or advise covers. App is
	// shorthand for a single-element Apps; "all" expands to every
	// workload. Exactly one of the two may be set for sweep.
	App  string   `json:"app,omitempty"`
	Apps []string `json:"apps,omitempty"`
	// Seeds repeats a sweep across N consecutive seeds (the
	// seed-stability table); 0 and 1 mean a single-seed sweep.
	Seeds int `json:"seeds,omitempty"`
	// Bind selects the per-node bind:<n> placement sweep instead of the
	// policy-registry sweep. Single app only; excludes seeds.
	Bind bool `json:"bind,omitempty"`
	// Markdown renders the response tables as Markdown instead of ASCII.
	Markdown bool `json:"md,omitempty"`
	// Target selects the advise platform: "xen" (default) or "linux".
	Target string `json:"target,omitempty"`
}

// Response is one line of the protocol's answer stream.
type Response struct {
	ID string `json:"id,omitempty"`
	OK bool   `json:"ok"`
	// Error is set when OK is false; the process never exits on a bad
	// request.
	Error *ErrorInfo `json:"error,omitempty"`
	// Result is the op-specific payload: {"tables": [...]} for
	// sweep/advise, {"policies": [...]}, {"stats": {...}}.
	Result json.RawMessage `json:"result,omitempty"`
}

// ErrorInfo is a structured protocol error.
type ErrorInfo struct {
	// Code is machine-readable: "parse", "bad_request", "overflow",
	// "timeout", "unavailable" or "internal".
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS, set on "unavailable", hints how long the caller
	// should back off before retrying (the HTTP face mirrors it in a
	// Retry-After header).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

func errorf(code, format string, args ...any) *ErrorInfo {
	return &ErrorInfo{Code: code, Message: fmt.Sprintf(format, args...)}
}

// TableJSON is one rendered experiment table: the structured cells plus
// Text, the exact ASCII (or Markdown) rendering the one-shot CLI would
// print — so served output is byte-comparable to `xnuma sweep`.
type TableJSON struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
	Text   string     `json:"text"`
}

func toTableJSON(t *exp.Table, markdown bool) TableJSON {
	text := t.Render()
	if markdown {
		text = t.RenderMarkdown()
	}
	return TableJSON{ID: t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes, Text: text}
}

// Protocol limits: a line (request) is capped so a hostile client
// cannot balloon the resident process, and ids stay short enough to
// echo harmlessly.
const (
	maxLineBytes = 1 << 20
	maxIDLen     = 256
	maxSeeds     = 64
)

// decodeRequest parses and validates one request line. It returns a
// structured error — never panics — for malformed JSON, unknown fields
// or ops, unknown applications and invalid parameter combinations; on
// error the partially decoded ID (if any) is still usable for the
// response envelope. The returned request is normalized: App folded
// into Apps, "all" expanded, defaults applied — two spellings of the
// same question normalize to the same coalescing key.
func decodeRequest(line []byte) (Request, *ErrorInfo) {
	var req Request
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, errorf("parse", "invalid request: %v", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return req, errorf("parse", "trailing data after request object")
	}
	if len(req.ID) > maxIDLen {
		req.ID = ""
		return req, errorf("bad_request", "id longer than %d bytes", maxIDLen)
	}
	if err := req.normalize(); err != nil {
		return req, err
	}
	return req, nil
}

// normalize validates op-specific parameters and canonicalizes the
// request in place.
func (r *Request) normalize() *ErrorInfo {
	switch r.Op {
	case "sweep":
		if err := r.resolveApps(false); err != nil {
			return err
		}
		if r.Seeds < 0 {
			return errorf("bad_request", "seeds must be >= 0")
		}
		if r.Seeds > maxSeeds {
			return errorf("bad_request", "seeds capped at %d", maxSeeds)
		}
		if r.Seeds == 0 {
			r.Seeds = 1
		}
		if r.Bind && r.Seeds > 1 {
			return errorf("bad_request", "bind and seeds are mutually exclusive")
		}
		if r.Bind && len(r.Apps) != 1 {
			return errorf("bad_request", "bind sweeps exactly one app")
		}
		if r.Target != "" {
			return errorf("bad_request", "target applies to advise only")
		}
	case "advise":
		if r.Bind || r.Seeds != 0 {
			return errorf("bad_request", "bind/seeds apply to sweep only")
		}
		r.Seeds = 1
		if err := r.resolveApps(true); err != nil {
			return err
		}
		switch r.Target {
		case "":
			r.Target = "xen"
		case "xen", "linux":
		default:
			return errorf("bad_request", "unknown target %q (want xen or linux)", r.Target)
		}
	case "policies", "stats", "health":
		if r.App != "" || len(r.Apps) > 0 || r.Seeds != 0 || r.Bind || r.Markdown || r.Target != "" {
			return errorf("bad_request", "%s takes no parameters", r.Op)
		}
	case "":
		return errorf("bad_request", "missing op")
	default:
		return errorf("bad_request", "unknown op %q (want sweep, advise, policies, stats or health)", r.Op)
	}
	return nil
}

// resolveApps folds App into Apps, expands "all", applies the advise
// default set and rejects unknown names.
func (r *Request) resolveApps(defaultApps bool) *ErrorInfo {
	switch {
	case r.App != "" && len(r.Apps) > 0:
		return errorf("bad_request", "app and apps are mutually exclusive")
	case r.App != "":
		r.Apps = []string{r.App}
		r.App = ""
	case len(r.Apps) == 0:
		if !defaultApps {
			return errorf("bad_request", "missing app")
		}
		r.Apps = append([]string(nil), advisor.DefaultApps...)
	}
	if len(r.Apps) == 1 && r.Apps[0] == "all" {
		r.Apps = exp.Apps()
		return nil
	}
	for _, app := range r.Apps {
		if !knownApps[app] {
			return errorf("bad_request", "unknown application %q", app)
		}
	}
	return nil
}

// knownApps is the workload set, fixed at process start.
var knownApps = func() map[string]bool {
	m := make(map[string]bool)
	for _, a := range xennuma.Apps() {
		m[a] = true
	}
	return m
}()

// key is the coalescing identity of a normalized request: everything
// that shapes the result payload except the caller's id. Two requests
// with equal keys receive byte-identical Result payloads.
func (r *Request) key() string {
	return fmt.Sprintf("%s|md=%v|bind=%v|seeds=%d|target=%s|apps=%s",
		r.Op, r.Markdown, r.Bind, r.Seeds, r.Target, strings.Join(r.Apps, ","))
}

// cacheable reports whether the op's payload is deterministic for the
// server's lifetime (and so may be coalesced and replayed): sweeps and
// advice are pure functions of (seed, scale, request); stats changes
// between calls and policies is too cheap to bother.
func (r *Request) cacheable() bool { return r.Op == "sweep" || r.Op == "advise" }

// marshalResponse renders one response line (without the trailing
// newline). Marshaling a Response cannot fail — every field is a plain
// string/bool/RawMessage — but a defensive fallback keeps the protocol
// alive even if that invariant breaks.
func marshalResponse(id string, result json.RawMessage, errInfo *ErrorInfo) []byte {
	b, err := json.Marshal(Response{ID: id, OK: errInfo == nil, Error: errInfo, Result: result})
	if err != nil {
		b, _ = json.Marshal(Response{OK: false, Error: errorf("internal", "response marshal failed")})
	}
	return b
}
