package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

// The chaos harness: randomized-but-seeded fault schedules replayed
// against a live server. The invariant under ANY schedule is the
// robustness contract this PR hardens the stack to meet:
//
//  1. every response is either a structured protocol error or
//     byte-identical to the fault-free reference — never garbage,
//     never a dropped request;
//  2. the process survives (panic actions included);
//  3. after disarming, a warm retry of every request matches the
//     reference exactly — no fault leaves poison behind;
//  4. the degradation counters account for every injected fault:
//     pool drops == fired(pool.reset) + fired(xen.replay), suite cell
//     errors == fired(exp.cell).
//
// Schedules derive from a fixed seed via splitmix64 (no math/rand —
// the detrand analyzer's discipline extends to the chaos tests, and a
// failing schedule is replayable from its round number alone).

// splitmix64 is the test's seeded PRNG.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmix64) intn(n int) int { return int(s.next() % uint64(n)) }

// chaosSite describes one injectable site and the actions a schedule
// may arm there. Delay is excluded where it would change no behaviour
// worth asserting and included at the request boundary.
type chaosSite struct {
	name    string
	actions []string
}

var chaosSites = []chaosSite{
	{"pool.reset", []string{faultinject.ActionError, faultinject.ActionPanic}},
	{"xen.replay", []string{faultinject.ActionError, faultinject.ActionPanic}},
	{"exp.cell", []string{faultinject.ActionError, faultinject.ActionPanic}},
	{"serve.request", []string{faultinject.ActionError, faultinject.ActionPanic, faultinject.ActionDelay}},
}

// chaosPlan draws one random-but-deterministic fault schedule: up to
// maxRules rules across the sites, hits in [1, maxHit].
func chaosPlan(t *testing.T, rng *splitmix64) *faultinject.Plan {
	t.Helper()
	const maxRules, maxHit = 6, 15
	used := map[string]bool{}
	var rules []string
	for n := 1 + rng.intn(maxRules); len(rules) < n; {
		site := chaosSites[rng.intn(len(chaosSites))]
		hit := 1 + rng.intn(maxHit)
		key := fmt.Sprintf("%s:%d", site.name, hit)
		if used[key] {
			continue
		}
		used[key] = true
		action := site.actions[rng.intn(len(site.actions))]
		rule := fmt.Sprintf("%s:hit=%d:action=%s", site.name, hit, action)
		if action == faultinject.ActionDelay {
			rule += fmt.Sprintf(":delay=%dms", 1+rng.intn(5))
		}
		rules = append(rules, rule)
	}
	plan, err := faultinject.Parse(strings.Join(rules, ","))
	if err != nil {
		t.Fatalf("generated invalid plan %v: %v", rules, err)
	}
	return plan
}

// chaosCodes is the full error taxonomy a chaos response may carry.
var chaosCodes = map[string]bool{
	"parse": true, "bad_request": true, "overflow": true,
	"timeout": true, "unavailable": true, "internal": true,
}

// TestChaosSchedules drives seeded fault schedules through concurrent
// request volleys and checks the robustness contract after each round
// and after disarming.
func TestChaosSchedules(t *testing.T) {
	apps := []string{"swaptions", "streamcluster", "fluidanimate"}
	var lines []string
	for _, app := range apps {
		lines = append(lines,
			fmt.Sprintf(`{"id":"s-%s","op":"sweep","app":"%s"}`, app, app),
			fmt.Sprintf(`{"id":"a-%s","op":"advise","app":"%s"}`, app, app),
		)
	}
	lines = append(lines, `{"id":"p","op":"policies"}`)

	// Per-round exclusive requests: a fresh seed sweep each round, so
	// every round executes new simulation cells (and so leases, resets
	// and cell computations for its schedule to fault) instead of
	// serving round 0's warm cache.
	const rounds = 3
	extras := make([]string, rounds)
	for r := range extras {
		extras[r] = fmt.Sprintf(`{"id":"x%d","op":"sweep","app":"swaptions","seeds":%d}`, r, r+2)
	}

	// Fault-free reference bytes for every line, from a clean server.
	faultinject.Install(nil)
	refSrv, _ := newTestServer(t, Config{})
	ref := make(map[string][]byte, len(lines)+rounds)
	for _, l := range append(append([]string{}, lines...), extras...) {
		ref[l] = refSrv.HandleLine(context.Background(), []byte(l))
	}
	refSrv.Drain()

	srv, suite := newTestServer(t, Config{})
	rng := new(splitmix64)
	*rng = 0xC0FFEE
	fired := map[string]uint64{}

	for round := 0; round < rounds; round++ {
		plan := chaosPlan(t, rng)
		faultinject.Install(plan)
		t.Logf("round %d: %s", round, plan.Spec())

		// One concurrent volley: the shared lines plus the round's
		// fresh seed sweep, ×2 (to exercise coalescing under faults)
		// in schedule-drawn order.
		base := append(append([]string{}, lines...), extras[round])
		volley := append(append([]string{}, base...), base...)
		for i := range volley {
			j := rng.intn(i + 1)
			volley[i], volley[j] = volley[j], volley[i]
		}
		responses := make([][]byte, len(volley))
		var wg sync.WaitGroup
		for i, l := range volley {
			wg.Add(1)
			go func(i int, l string) {
				defer wg.Done()
				responses[i] = srv.HandleLine(context.Background(), []byte(l))
			}(i, l)
		}
		wg.Wait()
		srv.Drain()

		for i, raw := range responses {
			var resp Response
			if err := json.Unmarshal(raw, &resp); err != nil {
				t.Fatalf("round %d: response %d is not JSON: %v\n%s", round, i, err, raw)
			}
			switch {
			case resp.OK:
				if !bytes.Equal(raw, ref[volley[i]]) {
					t.Fatalf("round %d: ok response diverged from fault-free reference for %s:\n%s\nvs\n%s",
						round, volley[i], raw, ref[volley[i]])
				}
			case resp.Error == nil || !chaosCodes[resp.Error.Code]:
				t.Fatalf("round %d: response neither ok nor structured: %s", round, raw)
			}
		}
		faultinject.Install(nil)
		for _, s := range plan.SiteNames() {
			fired[s] += plan.Fired(s)
		}
	}

	// Every injected fault is accounted for by exactly one degradation
	// counter.
	if drops := suite.PoolResetDrops(); drops != fired["pool.reset"]+fired["xen.replay"] {
		t.Errorf("pool drops = %d, want fired(pool.reset)+fired(xen.replay) = %d+%d",
			drops, fired["pool.reset"], fired["xen.replay"])
	}
	if errs := suite.CellErrors(); errs != int64(fired["exp.cell"]) {
		t.Errorf("cell errors = %d, want fired(exp.cell) = %d", errs, fired["exp.cell"])
	}
	var names []string
	for s, n := range fired {
		if n > 0 {
			names = append(names, fmt.Sprintf("%s×%d", s, n))
		}
	}
	sort.Strings(names)
	t.Logf("fired: %s", strings.Join(names, " "))

	// Warm retry with faults disarmed: everything matches the
	// reference bit for bit — the chaos left no poison behind.
	for _, l := range lines {
		got := srv.HandleLine(context.Background(), []byte(l))
		if !bytes.Equal(got, ref[l]) {
			t.Fatalf("post-chaos retry diverged for %s:\n%s\nvs\n%s", l, got, ref[l])
		}
	}
	srv.Drain()
	if h := srv.Health(); h.Status == "degraded" {
		t.Logf("health after chaos: %+v", h)
	}
}
