// Package metrics accumulates the measurements the paper reports:
// per-node memory-access counts and their imbalance (relative standard
// deviation, Table 1), interconnect-link utilization (Table 1), memory
// controller utilization, and completion-time accounting.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/numa"
)

// CacheLine is the number of bytes moved per memory access.
const CacheLine = 64

// LinkBytesPerAccess is the interconnect cost of one remote access:
// the cache line plus request, probe and coherence packets (HT3 carries
// roughly 1.5× the payload for a remote read on the Opteron).
const LinkBytesPerAccess = 96

// EpochLoad aggregates the traffic of one simulation epoch: memory
// accesses between node pairs plus DMA byte streams, and derives the
// utilizations the latency model consumes.
type EpochLoad struct {
	topo *numa.Topology
	// accesses[src][dst] counts LLC-missing memory accesses issued by
	// CPUs of src against the memory of dst during the epoch.
	accesses [][]float64
	// dmaBytes[dst] counts DMA bytes written to / read from node dst.
	dmaBytes []float64
	// dmaLink[linkIdx] counts DMA bytes crossing each link.
	linkBytes []float64

	epochSeconds float64
	ctrlBW       float64 // bytes/s per memory controller
}

// NewEpochLoad returns a load accumulator for one epoch of the given
// duration. ctrlBW is the per-controller peak bandwidth in bytes/s
// (13 GiB/s on AMD48, §5.1).
func NewEpochLoad(topo *numa.Topology, epochSeconds, ctrlBW float64) *EpochLoad {
	n := topo.NumNodes()
	l := &EpochLoad{
		topo:         topo,
		accesses:     make([][]float64, n),
		dmaBytes:     make([]float64, n),
		linkBytes:    make([]float64, len(topo.Links)),
		epochSeconds: epochSeconds,
		ctrlBW:       ctrlBW,
	}
	for i := range l.accesses {
		l.accesses[i] = make([]float64, n)
	}
	return l
}

// Reset clears the accumulator for the next epoch.
//
//xnuma:noalloc
func (l *EpochLoad) Reset() {
	for i := range l.accesses {
		for j := range l.accesses[i] {
			l.accesses[i][j] = 0
		}
	}
	for i := range l.dmaBytes {
		l.dmaBytes[i] = 0
	}
	for i := range l.linkBytes {
		l.linkBytes[i] = 0
	}
}

// AddAccesses records n memory accesses from CPUs on src to memory on
// dst, charging the traversed links.
//
//xnuma:noalloc
func (l *EpochLoad) AddAccesses(src, dst numa.NodeID, n float64) {
	l.accesses[src][dst] += n
	if src != dst {
		bytes := n * LinkBytesPerAccess
		for _, li := range l.topo.RouteLinks(src, dst) {
			l.linkBytes[li] += bytes
		}
	}
}

// AddDMA records a DMA stream of the given bytes from the I/O bus on
// ioNode into memory on dst.
//
//xnuma:noalloc
func (l *EpochLoad) AddDMA(ioNode, dst numa.NodeID, bytes float64) {
	l.dmaBytes[dst] += bytes
	if ioNode != dst {
		for _, li := range l.topo.RouteLinks(ioNode, dst) {
			l.linkBytes[li] += bytes
		}
	}
}

// CtrlUtil returns the utilization of node's memory controller in [0,1].
//
//xnuma:noalloc
func (l *EpochLoad) CtrlUtil(node numa.NodeID) float64 {
	var bytes float64
	for src := range l.accesses {
		bytes += l.accesses[src][node] * CacheLine
	}
	bytes += l.dmaBytes[node]
	u := bytes / (l.ctrlBW * l.epochSeconds)
	if u > 1 {
		u = 1
	}
	return u
}

// FillCtrlUtil writes every node's controller utilization into dst
// (len = node count), letting per-epoch callers reuse one buffer.
//
//xnuma:noalloc
func (l *EpochLoad) FillCtrlUtil(dst []float64) {
	for n := range dst {
		dst[n] = l.CtrlUtil(numa.NodeID(n))
	}
}

// LinkUtil returns the utilization of link index li in [0,1].
//
//xnuma:noalloc
func (l *EpochLoad) LinkUtil(li int) float64 {
	u := l.linkBytes[li] / (l.topo.Links[li].BandwidthBps * l.epochSeconds)
	if u > 1 {
		u = 1
	}
	return u
}

// FillLinkUtil writes every link's utilization into dst (len = link
// count), letting per-epoch callers snapshot all links with one
// division each instead of re-deriving them per node pair.
//
//xnuma:noalloc
func (l *EpochLoad) FillLinkUtil(dst []float64) {
	for i := range dst {
		dst[i] = l.LinkUtil(i)
	}
}

// MaxLinkUtil returns the utilization of the most loaded link.
//
//xnuma:noalloc
func (l *EpochLoad) MaxLinkUtil() float64 {
	var max float64
	for i := range l.linkBytes {
		if u := l.LinkUtil(i); u > max {
			max = u
		}
	}
	return max
}

// PathLinkUtil returns the highest utilization among the links on the
// route from src to dst (0 when src == dst).
//
//xnuma:noalloc
func (l *EpochLoad) PathLinkUtil(src, dst numa.NodeID) float64 {
	var max float64
	for _, li := range l.topo.RouteLinks(src, dst) {
		if u := l.LinkUtil(li); u > max {
			max = u
		}
	}
	return max
}

// NodeAccesses returns the access count against node's memory this epoch.
//
//xnuma:noalloc
func (l *EpochLoad) NodeAccesses(node numa.NodeID) float64 {
	var n float64
	for src := range l.accesses {
		n += l.accesses[src][node]
	}
	return n
}

// RunStats accumulates whole-run measurements.
type RunStats struct {
	topo *numa.Topology
	// nodeAccesses accumulates accesses per destination node.
	nodeAccesses []float64
	// maxLinkUtilSum accumulates the per-epoch most-loaded-link
	// utilization, for the Table 1 interconnect-load metric.
	maxLinkUtilSum float64
	epochs         int

	RemoteAccesses float64
	TotalAccesses  float64
	PagesMigrated  uint64
	Hypercalls     uint64
	HypercallNanos float64
	IPIOverhead    float64 // seconds lost to virtualized IPIs
	IOSeconds      float64 // seconds spent waiting on I/O
}

// NewRunStats returns an empty accumulator.
func NewRunStats(topo *numa.Topology) *RunStats {
	return &RunStats{topo: topo, nodeAccesses: make([]float64, topo.NumNodes())}
}

// Observe folds one epoch's load into the run statistics.
//
//xnuma:noalloc
func (s *RunStats) Observe(l *EpochLoad) {
	for dst := 0; dst < s.topo.NumNodes(); dst++ {
		n := l.NodeAccesses(numa.NodeID(dst))
		s.nodeAccesses[dst] += n
		s.TotalAccesses += n
	}
	for src := range l.accesses {
		for dst, n := range l.accesses[src] {
			if src != dst {
				s.RemoteAccesses += n
			}
		}
	}
	s.maxLinkUtilSum += l.MaxLinkUtil()
	s.epochs++
}

// Imbalance returns the Table 1 imbalance metric: the relative standard
// deviation (in percent) around the average number of accesses per node.
func (s *RunStats) Imbalance() float64 {
	return RelStdDev(s.nodeAccesses)
}

// InterconnectLoad returns the Table 1 interconnect metric: the average
// over epochs of the utilization of the most loaded link, in percent.
func (s *RunStats) InterconnectLoad() float64 {
	if s.epochs == 0 {
		return 0
	}
	return 100 * s.maxLinkUtilSum / float64(s.epochs)
}

// LocalityRatio returns the fraction of accesses that were local.
func (s *RunStats) LocalityRatio() float64 {
	if s.TotalAccesses == 0 {
		return 1
	}
	return 1 - s.RemoteAccesses/s.TotalAccesses
}

// RelStdDev returns the relative standard deviation of xs in percent
// (100 * stddev / mean). It returns 0 for an empty or all-zero input.
func RelStdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if sum == 0 {
		return 0
	}
	mean := sum / float64(len(xs))
	var varsum float64
	for _, x := range xs {
		d := x - mean
		varsum += d * d
	}
	return 100 * math.Sqrt(varsum/float64(len(xs))) / mean
}

// ImbalanceClass is the paper's three-way classification (§3.5.2).
type ImbalanceClass int

const (
	ClassLow      ImbalanceClass = iota // first-touch imbalance <  85 %
	ClassModerate                       // 85 % – 130 %
	ClassHigh                           // > 130 %
)

func (c ImbalanceClass) String() string {
	switch c {
	case ClassLow:
		return "low"
	case ClassModerate:
		return "moderate"
	case ClassHigh:
		return "high"
	default:
		return fmt.Sprintf("ImbalanceClass(%d)", int(c))
	}
}

// Classify applies the paper's thresholds to a first-touch imbalance
// percentage.
func Classify(firstTouchImbalance float64) ImbalanceClass {
	switch {
	case firstTouchImbalance < 85:
		return ClassLow
	case firstTouchImbalance <= 130:
		return ClassModerate
	default:
		return ClassHigh
	}
}
