package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numa"
)

func testLoad(t *testing.T) (*numa.Topology, *EpochLoad) {
	t.Helper()
	topo := numa.AMD48()
	return topo, NewEpochLoad(topo, 0.005, 13*(1<<30))
}

func TestRelStdDev(t *testing.T) {
	if got := RelStdDev([]float64{1, 1, 1, 1}); got != 0 {
		t.Fatalf("uniform RSD = %v", got)
	}
	if got := RelStdDev(nil); got != 0 {
		t.Fatalf("empty RSD = %v", got)
	}
	if got := RelStdDev([]float64{0, 0}); got != 0 {
		t.Fatalf("zero RSD = %v", got)
	}
	// All mass on one of 8 nodes: RSD = √7 × 100 ≈ 264.6 % — the
	// paper's maximum imbalance (ep.D at 263 % is near this bound).
	xs := make([]float64, 8)
	xs[0] = 1000
	got := RelStdDev(xs)
	if math.Abs(got-264.575) > 0.01 {
		t.Fatalf("concentrated RSD = %v, want 264.575", got)
	}
}

// TestQuickRelStdDevBounds: the RSD of a non-negative distribution over
// n cells is bounded by √(n−1)·100.
func TestQuickRelStdDevBounds(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		got := RelStdDev(xs)
		limit := 100*math.Sqrt(float64(len(xs)-1)) + 1e-9
		return got >= 0 && got <= limit
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		imb  float64
		want ImbalanceClass
	}{
		{7, ClassLow}, {84.9, ClassLow},
		{85, ClassModerate}, {113, ClassModerate}, {130, ClassModerate},
		{131, ClassHigh}, {263, ClassHigh},
	}
	for _, c := range cases {
		if got := Classify(c.imb); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.imb, got, c.want)
		}
	}
}

func TestCtrlUtil(t *testing.T) {
	_, l := testLoad(t)
	// 13 GiB/s × 5 ms = 69.8 MB per epoch; at 64 B per access full
	// utilization is ~1.09M accesses.
	full := 13 * float64(1<<30) * 0.005 / CacheLine
	l.AddAccesses(0, 0, full/2)
	u := l.CtrlUtil(0)
	if u < 0.49 || u > 0.51 {
		t.Fatalf("CtrlUtil = %v, want 0.5", u)
	}
	l.AddAccesses(1, 0, full)
	if l.CtrlUtil(0) != 1 {
		t.Fatal("CtrlUtil not clamped at 1")
	}
	if l.CtrlUtil(1) != 0 {
		t.Fatal("unused controller loaded")
	}
}

func TestFillCtrlUtil(t *testing.T) {
	topo, l := testLoad(t)
	full := 13 * float64(1<<30) * 0.005 / CacheLine
	l.AddAccesses(0, 0, full/2)
	l.AddAccesses(1, 3, full/4)
	dst := make([]float64, topo.NumNodes())
	l.FillCtrlUtil(dst)
	for n := range dst {
		if want := l.CtrlUtil(numa.NodeID(n)); dst[n] != want {
			t.Fatalf("FillCtrlUtil[%d] = %v, want %v", n, dst[n], want)
		}
	}
	if dst[0] == 0 || dst[3] == 0 {
		t.Fatalf("loaded controllers read as idle: %v", dst)
	}
}

func TestLinkUtilOnlyRemote(t *testing.T) {
	_, l := testLoad(t)
	l.AddAccesses(0, 0, 1e6)
	if l.MaxLinkUtil() != 0 {
		t.Fatal("local accesses loaded a link")
	}
	l.AddAccesses(0, 7, 1e6)
	if l.MaxLinkUtil() <= 0 {
		t.Fatal("remote accesses loaded no link")
	}
}

func TestPathLinkUtil(t *testing.T) {
	topo, l := testLoad(t)
	l.AddAccesses(0, 7, 1e7)
	if got := l.PathLinkUtil(0, 0); got != 0 {
		t.Fatalf("self path util = %v", got)
	}
	if got := l.PathLinkUtil(0, 7); got <= 0 {
		t.Fatal("loaded path reports zero")
	}
	_ = topo
}

func TestDMALoadsControllerAndLinks(t *testing.T) {
	_, l := testLoad(t)
	l.AddDMA(6, 0, 1e8)
	if l.CtrlUtil(0) <= 0 {
		t.Fatal("DMA did not load the target controller")
	}
	if l.MaxLinkUtil() <= 0 {
		t.Fatal("cross-node DMA did not load links")
	}
}

func TestReset(t *testing.T) {
	_, l := testLoad(t)
	l.AddAccesses(0, 7, 1e6)
	l.AddDMA(6, 0, 1e8)
	l.Reset()
	if l.CtrlUtil(0) != 0 || l.MaxLinkUtil() != 0 || l.NodeAccesses(7) != 0 {
		t.Fatal("Reset left residual load")
	}
}

func TestRunStatsImbalance(t *testing.T) {
	topo, l := testLoad(t)
	s := NewRunStats(topo)
	// All accesses on node 0 → maximal imbalance.
	l.AddAccesses(1, 0, 1e6)
	s.Observe(l)
	if imb := s.Imbalance(); math.Abs(imb-264.575) > 0.1 {
		t.Fatalf("imbalance = %v", imb)
	}
	if s.LocalityRatio() != 0 {
		t.Fatalf("locality = %v, want 0 (all remote)", s.LocalityRatio())
	}
}

func TestRunStatsInterconnectLoadAveragesEpochs(t *testing.T) {
	topo, l := testLoad(t)
	s := NewRunStats(topo)
	l.AddAccesses(0, 7, 1e9) // saturating
	s.Observe(l)
	l.Reset()
	s.Observe(l) // idle epoch
	got := s.InterconnectLoad()
	if got < 49 || got > 51 {
		t.Fatalf("interconnect load = %v, want ~50 (one saturated + one idle epoch)", got)
	}
}

func TestRunStatsLocality(t *testing.T) {
	topo, l := testLoad(t)
	s := NewRunStats(topo)
	l.AddAccesses(0, 0, 750)
	l.AddAccesses(0, 1, 250)
	s.Observe(l)
	if loc := s.LocalityRatio(); math.Abs(loc-0.75) > 1e-9 {
		t.Fatalf("locality = %v, want 0.75", loc)
	}
}

func TestClassString(t *testing.T) {
	if ClassLow.String() != "low" || ClassModerate.String() != "moderate" || ClassHigh.String() != "high" {
		t.Fatal("class strings wrong")
	}
}
