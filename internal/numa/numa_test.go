package numa

import (
	"testing"
	"testing/quick"
)

func TestAMD48Shape(t *testing.T) {
	topo := AMD48()
	if got := topo.NumNodes(); got != 8 {
		t.Fatalf("nodes = %d, want 8", got)
	}
	// The cheap accessor must agree with the built topology at any scale.
	if AMD48Nodes != topo.NumNodes() || AMD48Nodes != AMD48Scaled(64).NumNodes() {
		t.Fatalf("AMD48Nodes = %d disagrees with the topology", AMD48Nodes)
	}
	if got := topo.NumCPUs(); got != 48 {
		t.Fatalf("CPUs = %d, want 48", got)
	}
	if got := topo.TotalMemory(); got != 128<<30 {
		t.Fatalf("memory = %d, want 128 GiB", got)
	}
	// PCI buses on nodes 0 and 6 (§5.1).
	for _, n := range topo.Nodes {
		want := n.ID == 0 || n.ID == 6
		if n.PCIBus != want {
			t.Errorf("node %d PCIBus = %v, want %v", n.ID, n.PCIBus, want)
		}
	}
}

func TestAMD48Diameter(t *testing.T) {
	topo := AMD48()
	maxDist := 0
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			d := topo.Distance(NodeID(i), NodeID(j))
			if d > maxDist {
				maxDist = d
			}
		}
	}
	if maxDist != 2 {
		t.Fatalf("network diameter = %d, want 2 (paper §5.1)", maxDist)
	}
}

func TestAMD48Routes(t *testing.T) {
	topo := AMD48()
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			links := topo.RouteLinks(NodeID(i), NodeID(j))
			if len(links) != topo.Distance(NodeID(i), NodeID(j)) {
				t.Fatalf("route %d→%d has %d links, distance %d",
					i, j, len(links), topo.Distance(NodeID(i), NodeID(j)))
			}
			// The route must be connected: consecutive links chain.
			cur := NodeID(i)
			for _, li := range links {
				l := topo.Links[li]
				if l.From != cur {
					t.Fatalf("route %d→%d broken at link %v from %d", i, j, l, cur)
				}
				cur = l.To
			}
			if len(links) > 0 && cur != NodeID(j) {
				t.Fatalf("route %d→%d ends at %d", i, j, cur)
			}
		}
	}
}

func TestAMD48Scaled(t *testing.T) {
	topo := AMD48Scaled(64)
	if got := topo.TotalMemory(); got != (128<<30)/64 {
		t.Fatalf("scaled memory = %d", got)
	}
	if topo.NumCPUs() != 48 {
		t.Fatal("scaling must not change the CPU count")
	}
}

func TestNodeOf(t *testing.T) {
	topo := AMD48()
	for c := 0; c < 48; c++ {
		want := NodeID(c / 6)
		if got := topo.NodeOf(CPUID(c)); got != want {
			t.Fatalf("NodeOf(%d) = %d, want %d", c, got, want)
		}
	}
}

func TestValidateCatchesDuplicateCPU(t *testing.T) {
	topo := &Topology{
		Nodes: []Node{
			{ID: 0, CPUs: []CPUID{0, 1}},
			{ID: 1, CPUs: []CPUID{1}},
		},
		distance: [][]int{{0, 1}, {1, 0}},
	}
	if err := topo.Validate(); err == nil {
		t.Fatal("Validate accepted a CPU on two nodes")
	}
}

func TestSmallMachine(t *testing.T) {
	for _, nodes := range []int{1, 2, 4, 8} {
		topo := SmallMachine(nodes, 2, 1<<28)
		if topo.NumNodes() != nodes {
			t.Fatalf("SmallMachine(%d) has %d nodes", nodes, topo.NumNodes())
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("SmallMachine(%d): %v", nodes, err)
		}
	}
}

func TestLatencyTable3(t *testing.T) {
	lm := DefaultLatency()
	// Uncontended values must match the paper's Table 3 exactly.
	if got := lm.AccessCycles(0, 0, 0); got != 156 {
		t.Errorf("local uncontended = %v, want 156", got)
	}
	if got := lm.AccessCycles(1, 0, 0); got != 276 {
		t.Errorf("1-hop uncontended = %v, want 276", got)
	}
	if got := lm.AccessCycles(2, 0, 0); got != 383 {
		t.Errorf("2-hop uncontended = %v, want 383", got)
	}
	// Contended local within 2% of 697 cycles.
	got := lm.AccessCycles(0, 1, 0)
	if got < 683 || got > 711 {
		t.Errorf("local contended = %v, want ~697", got)
	}
}

func TestLatencyMonotonicInUtilization(t *testing.T) {
	lm := DefaultLatency()
	if err := quick.Check(func(a, b uint8) bool {
		u1, u2 := float64(a)/255, float64(b)/255
		if u1 > u2 {
			u1, u2 = u2, u1
		}
		for hops := 0; hops <= 2; hops++ {
			if lm.AccessCycles(hops, u1, 0) > lm.AccessCycles(hops, u2, 0) {
				return false
			}
			if lm.AccessCycles(hops, 0, u1) > lm.AccessCycles(hops, 0, u2) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyMonotonicInDistance(t *testing.T) {
	lm := DefaultLatency()
	for _, u := range []float64{0, 0.3, 0.7, 1} {
		if !(lm.AccessCycles(0, u, u) < lm.AccessCycles(1, u, u)) ||
			!(lm.AccessCycles(1, u, u) < lm.AccessCycles(2, u, u)) {
			t.Fatalf("latency not monotonic in hops at util %v", u)
		}
	}
}

func TestLatencyClampsUtilization(t *testing.T) {
	lm := DefaultLatency()
	if lm.AccessCycles(0, 2.0, 0) != lm.AccessCycles(0, 1.0, 0) {
		t.Error("utilization above 1 not clamped")
	}
	if lm.AccessCycles(0, -1, 0) != lm.AccessCycles(0, 0, 0) {
		t.Error("negative utilization not clamped")
	}
}

func TestCyclesToNanos(t *testing.T) {
	lm := DefaultLatency()
	// 156 cycles at 2.2 GHz ≈ 70.9 ns.
	ns := lm.CyclesToNanos(156)
	if ns < 70 || ns > 72 {
		t.Fatalf("156 cycles = %v ns, want ~70.9", ns)
	}
}

func TestLinkBandwidthPositive(t *testing.T) {
	topo := AMD48()
	if len(topo.Links) == 0 {
		t.Fatal("no links")
	}
	for _, l := range topo.Links {
		if l.BandwidthBps <= 0 {
			t.Fatalf("link %v has non-positive bandwidth", l)
		}
		if l.BandwidthBps > 6<<30 {
			t.Fatalf("link %v exceeds the 6 GiB/s maximum (§5.1)", l)
		}
	}
}
