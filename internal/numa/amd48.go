package numa

import "fmt"

// AMD48 builds the evaluation machine of the paper: 8 NUMA nodes, 6 CPUs
// and 16 GiB per node (48 cores, 128 GiB total), four Opteron 6174
// sockets each holding two nodes, HyperTransport links with a maximum
// distance of two hops, and PCI buses on nodes 0 and 6.
//
// The link graph follows the Opteron 6100 ("Magny-Cours") arrangement:
// the two nodes of a socket are directly connected, and sockets are
// cross-connected so that the network diameter is 2.
func AMD48() *Topology { return AMD48Scaled(1) }

// AMD48Nodes is the node count of the evaluation machine, exposed so
// callers that only need the count (per-node sweeps, CLI validation) do
// not have to build and validate a full topology. The count is
// scale-independent: AMD48Scaled divides memory banks, never nodes.
const AMD48Nodes = 8

// AMD48Scaled builds AMD48 with each node's memory bank divided by
// scale, for fast simulations whose footprints are divided by the same
// factor. The CPU/link structure is unchanged.
func AMD48Scaled(scale int) *Topology {
	if scale < 1 {
		panic("numa: scale must be >= 1")
	}
	const (
		nodes   = AMD48Nodes
		cpusPer = 6
	)
	memPerNode := int64(16<<30) / int64(scale)
	t := &Topology{Latency: DefaultLatency()}
	cpu := CPUID(0)
	for n := 0; n < nodes; n++ {
		node := Node{ID: NodeID(n), MemBytes: int64(memPerNode)}
		for c := 0; c < cpusPer; c++ {
			node.CPUs = append(node.CPUs, cpu)
			t.cpuNode = append(t.cpuNode, NodeID(n))
			cpu++
		}
		node.PCIBus = n == 0 || n == 6
		t.Nodes = append(t.Nodes, node)
	}

	// Adjacency: node pairs directly connected by an HT link. Each
	// socket s holds nodes 2s and 2s+1. Intra-socket pairs plus a
	// cross-socket mesh give diameter 2 (verified by Validate/BFS).
	adjacent := [][2]NodeID{
		// intra-socket
		{0, 1}, {2, 3}, {4, 5}, {6, 7},
		// inter-socket mesh (each node links to two foreign sockets)
		{0, 2}, {0, 4}, {1, 3}, {1, 5},
		{2, 6}, {3, 7}, {4, 6}, {5, 7},
		{0, 6}, {1, 7}, {2, 4}, {3, 5},
	}
	// Asymmetric bandwidth, max 6 GiB/s (paper §5.1): intra-socket links
	// are full width, cross-socket are narrower.
	const (
		fullBW = 6 << 30 // 6 GiB/s
		halfBW = 3 << 30
	)
	for _, pair := range adjacent {
		bw := float64(halfBW)
		if pair[1]-pair[0] == 1 && pair[0]%2 == 0 {
			bw = float64(fullBW)
		}
		t.Links = append(t.Links, Link{From: pair[0], To: pair[1], BandwidthBps: bw})
		t.Links = append(t.Links, Link{From: pair[1], To: pair[0], BandwidthBps: bw})
	}
	t.computeRoutes()
	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("numa: AMD48 topology invalid: %v", err))
	}
	return t
}

// SmallMachine builds a reduced machine for tests: nNodes nodes in a ring
// (plus chords when nNodes > 4), cpusPerNode CPUs and memPerNode bytes of
// memory per node.
func SmallMachine(nNodes, cpusPerNode int, memPerNode int64) *Topology {
	if nNodes < 1 || cpusPerNode < 1 || memPerNode < 1 {
		panic("numa: SmallMachine requires positive sizes")
	}
	t := &Topology{Latency: DefaultLatency()}
	cpu := CPUID(0)
	for n := 0; n < nNodes; n++ {
		node := Node{ID: NodeID(n), MemBytes: memPerNode, PCIBus: n == 0}
		for c := 0; c < cpusPerNode; c++ {
			node.CPUs = append(node.CPUs, cpu)
			t.cpuNode = append(t.cpuNode, NodeID(n))
			cpu++
		}
		t.Nodes = append(t.Nodes, node)
	}
	const bw = 6 << 30
	for n := 0; n < nNodes; n++ {
		m := (n + 1) % nNodes
		if m == n {
			break
		}
		t.Links = append(t.Links, Link{From: NodeID(n), To: NodeID(m), BandwidthBps: bw})
		t.Links = append(t.Links, Link{From: NodeID(m), To: NodeID(n), BandwidthBps: bw})
		if nNodes > 4 { // chord to keep the diameter small
			k := (n + nNodes/2) % nNodes
			if k != n {
				t.Links = append(t.Links, Link{From: NodeID(n), To: NodeID(k), BandwidthBps: bw})
			}
		}
	}
	t.computeRoutes()
	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("numa: SmallMachine topology invalid: %v", err))
	}
	return t
}

// computeRoutes fills the distance matrix and per-pair link routes with a
// BFS shortest path over the link graph.
func (t *Topology) computeRoutes() {
	n := len(t.Nodes)
	// adjacency: out[i] = list of (neighbor, link index)
	type edge struct {
		to   NodeID
		link int
	}
	out := make([][]edge, n)
	for i, l := range t.Links {
		out[l.From] = append(out[l.From], edge{to: l.To, link: i})
	}
	t.distance = make([][]int, n)
	t.route = make([][][]int, n)
	for s := 0; s < n; s++ {
		dist := make([]int, n)
		prevEdge := make([]int, n)
		prevNode := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range out[u] {
				v := int(e.to)
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					prevEdge[v] = e.link
					prevNode[v] = u
					queue = append(queue, v)
				}
			}
		}
		t.distance[s] = dist
		t.route[s] = make([][]int, n)
		for d := 0; d < n; d++ {
			if d == s {
				continue
			}
			if dist[d] < 0 {
				panic(fmt.Sprintf("numa: node %d unreachable from %d", d, s))
			}
			var links []int
			for v := d; v != s; v = prevNode[v] {
				links = append(links, prevEdge[v])
			}
			// reverse so the route reads source→destination
			for i, j := 0, len(links)-1; i < j; i, j = i+1, j-1 {
				links[i], links[j] = links[j], links[i]
			}
			t.route[s][d] = links
		}
	}
}
