package numa

import "testing"

// TestAccessCostModelMatchesAccessCycles pins the factored pair model
// to the reference: for every node pair and a grid of controller/link
// utilizations (including out-of-range values the clamp must absorb),
// PairCycles must equal AccessCycles bit-for-bit — the engine's batched
// cost fill substitutes one for the other and the golden fixture
// tolerates zero drift from that substitution.
func TestAccessCostModelMatchesAccessCycles(t *testing.T) {
	topos := map[string]*Topology{
		"amd48": AMD48Scaled(64),
		"small": SmallMachine(4, 2, 1<<30),
	}
	utils := []float64{-0.5, 0, 0.001, 0.25, 0.5, 0.997, 1, 1.5}
	for name, topo := range topos {
		m := NewAccessCostModel(topo)
		lm := topo.Latency
		nn := topo.NumNodes()
		for src := 0; src < nn; src++ {
			for dst := 0; dst < nn; dst++ {
				hops := topo.Distance(NodeID(src), NodeID(dst))
				for _, cu := range utils {
					pen := m.CtrlPenalty(cu)
					for _, lu := range utils {
						got := m.PairCycles(NodeID(src), NodeID(dst), pen, lu)
						want := lm.AccessCycles(hops, cu, lu)
						if got != want {
							t.Fatalf("%s (%d,%d) ctrl=%v link=%v: PairCycles = %v, AccessCycles = %v",
								name, src, dst, cu, lu, got, want)
						}
					}
				}
			}
		}
	}
}

// TestAccessCostModelNonDefaultExponents covers the non-squared pow
// path: a cubic contention exponent must still match the reference.
func TestAccessCostModelNonDefaultExponents(t *testing.T) {
	topo := SmallMachine(4, 2, 1<<30)
	topo.Latency.CtrlExponent = 3
	topo.Latency.LinkExponent = 1
	m := NewAccessCostModel(topo)
	lm := topo.Latency
	nn := topo.NumNodes()
	for src := 0; src < nn; src++ {
		for dst := 0; dst < nn; dst++ {
			hops := topo.Distance(NodeID(src), NodeID(dst))
			for _, cu := range []float64{0, 0.3, 0.9, 1} {
				pen := m.CtrlPenalty(cu)
				for _, lu := range []float64{0, 0.4, 1} {
					got := m.PairCycles(NodeID(src), NodeID(dst), pen, lu)
					want := lm.AccessCycles(hops, cu, lu)
					if got != want {
						t.Fatalf("(%d,%d) ctrl=%v link=%v: PairCycles = %v, AccessCycles = %v",
							src, dst, cu, lu, got, want)
					}
				}
			}
		}
	}
}
