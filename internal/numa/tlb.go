package numa

// TLBModel estimates address-translation overhead, the first extension
// the paper's conclusion calls for: "Handling large pages in order to
// decrease the number of TLB misses should further improve performance"
// (§7). The model is a classical coverage argument: a working set larger
// than the TLB reach misses with probability 1 − reach/workingSet, and
// each miss pays a page-table walk — twice as deep under virtualization,
// where every guest level also walks the hypervisor table (2-D walk).
type TLBModel struct {
	// Entries4K and Entries2M are the TLB capacities per page size
	// (AMD Opteron 6174: 1024 L2-DTLB entries for 4 KiB pages, 128 for
	// 2 MiB pages).
	Entries4K int
	Entries2M int
	// WalkCycles is a native page-table walk; GuestWalkCycles the
	// two-dimensional virtualized walk.
	WalkCycles      int
	GuestWalkCycles int
}

// DefaultTLB returns the AMD48 calibration.
func DefaultTLB() TLBModel {
	return TLBModel{
		Entries4K:       1024,
		Entries2M:       128,
		WalkCycles:      35,
		GuestWalkCycles: 95, // ~2.7× native: nested walk touches both tables
	}
}

// MissRate returns the probability that an access to a working set of
// workingSetBytes misses the TLB when the address space is mapped with
// the given page size (4 KiB or 2 MiB pages).
//
//xnuma:noalloc
func (m TLBModel) MissRate(workingSetBytes float64, largePages bool) float64 {
	pageBytes, entries := 4096.0, float64(m.Entries4K)
	if largePages {
		pageBytes, entries = 2<<20, float64(m.Entries2M)
	}
	reach := pageBytes * entries
	if workingSetBytes <= reach || workingSetBytes <= 0 {
		return 0
	}
	return 1 - reach/workingSetBytes
}

// WalkPenaltyCycles returns the average per-access translation cost in
// cycles for the given working set, page size and execution mode.
//
//xnuma:noalloc
func (m TLBModel) WalkPenaltyCycles(workingSetBytes float64, largePages, virtualized bool) float64 {
	walk := float64(m.WalkCycles)
	if virtualized {
		walk = float64(m.GuestWalkCycles)
	}
	return m.MissRate(workingSetBytes, largePages) * walk
}

// LargePageGain returns the fraction of per-access latency saved by
// switching a virtualized working set from 4 KiB to 2 MiB mappings,
// relative to baseAccessCycles.
func (m TLBModel) LargePageGain(workingSetBytes, baseAccessCycles float64, virtualized bool) float64 {
	small := m.WalkPenaltyCycles(workingSetBytes, false, virtualized)
	large := m.WalkPenaltyCycles(workingSetBytes, true, virtualized)
	if baseAccessCycles <= 0 {
		return 0
	}
	return (small - large) / (baseAccessCycles + small)
}
