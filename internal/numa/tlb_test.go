package numa

import "testing"

func TestTLBMissRateCoverage(t *testing.T) {
	m := DefaultTLB()
	// Working set within reach: no misses. 4 KiB reach = 4 MiB.
	if got := m.MissRate(2<<20, false); got != 0 {
		t.Fatalf("in-reach miss rate = %v", got)
	}
	// Twice the reach: 50 % misses.
	if got := m.MissRate(8<<20, false); got < 0.49 || got > 0.51 {
		t.Fatalf("2× reach miss rate = %v, want ~0.5", got)
	}
	// 2 MiB pages reach 256 MiB: the same 8 MiB working set fits.
	if got := m.MissRate(8<<20, true); got != 0 {
		t.Fatalf("large-page miss rate = %v", got)
	}
}

func TestTLBMissRateMonotonic(t *testing.T) {
	m := DefaultTLB()
	prev := -1.0
	for ws := float64(1 << 20); ws < 1<<34; ws *= 2 {
		got := m.MissRate(ws, false)
		if got < prev {
			t.Fatalf("miss rate not monotonic at ws=%v", ws)
		}
		if got < 0 || got >= 1 {
			t.Fatalf("miss rate %v out of [0,1)", got)
		}
		prev = got
	}
}

func TestTLBVirtualizedWalkCostsMore(t *testing.T) {
	m := DefaultTLB()
	const ws = 64 << 20
	native := m.WalkPenaltyCycles(ws, false, false)
	guest := m.WalkPenaltyCycles(ws, false, true)
	if guest <= 2*native {
		t.Fatalf("nested walk (%v) not ≫ native (%v)", guest, native)
	}
}

func TestTLBLargePageGain(t *testing.T) {
	m := DefaultTLB()
	// A big virtualized working set gains from 2 MiB pages...
	gain := m.LargePageGain(256<<20, 200, true)
	if gain <= 0 {
		t.Fatalf("no large-page gain for a big working set: %v", gain)
	}
	// ...a tiny one does not.
	if got := m.LargePageGain(1<<20, 200, true); got != 0 {
		t.Fatalf("gain on an in-reach working set: %v", got)
	}
	// And the gain grows with the working set until both page sizes
	// overflow their reach.
	g1 := m.LargePageGain(16<<20, 200, true)
	g2 := m.LargePageGain(128<<20, 200, true)
	if g2 <= g1 {
		t.Fatalf("gain not growing: %v then %v", g1, g2)
	}
}
