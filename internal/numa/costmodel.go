package numa

// AccessCostModel is the run-constant part of AccessCycles, factored
// out per (src, dst) node pair so per-iteration cost-matrix fills pay
// only for what actually changes between iterations (controller and
// link utilizations). A topology's hop structure, base cycles and
// contention coefficients never change once built, so one model is
// shared by every runner on the same topology.
//
// The factoring is bit-for-bit identical to AccessCycles: the
// coefficient products are grouped exactly as the original
// left-to-right evaluation groups them
// (TestAccessCostModelMatchesAccessCycles).
type AccessCostModel struct {
	nn int
	// base[src*nn+dst] is the uncontended access cost for the pair's
	// hop count, in cycles.
	base []float64
	// linkCoef[src*nn+dst] is base · LinkContention, the link-penalty
	// coefficient; zero for local pairs (hops == 0 pays no link term).
	linkCoef []float64
	// ctrlCoef is LocalCycles · CtrlContention, the controller-penalty
	// coefficient (independent of distance: queueing happens at the
	// target controller).
	ctrlCoef float64
	ctrlExp  float64
	linkExp  float64
}

// NewAccessCostModel precomputes the pair cost coefficients of t's
// latency model.
func NewAccessCostModel(t *Topology) *AccessCostModel {
	l := t.Latency
	nn := t.NumNodes()
	m := &AccessCostModel{
		nn:       nn,
		base:     make([]float64, nn*nn),
		linkCoef: make([]float64, nn*nn),
		ctrlCoef: float64(l.LocalCycles) * l.CtrlContention,
		ctrlExp:  l.CtrlExponent,
		linkExp:  l.LinkExponent,
	}
	for src := 0; src < nn; src++ {
		for dst := 0; dst < nn; dst++ {
			hops := t.Distance(NodeID(src), NodeID(dst))
			base := float64(l.BaseCycles(hops))
			p := src*nn + dst
			m.base[p] = base
			if hops > 0 {
				m.linkCoef[p] = base * l.LinkContention
			}
		}
	}
	return m
}

// CtrlPenalty returns the controller-contention penalty in cycles for a
// destination controller at ctrlUtil utilization. It depends only on
// the destination, so per-iteration fills compute it once per node, not
// once per pair.
//
//xnuma:noalloc
func (m *AccessCostModel) CtrlPenalty(ctrlUtil float64) float64 {
	return m.ctrlCoef * pow(clamp01(ctrlUtil), m.ctrlExp)
}

// PairCycles returns the access cost in cycles for the (src, dst) pair,
// given the destination's precomputed controller penalty and the worst
// link utilization on the route. Bit-for-bit equal to
// Latency.AccessCycles(Distance(src, dst), ctrlUtil, linkUtil).
//
//xnuma:noalloc
func (m *AccessCostModel) PairCycles(src, dst NodeID, ctrlPenalty, linkUtil float64) float64 {
	p := int(src)*m.nn + int(dst)
	c := m.base[p] + ctrlPenalty
	if coef := m.linkCoef[p]; coef != 0 {
		c += coef * pow(clamp01(linkUtil), m.linkExp)
	}
	return c
}
