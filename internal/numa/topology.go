// Package numa models the machine: NUMA nodes holding CPUs and a memory
// bank behind a memory controller, connected by point-to-point
// interconnect links (HyperTransport-style), plus the latency and
// contention behaviour the paper measures in Table 3.
//
// The model is intentionally first-order: memory access cost depends on
// the hop distance between the requesting CPU's node and the page's node,
// multiplied by congestion factors for the target memory controller and
// the traversed links. This is exactly the level at which the paper
// explains every one of its results (controller saturation for
// master-slave workloads, interconnect saturation for interleaved
// placement).
package numa

import "fmt"

// NodeID identifies a NUMA node.
type NodeID int

// CPUID identifies a physical CPU (hardware thread) machine-wide.
type CPUID int

// Node is one NUMA node: a set of CPUs, a memory bank and its controller.
type Node struct {
	ID       NodeID
	CPUs     []CPUID
	MemBytes int64 // capacity of the local memory bank
	// PCIBus is true when an I/O bus hangs off this node (nodes 0 and 6
	// on AMD48).
	PCIBus bool
}

// Link is a unidirectional interconnect link between two adjacent nodes.
type Link struct {
	From, To NodeID
	// BandwidthBps is the peak payload bandwidth in bytes per second.
	BandwidthBps float64
}

// Topology describes the whole machine.
type Topology struct {
	Nodes []Node
	Links []Link
	// distance[i][j] is the number of interconnect hops from node i to
	// node j (0 on the diagonal).
	distance [][]int
	// route[i][j] lists the link indices traversed from i to j.
	route [][][]int
	// cpuNode maps a CPU to its node.
	cpuNode []NodeID

	Latency LatencyModel
}

// LatencyModel holds the calibrated access costs, in CPU cycles, and the
// CPU frequency used to convert cycles to simulated time.
// Defaults reproduce the paper's Table 3 for AMD48.
type LatencyModel struct {
	FreqGHz float64 // cycles per nanosecond

	L1Cycles int // 5
	L2Cycles int // 16
	L3Cycles int // 48

	LocalCycles int // 156  uncontended local DRAM access
	Hop1Cycles  int // 276  one interconnect hop
	Hop2Cycles  int // 383  two interconnect hops

	// Contention calibration. With U = utilization of the target memory
	// controller in [0,1], the access cost is multiplied by
	// 1 + CtrlContention * U^CtrlExponent. The defaults make a fully
	// contended local access cost ~697 cycles (Table 3, 48 threads).
	CtrlContention float64
	CtrlExponent   float64

	// Link contention: each traversed link at utilization V adds
	// LinkContention * V^LinkExponent of the base cost.
	LinkContention float64
	LinkExponent   float64
}

// DefaultLatency returns the AMD48 calibration.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		FreqGHz:     2.2,
		L1Cycles:    5,
		L2Cycles:    16,
		L3Cycles:    48,
		LocalCycles: 156,
		Hop1Cycles:  276,
		Hop2Cycles:  383,
		// 156 * (1 + 3.47) ≈ 697; 276*(1+...)≈740 needs the hop base to
		// grow less with the same controller pressure, which matches the
		// paper: the contended penalty is dominated by the controller, so
		// remote contended ≈ local contended + hop delta.
		CtrlContention: 3.47,
		CtrlExponent:   2.0,
		LinkContention: 1.8,
		LinkExponent:   2.0,
	}
}

// BaseCycles returns the uncontended DRAM access cost for a given hop
// count.
//
//xnuma:noalloc
func (l LatencyModel) BaseCycles(hops int) int {
	switch hops {
	case 0:
		return l.LocalCycles
	case 1:
		return l.Hop1Cycles
	default:
		return l.Hop2Cycles
	}
}

// AccessCycles returns the access cost in cycles for hops interconnect
// hops, with the destination controller at ctrlUtil utilization and the
// most loaded traversed link at linkUtil utilization (both in [0,1]).
//
// The contended penalty is modeled on the controller of the target node
// (absolute cycles added, independent of distance — queueing happens at
// the controller) plus a link term proportional to the hop base.
//
//xnuma:noalloc
func (l LatencyModel) AccessCycles(hops int, ctrlUtil, linkUtil float64) float64 {
	base := float64(l.BaseCycles(hops))
	ctrlUtil = clamp01(ctrlUtil)
	linkUtil = clamp01(linkUtil)
	ctrlPenalty := float64(l.LocalCycles) * l.CtrlContention * pow(ctrlUtil, l.CtrlExponent)
	linkPenalty := 0.0
	if hops > 0 {
		linkPenalty = base * l.LinkContention * pow(linkUtil, l.LinkExponent)
	}
	return base + ctrlPenalty + linkPenalty
}

// CyclesToNanos converts cycles to nanoseconds under the model frequency.
//
//xnuma:noalloc
func (l LatencyModel) CyclesToNanos(c float64) float64 { return c / l.FreqGHz }

//xnuma:noalloc
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

//xnuma:noalloc
func pow(x, p float64) float64 {
	if p == 2.0 {
		return x * x
	}
	// Integer exponents only in practice; fall back to repeated squares.
	r := 1.0
	n := int(p)
	for i := 0; i < n; i++ {
		r *= x
	}
	return r
}

// NumNodes returns the node count.
//
//xnuma:noalloc
func (t *Topology) NumNodes() int { return len(t.Nodes) }

// NumCPUs returns the machine-wide CPU count.
func (t *Topology) NumCPUs() int { return len(t.cpuNode) }

// NodeOf returns the node owning cpu.
func (t *Topology) NodeOf(cpu CPUID) NodeID {
	if int(cpu) < 0 || int(cpu) >= len(t.cpuNode) {
		panic(fmt.Sprintf("numa: invalid CPU %d", cpu))
	}
	return t.cpuNode[cpu]
}

// Distance returns the hop count between two nodes.
func (t *Topology) Distance(a, b NodeID) int { return t.distance[a][b] }

// RouteLinks returns the indices (into Links) of the links traversed from
// a to b. Empty for a == b.
//
//xnuma:noalloc
func (t *Topology) RouteLinks(a, b NodeID) []int { return t.route[a][b] }

// TotalMemory returns the machine memory in bytes.
func (t *Topology) TotalMemory() int64 {
	var sum int64
	for _, n := range t.Nodes {
		sum += n.MemBytes
	}
	return sum
}

// Validate checks structural invariants: every CPU belongs to exactly one
// node, distances are symmetric and metric-ish, and every node is
// reachable.
func (t *Topology) Validate() error {
	seen := make(map[CPUID]NodeID)
	for _, n := range t.Nodes {
		for _, c := range n.CPUs {
			if prev, dup := seen[c]; dup {
				return fmt.Errorf("numa: CPU %d in both node %d and node %d", c, prev, n.ID)
			}
			seen[c] = n.ID
		}
	}
	for i := range t.Nodes {
		for j := range t.Nodes {
			if (t.distance[i][j] == 0) != (i == j) {
				return fmt.Errorf("numa: distance[%d][%d]=%d inconsistent", i, j, t.distance[i][j])
			}
			if t.distance[i][j] != t.distance[j][i] {
				return fmt.Errorf("numa: asymmetric distance between %d and %d", i, j)
			}
		}
	}
	return nil
}
