package carrefour

import (
	"testing"

	"repro/internal/numa"
	"repro/internal/sim"
)

// fakeSet is an in-memory PageSet.
type fakeSet struct {
	nodes []numa.NodeID
	moves int
}

func newFakeSet(nodes ...numa.NodeID) *fakeSet {
	return &fakeSet{nodes: append([]numa.NodeID(nil), nodes...)}
}

func (s *fakeSet) Len() int                 { return len(s.nodes) }
func (s *fakeSet) NodeOf(i int) numa.NodeID { return s.nodes[i] }
func (s *fakeSet) Migrate(i int, to numa.NodeID) bool {
	if s.nodes[i] == to {
		return false
	}
	s.nodes[i] = to
	s.moves++
	return true
}

func accessors(n int, dominant numa.NodeID, share float64) []float64 {
	out := make([]float64, n)
	rest := (1 - share) / float64(n-1)
	for i := range out {
		out[i] = rest
	}
	out[dominant] = share
	return out
}

func uniform(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1 / float64(n)
	}
	return out
}

func TestInterleaveMovesFromOverloadedNode(t *testing.T) {
	c := New(DefaultConfig())
	set := newFakeSet(0, 0, 0, 0, 0, 0, 0, 0)
	tick := Tick{
		CtrlUtil: []float64{0.9, 0.05, 0.05, 0.05},
		Samples:  []Sample{{Set: set, AccessShare: 0.8, Accessors: uniform(4)}},
		Rand:     sim.NewRand(1),
	}
	res := c.Step(tick)
	if res.InterleaveMoves == 0 {
		t.Fatal("overloaded controller triggered no interleaving")
	}
	still := 0
	for _, n := range set.nodes {
		if n == 0 {
			still++
		}
	}
	if still != 0 {
		t.Fatalf("%d pages left on the overloaded node", still)
	}
	// Destinations must be spread across underloaded nodes.
	seen := map[numa.NodeID]bool{}
	for _, n := range set.nodes {
		seen[n] = true
	}
	if len(seen) < 2 {
		t.Fatalf("interleaving used a single destination: %v", set.nodes)
	}
}

func TestInterleaveNeedsImbalance(t *testing.T) {
	c := New(DefaultConfig())
	set := newFakeSet(0, 1, 2, 3)
	tick := Tick{
		// Uniformly saturated: interleaving gains nothing.
		CtrlUtil: []float64{0.9, 0.9, 0.9, 0.9},
		Samples:  []Sample{{Set: set, AccessShare: 1, Accessors: uniform(4)}},
		Rand:     sim.NewRand(1),
	}
	if res := c.Step(tick); res.InterleaveMoves != 0 {
		t.Fatal("interleaved on a balanced machine")
	}
}

func TestLocalityMigrationOnLinkSaturation(t *testing.T) {
	c := New(DefaultConfig())
	set := newFakeSet(2, 2, 2, 2)
	tick := Tick{
		CtrlUtil:    []float64{0.1, 0.1, 0.1, 0.1},
		MaxLinkUtil: 0.5,
		Samples:     []Sample{{Set: set, AccessShare: 0.5, Accessors: accessors(4, 0, 0.9)}},
		Rand:        sim.NewRand(1),
	}
	res := c.Step(tick)
	if res.LocalityMoves != 4 {
		t.Fatalf("locality moves = %d, want 4", res.LocalityMoves)
	}
	for _, n := range set.nodes {
		if n != 0 {
			t.Fatalf("page not moved to the dominant accessor: %v", set.nodes)
		}
	}
}

func TestLocalityMigrationNeedsDominantAccessor(t *testing.T) {
	c := New(DefaultConfig())
	set := newFakeSet(2, 2)
	tick := Tick{
		CtrlUtil:    []float64{0, 0, 0, 0},
		MaxLinkUtil: 0.5,
		Samples:     []Sample{{Set: set, AccessShare: 0.5, Accessors: uniform(4)}},
		Rand:        sim.NewRand(1),
	}
	if res := c.Step(tick); res.LocalityMoves != 0 {
		t.Fatal("migrated a shared set")
	}
}

func TestNoActionBelowThresholds(t *testing.T) {
	c := New(DefaultConfig())
	set := newFakeSet(0, 1, 2, 3)
	tick := Tick{
		CtrlUtil:    []float64{0.1, 0.1, 0.1, 0.1},
		MaxLinkUtil: 0.1,
		Samples:     []Sample{{Set: set, AccessShare: 1, Accessors: accessors(4, 0, 1)}},
		Rand:        sim.NewRand(1),
	}
	if res := c.Step(tick); res.Migrated != 0 {
		t.Fatal("idle machine triggered migrations")
	}
}

func TestBudgetCapsMigrations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BudgetPages = 3
	c := New(cfg)
	nodes := make([]numa.NodeID, 100)
	set := newFakeSet(nodes...) // all on node 0
	tick := Tick{
		CtrlUtil: []float64{0.9, 0.05, 0.05, 0.05},
		Samples:  []Sample{{Set: set, AccessShare: 1, Accessors: uniform(4)}},
		Rand:     sim.NewRand(1),
	}
	if res := c.Step(tick); res.Migrated != 3 {
		t.Fatalf("migrated %d, want budget 3", res.Migrated)
	}
}

func TestHotSetsConsideredFirst(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BudgetPages = 2
	c := New(cfg)
	cold := newFakeSet(0, 0)
	hot := newFakeSet(0, 0)
	tick := Tick{
		CtrlUtil: []float64{0.9, 0.05, 0.05, 0.05},
		Samples: []Sample{
			{Set: cold, AccessShare: 0.4, Accessors: uniform(4)},
			{Set: hot, AccessShare: 0.1, Accessors: uniform(4), Hot: true},
		},
		Rand: sim.NewRand(1),
	}
	c.Step(tick)
	if hot.moves != 2 || cold.moves != 0 {
		t.Fatalf("hot moves = %d, cold moves = %d; hot set must go first", hot.moves, cold.moves)
	}
}

func TestSplitByLoad(t *testing.T) {
	var c Controller
	over, under := c.splitByLoad([]float64{0.9, 0.1, 0.1, 0.1})
	if len(over) != 1 || over[0] != 0 {
		t.Fatalf("over = %v", over)
	}
	if len(under) != 3 {
		t.Fatalf("under = %v", under)
	}
}

func TestDominantNode(t *testing.T) {
	n, share := dominantNode([]float64{0.1, 0.7, 0.2})
	if n != 1 || share != 0.7 {
		t.Fatalf("dominant = %d/%v", n, share)
	}
}

func TestCountersAccumulate(t *testing.T) {
	c := New(DefaultConfig())
	set := newFakeSet(0, 0, 0, 0)
	tick := Tick{
		CtrlUtil: []float64{0.9, 0.05, 0.05, 0.05},
		Samples:  []Sample{{Set: set, AccessShare: 1, Accessors: uniform(4)}},
		Rand:     sim.NewRand(1),
	}
	c.Step(tick)
	if c.Ticks != 1 || c.InterleaveTicks != 1 || c.Interleaved == 0 {
		t.Fatalf("counters: %+v", c)
	}
}

// replSet is a fakeSet that also supports replication.
type replSet struct {
	*fakeSet
	replicated bool
}

func (s *replSet) Replicate() bool {
	if s.replicated {
		return false
	}
	s.replicated = true
	return true
}

// TestModesGateHeuristics: the §7 variant knobs restrict the controller
// to one mechanism. The tick triggers every heuristic at once
// (overloaded+imbalanced controllers, saturated link, hot read-only set
// with a dominant accessor elsewhere than its pages); each mode must
// run exactly its own subset.
func TestModesGateHeuristics(t *testing.T) {
	cases := []struct {
		mode                      Mode
		interleave, migrate, repl bool
	}{
		{ModeFull, true, true, true},
		{ModeMigrationOnly, false, true, false},
		{ModeReplicationOnly, false, false, true},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		cfg.Mode = tc.mode
		cfg.EnableReplication = true
		c := New(cfg)
		// Hot read-only multi-accessor set (replication target) plus a
		// single-accessor remote set (migration target), pages on the
		// overloaded node 0 (interleave target).
		hot := &replSet{fakeSet: newFakeSet(0, 0)}
		remote := newFakeSet(0, 0, 0, 0)
		tick := Tick{
			CtrlUtil:    []float64{0.9, 0.05, 0.05, 0.05},
			MaxLinkUtil: 0.5,
			Samples: []Sample{
				{Set: hot, AccessShare: 0.5, Accessors: uniform(4), Hot: true, ReadOnly: true},
				{Set: remote, AccessShare: 0.4, Accessors: accessors(4, 1, 0.9)},
			},
			Rand: sim.NewRand(1),
		}
		res := c.Step(tick)
		if got := res.InterleaveMoves > 0; got != tc.interleave {
			t.Errorf("%v: interleave moves %d, want active=%v", tc.mode, res.InterleaveMoves, tc.interleave)
		}
		if got := res.LocalityMoves > 0; got != tc.migrate {
			t.Errorf("%v: locality moves %d, want active=%v", tc.mode, res.LocalityMoves, tc.migrate)
		}
		if hot.replicated != tc.repl {
			t.Errorf("%v: replicated=%v, want %v", tc.mode, hot.replicated, tc.repl)
		}
	}
}

// TestFullModeRespectsEnableReplication: ModeFull without
// EnableReplication must not replicate (the paper's port leaves
// replication out by default, §3.4); only the replication-only variant
// implies the flag, at the engine layer.
func TestFullModeRespectsEnableReplication(t *testing.T) {
	cfg := DefaultConfig() // EnableReplication off
	c := New(cfg)
	hot := &replSet{fakeSet: newFakeSet(0, 0)}
	tick := Tick{
		CtrlUtil:    []float64{0.1, 0.1, 0.1, 0.1},
		MaxLinkUtil: 0.5,
		Samples:     []Sample{{Set: hot, AccessShare: 0.5, Accessors: uniform(4), Hot: true, ReadOnly: true}},
		Rand:        sim.NewRand(1),
	}
	c.Step(tick)
	if hot.replicated {
		t.Fatal("replicated with EnableReplication off")
	}
}
