// Package carrefour implements the dynamic NUMA policy of Dashti et
// al. [12] as ported into the hypervisor by the paper (§3.4, §4.3).
//
// The split mirrors the paper's port: the *system component* (in Xen)
// samples memory accesses — here, the per-region access statistics the
// simulation engine already maintains stand in for the IBS hardware
// counters — and exposes a page-migration primitive (the internal
// interface). The *user component* (a dom0 process) runs the decision
// loop below: when memory controllers are overloaded it interleaves hot
// pages from overloaded to underloaded nodes; when the interconnect
// saturates it migrates pages remotely accessed by a single node to that
// node. The replication heuristic of the original Carrefour is
// deliberately not implemented, as in the paper, because it would require
// radical changes to the memory manager for marginal gain.
package carrefour

import (
	"fmt"

	"repro/internal/numa"
	"repro/internal/sim"
)

// PageSet is the per-region view the decision loop manipulates: the
// placement of a set of pages plus the primitive to move one page. The
// engine adapts its regions (and their backing hypervisor page table)
// behind this interface.
type PageSet interface {
	// Len returns the number of pages in the set.
	Len() int
	// NodeOf returns the node currently backing page i.
	NodeOf(i int) numa.NodeID
	// Migrate moves page i to node, reporting whether it moved.
	Migrate(i int, to numa.NodeID) bool
}

// Sample is what the sampler reports about one page set for one
// interval.
type Sample struct {
	Set PageSet
	// AccessShare is the fraction of the virtual machine's memory
	// accesses hitting this set during the interval. Hotter sets are
	// considered first, like Carrefour's hot-page ranking.
	AccessShare float64
	// Accessors is the per-node share of the accesses *issued* against
	// this set (len = node count). A set with a single dominant accessor
	// is a candidate for the migration heuristic.
	Accessors []float64
	// Hot marks a tiny, extremely hot set (the hottest pages of the
	// interleave heuristic).
	Hot bool
	// ReadOnly marks a set accessed almost exclusively by reads —
	// the precondition of the replication heuristic.
	ReadOnly bool
}

// Replicator is the optional PageSet extension used by the replication
// heuristic: replicating a set gives every node a local copy. The
// original Carrefour implements this for read-only hot pages; the paper
// discards it in Xen because it would require radical memory-manager
// changes — it is gated behind Config.EnableReplication here for the
// ablation study.
type Replicator interface {
	Replicate() bool
}

// Tick is one sampling interval's machine state.
type Tick struct {
	// CtrlUtil is the per-node memory-controller utilization in [0,1].
	CtrlUtil []float64
	// MaxLinkUtil is the utilization of the most loaded interconnect
	// link in [0,1].
	MaxLinkUtil float64
	Samples     []Sample
	Rand        *sim.Rand
}

// Mode selects which of Carrefour's heuristics may run, the ablation
// knobs the paper's §7 names as future work (running Carrefour with
// only one mechanism isolates which heuristic an application actually
// needs). The zero value is the full policy as ported in §3.4.
type Mode int

const (
	// ModeFull runs every enabled heuristic: interleave on controller
	// overload, locality migration on link saturation, and replication
	// when Config.EnableReplication is set.
	ModeFull Mode = iota
	// ModeMigrationOnly keeps only the locality-migration heuristic:
	// no hot-page interleaving, no replication.
	ModeMigrationOnly
	// ModeReplicationOnly keeps only the replication heuristic (New
	// turns Config.EnableReplication on for it); pages are never
	// migrated.
	ModeReplicationOnly
)

func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeMigrationOnly:
		return "migration-only"
	case ModeReplicationOnly:
		return "replication-only"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// interleaves reports whether the hot-page interleave heuristic may run.
//
//xnuma:noalloc
func (m Mode) interleaves() bool { return m == ModeFull }

// migrates reports whether the locality-migration heuristic may run.
//
//xnuma:noalloc
func (m Mode) migrates() bool { return m == ModeFull || m == ModeMigrationOnly }

// replicates reports whether the replication heuristic may run (still
// subject to Config.EnableReplication under ModeFull).
//
//xnuma:noalloc
func (m Mode) replicates() bool { return m == ModeFull || m == ModeReplicationOnly }

// Config tunes the decision thresholds.
type Config struct {
	// Mode restricts the controller to a subset of the heuristics
	// (§7's replication-only / migration-only variants). ModeFull, the
	// zero value, is the paper's port.
	Mode Mode
	// CtrlOverload triggers the interleave heuristic when any
	// controller's utilization exceeds it.
	CtrlOverload float64
	// CtrlImbalance additionally requires the max/mean controller ratio
	// to exceed this factor (a uniformly saturated machine gains nothing
	// from interleaving).
	CtrlImbalance float64
	// LinkSaturation triggers the migration heuristic.
	LinkSaturation float64
	// DominantAccessor is the single-node access share above which a set
	// qualifies for locality migration.
	DominantAccessor float64
	// BudgetPages caps migrations per tick (hardware-counter-driven
	// Carrefour moves only the hottest pages).
	BudgetPages int
	// EnableReplication turns on the replication heuristic that the
	// paper deliberately leaves out (§3.4). Off by default.
	EnableReplication bool
}

// DefaultConfig returns thresholds matching Carrefour's published
// behaviour scaled to this simulation's load metrics.
func DefaultConfig() Config {
	return Config{
		CtrlOverload:     0.25,
		CtrlImbalance:    1.5,
		LinkSaturation:   0.30,
		DominantAccessor: 0.75,
		BudgetPages:      4096,
	}
}

// Controller is the user component's decision loop state.
type Controller struct {
	Cfg Config

	// Counters.
	Ticks           uint64
	Interleaved     uint64
	LocalityMoved   uint64
	Replicated      uint64
	InterleaveTicks uint64
	MigrationTicks  uint64
	rr              int

	// Scratch buffers reused across ticks so the decision loop allocates
	// nothing in the steady state (the engine runs it inside the epoch
	// loop).
	//xnuma:scratch
	over []numa.NodeID
	//xnuma:scratch
	under   []numa.NodeID
	isOver  []bool
	ordered []Sample
}

// New returns a controller with cfg, applying the mode's implications
// (ModeReplicationOnly turns EnableReplication on — the variant is
// meaningless without it).
func New(cfg Config) *Controller {
	if cfg.Mode == ModeReplicationOnly {
		cfg.EnableReplication = true
	}
	return &Controller{Cfg: cfg}
}

// Move records one page migration's endpoints, for traffic accounting by
// the caller.
type Move struct {
	From, To numa.NodeID
}

// Result reports what one tick did.
type Result struct {
	Migrated int
	// Moves[i] pairs source and destination of each migration for
	// tracing.
	InterleaveMoves int
	LocalityMoves   int
	Replications    int
}

// Step runs one decision interval.
//
//xnuma:noalloc
func (c *Controller) Step(t Tick) Result {
	c.Ticks++
	var res Result
	budget := c.Cfg.BudgetPages

	if c.Cfg.Mode.interleaves() && c.controllersOverloaded(t.CtrlUtil) {
		c.InterleaveTicks++
		n := c.interleave(t, &budget)
		res.InterleaveMoves += n
		res.Migrated += n
	}
	if t.MaxLinkUtil > c.Cfg.LinkSaturation {
		if c.Cfg.EnableReplication && c.Cfg.Mode.replicates() {
			res.Replications += c.replicate(t)
		}
		if c.Cfg.Mode.migrates() {
			c.MigrationTicks++
			n := c.localityMigrate(t, &budget)
			res.LocalityMoves += n
			res.Migrated += n
		}
	}
	return res
}

// replicate applies the replication heuristic: hot, read-only sets
// accessed from several nodes get a per-node copy, removing their remote
// traffic entirely.
//
//xnuma:noalloc
func (c *Controller) replicate(t Tick) int {
	done := 0
	for _, s := range t.Samples {
		if !s.Hot || !s.ReadOnly {
			continue
		}
		if _, share := dominantNode(s.Accessors); share >= c.Cfg.DominantAccessor {
			continue // single accessor: migration is cheaper
		}
		if rep, ok := s.Set.(Replicator); ok && rep.Replicate() {
			done++
			c.Replicated++
		}
	}
	return done
}

//xnuma:noalloc
func (c *Controller) controllersOverloaded(util []float64) bool {
	if len(util) == 0 {
		return false
	}
	var max, sum float64
	for _, u := range util {
		sum += u
		if u > max {
			max = u
		}
	}
	mean := sum / float64(len(util))
	if mean <= 0 {
		return false
	}
	return max > c.Cfg.CtrlOverload && max/mean > c.Cfg.CtrlImbalance
}

// interleave randomly migrates hot pages from overloaded nodes to
// underloaded nodes (§3.4).
//
//xnuma:noalloc
func (c *Controller) interleave(t Tick, budget *int) int {
	overloaded, underloaded := c.splitByLoad(t.CtrlUtil)
	if len(overloaded) == 0 || len(underloaded) == 0 {
		return 0
	}
	if cap(c.isOver) < len(t.CtrlUtil) {
		c.isOver = make([]bool, len(t.CtrlUtil))
	}
	isOver := c.isOver[:len(t.CtrlUtil)]
	for i := range isOver {
		isOver[i] = false
	}
	for _, n := range overloaded {
		isOver[n] = true
	}
	moved := 0
	// Hottest sets first: hot flags, then by access share.
	for _, s := range c.orderSamples(t.Samples) {
		if *budget <= 0 {
			break
		}
		for i := 0; i < s.Set.Len() && *budget > 0; i++ {
			if !isOver[s.Set.NodeOf(i)] {
				continue
			}
			dst := underloaded[c.rr%len(underloaded)]
			c.rr++
			if s.Set.Migrate(i, dst) {
				moved++
				c.Interleaved++
				*budget--
			}
		}
	}
	return moved
}

// localityMigrate moves pages of single-accessor sets to the accessing
// node (§3.4).
//
//xnuma:noalloc
func (c *Controller) localityMigrate(t Tick, budget *int) int {
	moved := 0
	for _, s := range c.orderSamples(t.Samples) {
		if *budget <= 0 {
			break
		}
		dom, share := dominantNode(s.Accessors)
		if share < c.Cfg.DominantAccessor {
			continue
		}
		for i := 0; i < s.Set.Len() && *budget > 0; i++ {
			if s.Set.NodeOf(i) == dom {
				continue
			}
			if s.Set.Migrate(i, dom) {
				moved++
				c.LocalityMoved++
				*budget--
			}
		}
	}
	return moved
}

// splitByLoad partitions nodes into overloaded (above 1.2× mean) and
// underloaded (below 0.8× mean). The returned slices alias the
// controller's scratch buffers and stay valid until the next call.
//
//xnuma:noalloc
func (c *Controller) splitByLoad(util []float64) (over, under []numa.NodeID) {
	c.over, c.under = c.over[:0], c.under[:0]
	var sum float64
	for _, u := range util {
		sum += u
	}
	mean := sum / float64(len(util))
	for i, u := range util {
		switch {
		case u > 1.2*mean:
			c.over = append(c.over, numa.NodeID(i))
		case u < 0.8*mean:
			c.under = append(c.under, numa.NodeID(i))
		}
	}
	return c.over, c.under
}

// dominantNode returns the node with the largest accessor share.
//
//xnuma:noalloc
func dominantNode(accessors []float64) (numa.NodeID, float64) {
	best, bestShare := numa.NodeID(0), 0.0
	for i, a := range accessors {
		if a > bestShare {
			best, bestShare = numa.NodeID(i), a
		}
	}
	return best, bestShare
}

// orderSamples returns samples hottest-first without mutating the
// input. The returned slice aliases the controller's scratch buffer and
// stays valid until the next call.
//
//xnuma:noalloc
func (c *Controller) orderSamples(in []Sample) []Sample {
	if cap(c.ordered) < len(in) {
		c.ordered = make([]Sample, 0, len(in))
	}
	out := c.ordered[:len(in)]
	copy(out, in)
	// Insertion sort: sample counts are tiny (regions per VM).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && hotter(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

//xnuma:noalloc
func hotter(a, b Sample) bool {
	if a.Hot != b.Hot {
		return a.Hot
	}
	return a.AccessShare > b.AccessShare
}
