package carrefour

import (
	"math"
	"testing"

	"repro/internal/numa"
	"repro/internal/sim"
)

func TestSamplerPreservesHotShares(t *testing.T) {
	s := Sampler{SamplesPerTick: 20000}
	set := newFakeSet(0, 0)
	tick := Tick{
		Samples: []Sample{
			{Set: set, AccessShare: 0.8, Accessors: accessors(4, 1, 0.9)},
			{Set: set, AccessShare: 0.2, Accessors: uniform(4)},
		},
		Rand: sim.NewRand(3),
	}
	noisy := s.Noisy(tick)
	// With a large budget the estimates converge to the truth.
	if math.Abs(noisy.Samples[0].AccessShare-0.8) > 0.02 {
		t.Fatalf("share estimate %v, want ~0.8", noisy.Samples[0].AccessShare)
	}
	if math.Abs(noisy.Samples[0].Accessors[1]-0.9) > 0.02 {
		t.Fatalf("accessor estimate %v, want ~0.9", noisy.Samples[0].Accessors[1])
	}
}

func TestSamplerHidesColdSets(t *testing.T) {
	s := Sampler{SamplesPerTick: 50}
	set := newFakeSet(0)
	tick := Tick{
		Samples: []Sample{
			{Set: set, AccessShare: 0.999, Accessors: uniform(4)},
			{Set: set, AccessShare: 0.001, Accessors: accessors(4, 2, 1)},
		},
		Rand: sim.NewRand(7),
	}
	noisy := s.Noisy(tick)
	// The cold set almost surely draws no samples and becomes invisible.
	if noisy.Samples[1].AccessShare > 0.05 {
		t.Fatalf("cold set share = %v", noisy.Samples[1].AccessShare)
	}
}

func TestSamplerDisabledPassthrough(t *testing.T) {
	tick := Tick{
		Samples: []Sample{{Set: newFakeSet(0), AccessShare: 0.5, Accessors: uniform(4)}},
		Rand:    sim.NewRand(1),
	}
	if got := (Sampler{}).Noisy(tick); &got.Samples[0] != &tick.Samples[0] {
		// Zero budget: the tick passes through untouched.
		if got.Samples[0].AccessShare != 0.5 {
			t.Fatal("disabled sampler altered the tick")
		}
	}
}

func TestSamplerDeterministic(t *testing.T) {
	mk := func(seed uint64) Tick {
		return Tick{
			Samples: []Sample{{Set: newFakeSet(0), AccessShare: 0.5, Accessors: uniform(4)}},
			Rand:    sim.NewRand(seed),
		}
	}
	s := Sampler{SamplesPerTick: 100}
	a := s.Noisy(mk(5))
	b := s.Noisy(mk(5))
	if a.Samples[0].AccessShare != b.Samples[0].AccessShare {
		t.Fatal("same seed gave different estimates")
	}
}

func TestNoisyStepStillDecides(t *testing.T) {
	c := New(DefaultConfig())
	set := newFakeSet(0, 0, 0, 0, 0, 0, 0, 0)
	tick := Tick{
		CtrlUtil: []float64{0.9, 0.05, 0.05, 0.05},
		Samples:  []Sample{{Set: set, AccessShare: 0.9, Accessors: uniform(4), Hot: true}},
		Rand:     sim.NewRand(1),
	}
	res := c.NoisyStep(DefaultSampler(), tick)
	if res.Migrated == 0 {
		t.Fatal("sampled decision loop stopped acting")
	}
}

// replicaSet extends fakeSet with replication.
type replicaSet struct {
	fakeSet
	replicated bool
}

func (r *replicaSet) Replicate() bool {
	if r.replicated {
		return false
	}
	r.replicated = true
	return true
}

func TestReplicationHeuristic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableReplication = true
	c := New(cfg)
	set := &replicaSet{fakeSet: *newFakeSet(0, 0)}
	tick := Tick{
		CtrlUtil:    []float64{0.1, 0.1, 0.1, 0.1},
		MaxLinkUtil: 0.5,
		Samples: []Sample{{
			Set: set, AccessShare: 0.5, Accessors: uniform(4),
			Hot: true, ReadOnly: true,
		}},
		Rand: sim.NewRand(1),
	}
	res := c.Step(tick)
	if res.Replications != 1 || !set.replicated {
		t.Fatalf("read-only hot set not replicated: %+v", res)
	}
	// Idempotent on the next tick.
	if res := c.Step(tick); res.Replications != 0 {
		t.Fatal("set replicated twice")
	}
}

func TestReplicationRequiresReadOnlyAndMultiAccessor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableReplication = true
	c := New(cfg)
	mk := func(readonly bool, acc []float64) Tick {
		return Tick{
			CtrlUtil:    []float64{0, 0, 0, 0},
			MaxLinkUtil: 0.5,
			Samples: []Sample{{
				Set: &replicaSet{fakeSet: *newFakeSet(3, 3)}, AccessShare: 0.5,
				Accessors: acc, Hot: true, ReadOnly: readonly,
			}},
			Rand: sim.NewRand(1),
		}
	}
	if res := c.Step(mk(false, uniform(4))); res.Replications != 0 {
		t.Fatal("replicated a writable set")
	}
	if res := c.Step(mk(true, accessors(4, 2, 0.95))); res.Replications != 0 {
		t.Fatal("replicated a single-accessor set (migration is cheaper)")
	}
}

func TestReplicationOffByDefault(t *testing.T) {
	// The paper discards the heuristic; the default configuration must
	// not replicate.
	c := New(DefaultConfig())
	set := &replicaSet{fakeSet: *newFakeSet(0)}
	tick := Tick{
		CtrlUtil:    []float64{0, 0, 0, 0},
		MaxLinkUtil: 0.9,
		Samples: []Sample{{
			Set: set, AccessShare: 0.9, Accessors: uniform(4), Hot: true, ReadOnly: true,
		}},
		Rand: sim.NewRand(1),
	}
	if res := c.Step(tick); res.Replications != 0 || set.replicated {
		t.Fatal("default configuration replicated (§3.4 discards it)")
	}
	_ = numa.NodeID(0)
}
