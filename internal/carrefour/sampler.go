package carrefour

// Sampler models the hardware side of Carrefour's system component: the
// real implementation watches instruction-based-sampling (IBS) events,
// so the user component never sees exact access counts — only a few
// thousand samples per interval. Passing a Tick through Noisy replaces
// the exact per-set statistics with multinomial sample estimates, which
// makes the decision loop exactly as blind as the original: cold sets
// may draw no samples at all, and accessor distributions wobble.
type Sampler struct {
	// SamplesPerTick is the IBS budget per decision interval. Carrefour
	// uses sampling rates in the tens of thousands per second; the
	// default models ~2000 usable memory samples per interval.
	SamplesPerTick int
}

// DefaultSampler returns the standard budget.
func DefaultSampler() Sampler { return Sampler{SamplesPerTick: 2000} }

// Noisy returns a copy of t whose AccessShare and Accessors fields are
// re-estimated from SamplesPerTick simulated IBS samples. Sets drawing
// no samples get a zero share and uniform accessors, so the controller
// ignores them — like real Carrefour ignores pages below its hotness
// threshold.
func (s Sampler) Noisy(t Tick) Tick {
	if s.SamplesPerTick <= 0 || t.Rand == nil || len(t.Samples) == 0 {
		return t
	}
	out := t
	out.Samples = make([]Sample, len(t.Samples))
	copy(out.Samples, t.Samples)

	// Draw the per-set sample counts from the access-share distribution.
	counts := make([]int, len(t.Samples))
	var totalShare float64
	for _, smp := range t.Samples {
		totalShare += smp.AccessShare
	}
	if totalShare <= 0 {
		return t
	}
	for i := 0; i < s.SamplesPerTick; i++ {
		x := t.Rand.Float64() * totalShare
		for j, smp := range t.Samples {
			x -= smp.AccessShare
			if x <= 0 {
				counts[j]++
				break
			}
		}
	}
	for j := range out.Samples {
		n := counts[j]
		out.Samples[j].AccessShare = float64(n) / float64(s.SamplesPerTick) * totalShare
		if n == 0 {
			// No samples: the set is invisible this interval.
			out.Samples[j].Accessors = make([]float64, len(t.Samples[j].Accessors))
			continue
		}
		// Resample the accessor distribution with n draws.
		acc := make([]float64, len(t.Samples[j].Accessors))
		for k := 0; k < n; k++ {
			x := t.Rand.Float64()
			for node, share := range t.Samples[j].Accessors {
				x -= share
				if x <= 0 {
					acc[node]++
					break
				}
			}
		}
		for node := range acc {
			acc[node] /= float64(n)
		}
		out.Samples[j].Accessors = acc
	}
	return out
}

// NoisyStep is a convenience: sample, then decide.
func (c *Controller) NoisyStep(s Sampler, t Tick) Result {
	return c.Step(s.Noisy(t))
}
