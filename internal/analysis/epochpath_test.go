package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// TestEpochHotPathAnnotated pins the //xnuma:noalloc annotation set to
// the code it is meant to cover: every function statically reachable
// from (*runner).epoch — the body of BenchmarkEpoch and the engine's
// per-quantum hot path — must carry the annotation, so the noalloc
// analyzer checks the whole path and a new helper slipped into the
// epoch cannot silently reintroduce per-epoch allocation.
//
// The walk is a conservative static one: calls through interfaces
// (Backend, carrefour.PageSet, sort.Interface) have no static callee
// and are skipped — their implementations are covered by BenchmarkEpoch
// itself via the allocs/op gate. Standard-library calls are skipped for
// the same reason the analyzer allows them case by case.
func TestEpochHotPathAnnotated(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadPackages(root, "./internal/...")
	if err != nil {
		t.Fatal(err)
	}

	type decl struct {
		pkg *Package
		fn  *ast.FuncDecl
	}
	// Cross-package call sites resolve to export-data objects, which are
	// distinct from the source-built ones, so the index is keyed by the
	// stable FullName (e.g. "(*repro/internal/carrefour.Controller).Step").
	decls := map[string]decl{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				decls[obj.FullName()] = decl{pkg: pkg, fn: fn}
			}
		}
	}

	const rootFn = "(*repro/internal/engine.runner).epoch"
	if _, ok := decls[rootFn]; !ok {
		t.Fatalf("hot-path root %s not found; did the runner change shape?", rootFn)
	}

	visited := map[string]bool{}
	var missing []string
	queue := []string{rootFn}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if visited[name] {
			continue
		}
		visited[name] = true
		d, ok := decls[name]
		if !ok {
			continue // interface method or external package
		}
		if !HasNoallocAnnotation(d.fn) {
			missing = append(missing, name)
		}
		ast.Inspect(d.fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee types.Object
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				callee = d.pkg.Info.Uses[fun]
			case *ast.SelectorExpr:
				callee = d.pkg.Info.Uses[fun.Sel]
			}
			fn, ok := callee.(*types.Func)
			if !ok { // builtin, conversion, or func-typed variable
				return true
			}
			if fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), "repro/internal/") {
				return true // stdlib or external
			}
			queue = append(queue, fn.FullName())
			return true
		})
	}

	sort.Strings(missing)
	for _, name := range missing {
		pos := decls[name].pkg.Fset.Position(decls[name].fn.Pos())
		t.Errorf("%s (%s) is reachable from %s but not annotated //xnuma:noalloc", name, pos, rootFn)
	}
	if len(missing) == 0 && len(visited) < 10 {
		t.Errorf("only %d functions reachable from %s — the call-graph walk looks broken", len(visited), rootFn)
	}
}
