package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Detrand bans ambient nondeterminism in the simulation packages: every
// package under internal/ models the simulated machine, so randomness
// must come from internal/sim's seeded xorshift streams and time from
// the virtual clock. Importing math/rand (or crypto/rand), reading
// time.Now, or consulting the environment mid-simulation would make
// results depend on the host instead of the seed.
var Detrand = &Analyzer{
	Name:  "detrand",
	Doc:   "ban math/rand, time.Now and os.Getenv in simulation packages",
	Scope: simPackage,
	Run:   runDetrand,
}

// bannedImports maps import path to the sanctioned replacement.
var bannedImports = map[string]string{
	"math/rand":    "internal/sim's seeded streams",
	"math/rand/v2": "internal/sim's seeded streams",
	"crypto/rand":  "internal/sim's seeded streams",
}

// bannedCalls maps package path -> function name -> why it is banned.
var bannedCalls = map[string]map[string]string{
	"time": {
		"Now":   "the virtual clock (sim.Clock)",
		"Since": "the virtual clock (sim.Clock)",
		"Until": "the virtual clock (sim.Clock)",
	},
	"os": {
		"Getenv":    "explicit configuration threaded from cmd/",
		"LookupEnv": "explicit configuration threaded from cmd/",
		"Environ":   "explicit configuration threaded from cmd/",
	},
}

func runDetrand(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if repl, bad := bannedImports[path]; bad {
				pass.Reportf(imp.Pos(),
					"import of %s in a simulation package; draw randomness from %s so runs are a function of the seed",
					path, repl)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
			if !ok {
				return true
			}
			if repl, bad := bannedCalls[pn.Imported().Path()][sel.Sel.Name]; bad {
				pass.Reportf(sel.Pos(),
					"%s.%s in a simulation package; use %s instead so runs are a function of the seed",
					pn.Imported().Path(), sel.Sel.Name, repl)
			}
			return true
		})
	}
	return nil
}
