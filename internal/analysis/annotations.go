package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Two marker annotations complement the suppression grammar:
//
//   //xnuma:noalloc   — on a function's doc comment: the function is on
//     the epoch hot path and must not contain allocation forms. Checked
//     by the noalloc analyzer; coverage of the BenchmarkEpoch call graph
//     is asserted by TestEpochHotPathAnnotated.
//   //xnuma:scratch   — on a struct field or variable declaration: the
//     slice is a reusable scratch buffer, so `append` onto it inside a
//     noalloc function is amortized growth, not a per-call allocation.

const noallocMarker = "//xnuma:noalloc"
const scratchMarker = "//xnuma:scratch"

// HasNoallocAnnotation reports whether fn's doc comment carries the
// //xnuma:noalloc marker.
func HasNoallocAnnotation(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if isMarker(c.Text, noallocMarker) {
			return true
		}
	}
	return false
}

// isMarker reports whether the comment text is the marker, optionally
// followed by explanatory text after a space.
func isMarker(text, marker string) bool {
	return text == marker || strings.HasPrefix(text, marker+" ")
}

// scratchLines collects, per file, the line numbers carrying a
// //xnuma:scratch marker. A declaration on line L is scratch-annotated
// if a marker sits on L (trailing) or L-1 (the line above).
func scratchLines(fset *token.FileSet, files []*ast.File) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !isMarker(c.Text, scratchMarker) {
					continue
				}
				pos := fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = map[int]bool{}
					out[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return out
}

// scratchAnnotated reports whether the object declared at declPos is
// covered by a //xnuma:scratch marker.
func scratchAnnotated(fset *token.FileSet, lines map[string]map[int]bool, declPos token.Pos) bool {
	if !declPos.IsValid() {
		return false
	}
	pos := fset.Position(declPos)
	m := lines[pos.Filename]
	return m != nil && (m[pos.Line] || m[pos.Line-1])
}
