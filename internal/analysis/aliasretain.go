package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Aliasretain polices the documented internal-slice accessors in
// internal/engine: Region.Dist/AccessDist/HotDist hand out the region's
// cached distribution buffers, stream.distFor and Instance.row hand out
// rows of the flattened row table (itself aliasing the runner's packed
// row arena), and runner.cycRow hands out rows of the per-iteration
// cost-matrix scratch. Callers may read them within the current epoch
// (cycRow: within the current iteration), but storing one into a
// struct field, a composite literal field or a package-level variable
// retains a view that the next cache refresh, foldRows repack or
// fillCycles pass silently invalidates — the aliasing bug class the
// row-table flattening in PR 5 made possible.
//
// The analyzer runs over the whole repo: any package may call into
// engine.
var Aliasretain = &Analyzer{
	Name: "aliasretain",
	Doc:  "forbid retaining internal-slice accessor results in fields or globals",
	Run:  runAliasretain,
}

// aliasAccessors names the methods whose results alias internal
// buffers, keyed by receiver type name.
var aliasAccessors = map[string]map[string]bool{
	"Region":   {"Dist": true, "AccessDist": true, "HotDist": true},
	"stream":   {"distFor": true},
	"Instance": {"row": true},
	"runner":   {"cycRow": true},
}

// aliasAccessorPkg restricts the receiver types to the engine package
// (testdata packages declare their own lookalikes for the golden
// tests).
func aliasAccessorPkg(path string) bool {
	return canonicalPath(path) == "repro/internal/engine" || strings.Contains(path, "testdata")
}

func runAliasretain(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, r := range n.Rhs {
					name, ok := accessorCall(pass, r)
					if !ok {
						continue
					}
					// With multiple RHS values the columns pair up; with a
					// single call the call is the lone RHS.
					var lhs ast.Expr
					if len(n.Lhs) == len(n.Rhs) {
						lhs = n.Lhs[i]
					} else {
						lhs = n.Lhs[0]
					}
					if where := retainingLValue(pass, lhs); where != "" {
						pass.Reportf(r.Pos(),
							"result of %s stored in %s outlives the epoch that produced it (the accessor returns an internal buffer the next refresh repacks); copy the values or annotate //xnuma:aliasretain-ok <reason>",
							name, where)
					}
				}
			case *ast.KeyValueExpr:
				if name, ok := accessorCall(pass, n.Value); ok {
					pass.Reportf(n.Value.Pos(),
						"result of %s stored in composite-literal field %s outlives the epoch that produced it (the accessor returns an internal buffer the next refresh repacks); copy the values or annotate //xnuma:aliasretain-ok <reason>",
						name, types.ExprString(n.Key))
				}
			case *ast.ValueSpec:
				// Only package-level specs retain; locals die with the frame.
				for _, v := range n.Values {
					name, ok := accessorCall(pass, v)
					if !ok {
						continue
					}
					if len(n.Names) > 0 {
						if obj := pass.TypesInfo.ObjectOf(n.Names[0]); obj != nil && obj.Parent() == pass.Pkg.Scope() {
							pass.Reportf(v.Pos(),
								"result of %s stored in package-level variable %s (the accessor returns an internal buffer the next refresh repacks); copy the values or annotate //xnuma:aliasretain-ok <reason>",
								name, n.Names[0].Name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// accessorCall reports whether e is a call to one of the internal-slice
// accessors, returning a printable name.
func accessorCall(pass *Pass, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !aliasAccessorPkg(obj.Pkg().Path()) {
		return "", false
	}
	if !aliasAccessors[obj.Name()][fn.Name()] {
		return "", false
	}
	return obj.Name() + "." + fn.Name(), true
}

// retainingLValue classifies an assignment destination that outlives
// the call site: a struct field, an element of a field, or a
// package-level variable. Locals return "".
func retainingLValue(pass *Pass, lhs ast.Expr) string {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if _, isField := pass.TypesInfo.Selections[l]; isField {
			return "field " + types.ExprString(l)
		}
		// Qualified package identifier (pkg.Var): a global.
		if id, ok := l.X.(*ast.Ident); ok {
			if _, isPkg := pass.TypesInfo.ObjectOf(id).(*types.PkgName); isPkg {
				return "package-level variable " + types.ExprString(l)
			}
		}
	case *ast.IndexExpr:
		if inner := retainingLValue(pass, l.X); inner != "" {
			return "element of " + inner
		}
		// An element of a local slice of slices still escapes the
		// statement, but only fields/globals survive the frame; locals
		// are fine.
	case *ast.StarExpr:
		return "dereferenced pointer " + types.ExprString(l)
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(l)
		if obj != nil && obj.Parent() == pass.Pkg.Scope() {
			return "package-level variable " + l.Name
		}
	}
	return ""
}
