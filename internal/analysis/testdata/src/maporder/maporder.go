// Package maporder is golden-test input for the maporder analyzer.
// Each `// want` comment is an expected diagnostic (regex over the
// message); lines without one must stay silent.
package maporder

import "sort"

type state struct {
	total float64
	log   []int
}

// Float accumulation in map order: the canonical nondeterminism bug
// (float addition does not commute bit-for-bit).
func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `accumulates floating-point values`
		total += v
	}
	return total
}

// Appending values in map order yields a differently-ordered slice per
// run.
func collectValues(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `appends to a result slice`
		out = append(out, v)
	}
	return out
}

// Mutating state outside the loop in map order.
func countBig(m map[int]int, threshold int) int {
	n := 0
	for _, v := range m { // want `updates n in iteration order`
		if v > threshold {
			n++
		}
	}
	return n
}

// Deleting from another map in iteration order mutates shared state in
// a nondeterministic sequence.
func pruneOther(m, other map[int]int) {
	for k := range m { // want `deletes from other in iteration order`
		delete(other, k)
	}
}

// Calls with side effects run in map order.
func drainAll(m map[int]*state) {
	for _, s := range m { // want `calls drain in iteration order`
		drain(s)
	}
}

func drain(s *state) { s.total = 0 }

// Exempt: pure key collection followed by a sort — the canonical
// deterministic idiom.
func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Clean: reads with loop-local effects only.
func anyNegative(m map[string]int) {
	for _, v := range m {
		if v < 0 {
			panic("negative entry")
		}
	}
}

// Suppressed: the reason rides on the flagged line.
func maxValue(m map[int]int) int {
	best := 0
	for _, v := range m { //xnuma:maporder-ok max is order-independent
		if v > best {
			best = v
		}
	}
	return best
}

// Suppressed from the line above.
func minValue(m map[int]int) int {
	best := 1 << 30
	//xnuma:maporder-ok min is order-independent
	for _, v := range m {
		if v < best {
			best = v
		}
	}
	return best
}

// A reasonless suppression does not suppress and is itself flagged, so
// both diagnostics land on this line.
func sumInts(m map[int]int) int {
	n := 0
	for _, v := range m { //xnuma:maporder-ok // want `updates n in iteration order` `needs a reason`
		n += v
	}
	return n
}

// An unused suppression (nothing to silence here) is flagged.
func lookupOnly(m map[int]int, k int) int {
	//xnuma:maporder-ok stale excuse // want `unused //xnuma:maporder-ok suppression`
	return m[k]
}

// A suppression naming an analyzer that does not exist is flagged.
func alsoLookup(m map[int]int, k int) bool {
	//xnuma:frobnicate-ok whatever // want `suppression names unknown analyzer frobnicate`
	_, ok := m[k]
	return ok
}
