// Package noalloc is golden-test input for the noalloc analyzer.
package noalloc

import "fmt"

type point struct{ x, y int }

type buf struct {
	rows []float64
	//xnuma:scratch
	tmp  []int
	sink any
}

func consume(v any) { _ = v }

//xnuma:noalloc
func hotBad(b *buf, n int, name string) {
	b.rows = make([]float64, n) // want `make call in //xnuma:noalloc function hotBad`
	xs := []int{1, 2}           // want `slice literal \[\]int\{\.\.\.\}`
	seen := map[int]bool{}      // want `map literal map\[int\]bool\{\.\.\.\}`
	p := &point{x: 1}           // want `&point\{\.\.\.\} in //xnuma:noalloc function hotBad`
	f := func() {}              // want `function literal`
	s := fmt.Sprintf("x%d", n)  // want `fmt\.Sprintf call`
	t := "run-" + name          // want `string concatenation`
	var out []int
	out = append(out, n) // want `append onto non-scratch slice out`
	b.sink = n           // want `interface assignment to b\.sink`
	consume(n)           // want `interface argument n`
	_, _, _, _, _, _, _ = xs, seen, p, f, s, t, out
}

//xnuma:noalloc
func hotGuarded(b *buf, n int) {
	// Amortized growth: allocation under a capacity test is the scratch
	// idiom the hot path depends on.
	if cap(b.rows) < n {
		b.rows = make([]float64, n)
	}
	if b.tmp == nil {
		b.tmp = make([]int, 0, 8)
	}
	b.rows = b.rows[:n]
}

//xnuma:noalloc
func hotScratch(b *buf, n int) {
	// Reusing capacity: append onto buf[:0] or onto a //xnuma:scratch
	// declaration does not allocate in the steady state.
	b.rows = append(b.rows[:0], float64(n))
	b.tmp = append(b.tmp, n)
}

//xnuma:noalloc
func hotPanic(b *buf, n int) {
	// panic arguments are off the measured path.
	if n < 0 {
		panic(fmt.Sprintf("negative rows: %d", n))
	}
	b.rows[0] = float64(n)
}

// Unannotated functions may allocate freely.
func coldSetup(n int) *buf {
	return &buf{rows: make([]float64, n)}
}

//xnuma:noalloc
func hotSuppressed(b *buf) {
	b.sink = point{} //xnuma:noalloc-ok boxed once per run at startup, not per epoch
}
