// Package detrand is golden-test input for the detrand analyzer.
package detrand

import (
	"math/rand" // want `import of math/rand in a simulation package`
	"os"
	"time"
)

// The import is the finding; every use of the package is already
// downstream of it.
func hostRandom() int {
	return rand.Int()
}

func seedFromClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in a simulation package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in a simulation package`
}

func readKnob() string {
	return os.Getenv("XNUMA_KNOB") // want `os\.Getenv in a simulation package`
}

func knobSet() bool {
	_, ok := os.LookupEnv("XNUMA_KNOB") // want `os\.LookupEnv in a simulation package`
	return ok
}

// Clean: virtual-time arithmetic uses time.Duration values without
// consulting the wall clock.
func scale(d time.Duration, n int) time.Duration {
	return d * time.Duration(n)
}

// Suppressed: wall-clock reads are legal when they only feed
// diagnostics outside the simulated machine.
func progressStamp() time.Time {
	return time.Now() //xnuma:detrand-ok feeds the progress logger, not the simulation
}
