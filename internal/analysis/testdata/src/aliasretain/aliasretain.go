// Package aliasretain is golden-test input for the aliasretain
// analyzer. It declares lookalikes of the engine accessor types (the
// analyzer accepts them because the package path contains "testdata").
package aliasretain

type Region struct{ dist, acc, hot []float64 }

func (r *Region) Dist() []float64       { return r.dist }
func (r *Region) AccessDist() []float64 { return r.acc }
func (r *Region) HotDist() []float64    { return r.hot }

type Instance struct{ rows []float64 }

func (in *Instance) row(i int) []float64 { return in.rows[i : i+1] }

type runner struct{ cycles []float64 }

func (r *runner) cycRow(src int) []float64 { return r.cycles[src : src+1] }

type holder struct {
	cached []float64
	all    [][]float64
}

var global []float64

func retainInField(h *holder, r *Region) {
	h.cached = r.Dist() // want `result of Region\.Dist stored in field h\.cached`
}

func retainInGlobal(r *Region) {
	global = r.AccessDist() // want `result of Region\.AccessDist stored in package-level variable global`
}

func retainInLiteral(r *Region) holder {
	return holder{
		cached: r.HotDist(), // want `result of Region\.HotDist stored in composite-literal field cached`
	}
}

func retainInElement(h *holder, in *Instance, i int) {
	h.all[i] = in.row(i) // want `result of Instance\.row stored in element of field h\.all`
}

func retainCostRow(h *holder, r *runner) {
	h.cached = r.cycRow(0) // want `result of runner\.cycRow stored in field h\.cached`
}

// Reading within the frame is the intended use: the view dies with the
// call.
func sum(r *Region) float64 {
	var s float64
	for _, v := range r.Dist() {
		s += v
	}
	return s
}

// Copying is always safe.
func snapshot(h *holder, r *Region) {
	h.cached = append(h.cached[:0], r.Dist()...)
}

func suppressed(h *holder, r *Region) {
	h.cached = r.Dist() //xnuma:aliasretain-ok rebuilt in the same pass that refreshes the cache
}
