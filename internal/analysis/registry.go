package analysis

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Maporder, Detrand, Noalloc, Aliasretain}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
