package analysis

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolEndToEnd exercises the full `go vet -vettool` path: the
// built cmd/xnuma-vet binary speaking the unitchecker protocol
// (-V=full handshake, vet.cfg unit files, vetx facts). The golden
// tests cover the analyzers in-process; this covers the driver —
// a protocol break (e.g. a missing VetxOutput write) only shows up
// under the real go vet.
func TestVettoolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and vets the whole module")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "xnuma-vet")
	build := exec.Command("go", "build", "-o", tool, "./cmd/xnuma-vet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cmd/xnuma-vet: %v\n%s", err, out)
	}

	vet := func(pattern string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+tool, pattern)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	// The merged tree must vet clean — the same invariant CI enforces.
	if out, err := vet("./..."); err != nil {
		t.Errorf("go vet -vettool over the repo reported findings:\n%s", out)
	}

	// A package with known violations must fail with our diagnostics.
	// The detrand golden input is a real compilable package whose path
	// (repro/internal/...) is in the sim-package scope.
	out, err := vet("./internal/analysis/testdata/src/detrand")
	if err == nil {
		t.Fatalf("go vet -vettool passed on the detrand golden input:\n%s", out)
	}
	for _, want := range []string{
		"detrand: import of math/rand",
		"detrand: time.Now in a simulation package",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vettool output missing %q:\n%s", want, out)
		}
	}
}
