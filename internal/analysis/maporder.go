package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags `for range` over a map in the determinism-critical
// packages whenever the loop body does order-dependent work: float
// accumulation (the class of bug fixed in fillLoads in PR 1 — float
// addition does not commute bit-for-bit), appending to a result slice,
// or mutating simulation state (including through calls). Go randomizes
// map iteration order per range statement, so any such loop makes two
// identical runs diverge.
//
// One shape is exempt: a body that only collects the map's keys into a
// slice (`for k := range m { keys = append(keys, k) }`) — the canonical
// first half of the iterate-sorted-keys idiom. The exemption does not
// verify the subsequent sort; pairing the collection with its sort is
// the reviewer's half of the contract.
var Maporder = &Analyzer{
	Name:  "maporder",
	Doc:   "flag order-dependent work inside range-over-map loops in determinism-critical packages",
	Scope: detCritical,
	Run:   runMaporder,
}

func runMaporder(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if isKeyCollection(pass, rs) {
				return true
			}
			if reason := orderDependentWork(pass, rs); reason != "" {
				pass.Reportf(rs.For,
					"iteration over map %s %s; iterate sorted keys instead, or annotate //xnuma:maporder-ok <reason>",
					types.ExprString(rs.X), reason)
			}
			return true
		})
	}
	return nil
}

// isKeyCollection reports whether the loop body is exactly
// `keys = append(keys, k)` with k the range key — pure key collection,
// exempt because a subsequent sort erases the iteration order.
func isKeyCollection(pass *Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return false
	}
	dst, ok := call.Args[0].(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(dst) != pass.TypesInfo.ObjectOf(lhs) {
		return false
	}
	keyArg, ok := call.Args[1].(*ast.Ident)
	if !ok {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	return pass.TypesInfo.ObjectOf(keyArg) == pass.TypesInfo.ObjectOf(key)
}

// orderDependentWork classifies the loop body, returning a description
// of the first (most specific) order-dependent effect, or "" for a body
// whose effects cannot depend on iteration order.
func orderDependentWork(pass *Pass, rs *ast.RangeStmt) string {
	info := pass.TypesInfo
	bodyStart, bodyEnd := rs.Body.Pos(), rs.Body.End()
	loopLocal := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return true // blank identifier
		}
		return obj.Pos() >= bodyStart && obj.Pos() < bodyEnd ||
			obj.Pos() >= rs.Pos() && obj.Pos() < rs.Body.Pos() // the range key/value themselves
	}

	var floats, appends bool
	var mutation string
	note := func(s string) {
		if mutation == "" {
			mutation = s
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			if n.Tok != token.ASSIGN { // compound: +=, -=, *=, /=, ...
				if t := info.TypeOf(n.Lhs[0]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
						floats = true
						return true
					}
				}
				if !loopLocal(n.Lhs[0]) {
					note("updates " + types.ExprString(n.Lhs[0]))
				}
				return true
			}
			for _, l := range n.Lhs {
				if !loopLocal(l) {
					note("writes " + types.ExprString(l))
				}
			}
		case *ast.IncDecStmt:
			if !loopLocal(n.X) {
				note("updates " + types.ExprString(n.X))
			}
		case *ast.CallExpr:
			if info.Types[n.Fun].IsType() { // conversion
				return true
			}
			switch {
			case isBuiltin(pass, n.Fun, "append"):
				appends = true
			case isBuiltin(pass, n.Fun, "delete"):
				note("deletes from " + types.ExprString(n.Args[0]))
			case isBuiltin(pass, n.Fun, "len"), isBuiltin(pass, n.Fun, "cap"),
				isBuiltin(pass, n.Fun, "min"), isBuiltin(pass, n.Fun, "max"),
				isBuiltin(pass, n.Fun, "panic"):
				// Pure, or terminates the run.
			default:
				note("calls " + types.ExprString(n.Fun))
			}
		case *ast.SendStmt, *ast.GoStmt, *ast.DeferStmt:
			note("has order-dependent control flow")
		case *ast.ReturnStmt:
			note("returns mid-iteration (nondeterministic choice of element)")
		}
		return true
	})
	switch {
	case floats:
		return "accumulates floating-point values in iteration order (float addition does not commute bit-for-bit)"
	case appends:
		return "appends to a result slice in iteration order"
	case mutation != "":
		return mutation + " in iteration order"
	}
	return ""
}

// isBuiltin reports whether fun denotes the named builtin.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok
}
