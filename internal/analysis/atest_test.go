package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The golden harness mirrors golang.org/x/tools/go/analysis/analysistest:
// each testdata/src/<analyzer> package annotates the lines that must be
// flagged with `// want "regex" ["regex" ...]` comments; the harness
// runs the full suite (scopes ignored — testdata paths are not
// simulation packages) and diffs diagnostics against expectations both
// ways. The `// want` marker may ride inside a suppression comment,
// because suppression reasons stop at an embedded `//`.

// expectation is one `// want` pattern, anchored to a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func loadGolden(t *testing.T, name string) (*Package, RunResult) {
	t.Helper()
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadPackages(root, "./internal/analysis/testdata/src/"+name)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages for %s, want 1", len(pkgs), name)
	}
	res, err := RunAnalyzers(pkgs[0], All(), true)
	if err != nil {
		t.Fatal(err)
	}
	return pkgs[0], res
}

func checkGolden(t *testing.T, name string) (*Package, RunResult) {
	t.Helper()
	pkg, res := loadGolden(t, name)

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(t, pkg.Fset, c.Pos(), c.Text)...)
			}
		}
	}

	for _, d := range res.Diagnostics {
		pos := pkg.Fset.Position(d.Pos)
		var hit *expectation
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s",
				filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message)
			continue
		}
		hit.matched = true
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q",
				filepath.Base(w.file), w.line, w.raw)
		}
	}
	return pkg, res
}

// parseWants extracts the quoted regexes following a `// want ` marker
// inside the comment text.
func parseWants(t *testing.T, fset *token.FileSet, pos token.Pos, text string) []*expectation {
	t.Helper()
	i := strings.Index(text, "// want ")
	if i < 0 {
		return nil
	}
	p := fset.Position(pos)
	rest := strings.TrimSpace(text[i+len("// want "):])
	var out []*expectation
	for rest != "" {
		var raw string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern: %s", p.Filename, p.Line, rest)
			}
			raw = rest[1 : 1+end]
			rest = strings.TrimSpace(rest[2+end:])
		case '"':
			var err error
			end := strings.IndexByte(rest[1:], '"')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern: %s", p.Filename, p.Line, rest)
			}
			raw, err = strconv.Unquote(rest[:2+end])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %s: %v", p.Filename, p.Line, rest[:2+end], err)
			}
			rest = strings.TrimSpace(rest[2+end:])
		default:
			t.Fatalf("%s:%d: want patterns must be quoted: %s", p.Filename, p.Line, rest)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", p.Filename, p.Line, raw, err)
		}
		out = append(out, &expectation{file: p.Filename, line: p.Line, re: re, raw: raw})
	}
	return out
}

func TestMaporderGolden(t *testing.T) {
	_, res := checkGolden(t, "maporder")
	// Suppression accounting: the two reasoned suppressions silence one
	// finding each; the stale and unknown ones are diagnostics, not
	// suppressions.
	if len(res.Suppressed) != 2 {
		t.Errorf("suppressed = %d, want 2: %s", len(res.Suppressed), fmtDiags(res.Suppressed))
	}
	if len(res.Suppressions) != 3 { // two used + one stale (valid but unused)
		t.Errorf("suppressions = %d, want 3: %+v", len(res.Suppressions), res.Suppressions)
	}
	for _, s := range res.Suppressions {
		if s.Reason == "" {
			t.Errorf("suppression at %s:%d recorded without a reason", s.File, s.Line)
		}
	}
}

func TestDetrandGolden(t *testing.T) {
	_, res := checkGolden(t, "detrand")
	if len(res.Suppressed) != 1 {
		t.Errorf("suppressed = %d, want 1: %s", len(res.Suppressed), fmtDiags(res.Suppressed))
	}
}

func TestNoallocGolden(t *testing.T) {
	_, res := checkGolden(t, "noalloc")
	if len(res.Suppressed) != 1 {
		t.Errorf("suppressed = %d, want 1: %s", len(res.Suppressed), fmtDiags(res.Suppressed))
	}
}

func TestAliasretainGolden(t *testing.T) {
	_, res := checkGolden(t, "aliasretain")
	if len(res.Suppressed) != 1 {
		t.Errorf("suppressed = %d, want 1: %s", len(res.Suppressed), fmtDiags(res.Suppressed))
	}
}

func fmtDiags(ds []Diagnostic) string {
	var parts []string
	for _, d := range ds {
		parts = append(parts, fmt.Sprintf("%s: %s", d.Analyzer, d.Message))
	}
	return strings.Join(parts, "; ")
}
