package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"
)

// This file is the xnuma-vet driver. It speaks two protocols:
//
//   - standalone: `xnuma-vet [patterns]` loads packages through go list
//     (loader.go) and prints findings — the developer loop.
//   - vettool: `go vet -vettool=$(pwd)/bin/xnuma-vet ./...` invokes the
//     tool once with -V=full (a version handshake cmd/go uses as a
//     cache key) and then once per package with the path to a vet.cfg
//     file describing the type-checked package. This is the CI loop: go
//     vet hands us exactly the export data the compiler produced, and
//     caches clean results per package.
//
// The vet.cfg schema mirrors the vetConfig struct in
// cmd/go/internal/work/exec.go; the subset decoded here is what the
// analyzers need.

// vetConfig is the JSON payload go vet writes for each package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// VetMain is the entry point of cmd/xnuma-vet. It never returns.
func VetMain() {
	args := os.Args[1:]

	// Version handshake: output must be `<name> version <id>` with a
	// non-"devel" id — cmd/go folds the id into its action cache key.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Println("xnuma-vet version v1")
		os.Exit(0)
	}
	// Flag discovery: cmd/go asks which analyzer flags the tool accepts
	// before forwarding user flags. xnuma-vet takes none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		os.Exit(0)
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettoolMode(args[0]))
	}

	suppressions := false
	var patterns []string
	for _, a := range args {
		switch a {
		case "-suppressions", "--suppressions":
			suppressions = true
		case "-h", "-help", "--help":
			usage(os.Stdout)
			os.Exit(0)
		default:
			if strings.HasPrefix(a, "-") {
				fmt.Fprintf(os.Stderr, "xnuma-vet: unknown flag %s\n", a)
				usage(os.Stderr)
				os.Exit(2)
			}
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(standaloneMode(patterns, suppressions))
}

func usage(w io.Writer) {
	fmt.Fprintf(w, "usage: xnuma-vet [-suppressions] [packages]\n\n")
	fmt.Fprintf(w, "Invariant analyzers for the xnuma repo:\n\n")
	for _, a := range All() {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(w, "\nSuppress a finding with a trailing `//xnuma:<analyzer>-ok <reason>`\n")
	fmt.Fprintf(w, "comment (or one alone on the line above). The reason is mandatory;\n")
	fmt.Fprintf(w, "unused suppressions are themselves findings. -suppressions prints the\n")
	fmt.Fprintf(w, "inventory of active suppressions instead of checking.\n")
}

// standaloneMode loads patterns via go list and reports findings.
// Returns the process exit code.
func standaloneMode(patterns []string, suppressions bool) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xnuma-vet:", err)
		return 1
	}
	pkgs, err := LoadPackages(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xnuma-vet:", err)
		return 1
	}
	exit := 0
	suppressed := 0
	perAnalyzer := map[string]int{}
	var inventory []string
	for _, pkg := range pkgs {
		res, err := RunAnalyzers(pkg, All(), false)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xnuma-vet: %s: %v\n", pkg.Path, err)
			return 1
		}
		if !suppressions {
			for _, d := range res.Diagnostics {
				fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
				exit = 2
			}
			continue
		}
		suppressed += len(res.Suppressed)
		for _, s := range res.Suppressions {
			perAnalyzer[s.Analyzer]++
			inventory = append(inventory, fmt.Sprintf("%s:%d: //xnuma:%s-ok (%s)", s.File, s.Line, s.Analyzer, s.Reason))
		}
	}
	if suppressions {
		sort.Strings(inventory)
		for _, l := range inventory {
			fmt.Println(l)
		}
		var names []string
		for n := range perAnalyzer {
			names = append(names, n)
		}
		sort.Strings(names)
		var parts []string
		for _, n := range names {
			parts = append(parts, fmt.Sprintf("%s=%d", n, perAnalyzer[n]))
		}
		fmt.Printf("%d suppressions (%s) silencing %d findings\n",
			len(inventory), strings.Join(parts, ", "), suppressed)
	}
	return exit
}

// vettoolMode handles one `go vet` unit of work. Returns the process
// exit code: 0 for clean, 2 for findings (any nonzero exit makes go
// vet report the package).
func vettoolMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xnuma-vet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "xnuma-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// go vet caches our (empty) per-package output; the file must exist
	// even when there is nothing to say, and VetxOnly units (dependencies
	// vetted only for their facts) need nothing else.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "xnuma-vet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	pkg, err := typeCheckVetUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "xnuma-vet:", err)
		return 1
	}
	res, err := RunAnalyzers(pkg, All(), false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xnuma-vet: %s: %v\n", pkg.Path, err)
		return 1
	}
	exit := 0
	for _, d := range res.Diagnostics {
		// file:line:col: message — the shape go vet relays verbatim.
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		exit = 2
	}
	return exit
}

// typeCheckVetUnit type-checks the package a vet.cfg describes,
// resolving imports through the export files go vet listed.
func typeCheckVetUnit(cfg *vetConfig) (*Package, error) {
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		return nil, fmt.Errorf("unsupported compiler %q", cfg.Compiler)
	}
	fset := token.NewFileSet()
	imp := newCachedImporter(fset, func(path string) (string, bool) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	pkg, err := typeCheckWithVersion(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.GoVersion)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// typeCheckWithVersion is typeCheck with the language version pinned to
// what go vet reported for the package.
func typeCheckWithVersion(fset *token.FileSet, imp types.Importer, path, dir string, files []string, goVersion string) (*Package, error) {
	pkg, err := typeCheckConfig(fset, imp, path, dir, files, func(conf *types.Config) {
		if goVersion != "" {
			conf.GoVersion = goVersion
		}
	})
	return pkg, err
}
