package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Noalloc checks functions annotated //xnuma:noalloc — the epoch hot
// path — for AST-level allocation forms: make/new, slice/map/pointer
// composite literals, growing appends onto non-scratch slices, function
// literals (closures), fmt calls, string building, and concrete-to-
// interface conversions (boxing). The allocs/op gate in BenchmarkEpoch
// already proves the steady state allocates nothing; this analyzer adds
// source-level attribution — it names the line that would break the
// gate, before the benchmark runs.
//
// Two growth idioms are deliberately legal, because the hot path
// amortizes them:
//
//   - allocation under an if whose condition tests cap/len or nil —
//     scratch growth and lazy cache warm-up (foldRows, combinedDistInto,
//     Region.Dist);
//   - append onto a `buf[:0]`-style slice expression or onto a
//     declaration marked //xnuma:scratch — reuse of capacity, not
//     growth.
//
// Arguments of panic() are exempt: a panicking run is already off the
// measured path.
var Noalloc = &Analyzer{
	Name:  "noalloc",
	Doc:   "forbid allocation forms inside functions annotated //xnuma:noalloc",
	Scope: simPackage,
	Run:   runNoalloc,
}

func runNoalloc(pass *Pass) error {
	scratch := scratchLines(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if pass.isTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !HasNoallocAnnotation(fn) {
				continue
			}
			checkNoalloc(pass, fn, scratch)
		}
	}
	return nil
}

func checkNoalloc(pass *Pass, fn *ast.FuncDecl, scratch map[string]map[int]bool) {
	info := pass.TypesInfo
	parents := parentMap(fn.Body)

	// guarded reports whether n sits under an if whose condition tests
	// capacity (cap/len call) or nil — the amortized-growth idiom.
	guarded := func(n ast.Node) bool {
		for p := parents[n]; p != nil; p = parents[p] {
			ifs, ok := p.(*ast.IfStmt)
			if !ok {
				continue
			}
			if condIsCapacityTest(pass, ifs.Cond) {
				return true
			}
		}
		return false
	}
	inPanicArg := func(n ast.Node) bool {
		for p := parents[n]; p != nil; p = parents[p] {
			if call, ok := p.(*ast.CallExpr); ok && isBuiltin(pass, call.Fun, "panic") {
				return true
			}
		}
		return false
	}
	report := func(n ast.Node, form, hint string) {
		if inPanicArg(n) {
			return
		}
		pass.Reportf(n.Pos(), "%s in //xnuma:noalloc function %s (%s)", form, fn.Name.Name, hint)
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(pass, n.Fun, "make"), isBuiltin(pass, n.Fun, "new"):
				if !guarded(n) {
					report(n, types.ExprString(n.Fun)+" call", "hot-path allocation; pre-size the buffer, or guard growth with a cap/len or nil check")
				}
			case isBuiltin(pass, n.Fun, "append"):
				if !guarded(n) && !appendsToScratch(pass, n, scratch) {
					report(n, "append onto non-scratch slice "+types.ExprString(n.Args[0]),
						"may grow per call; append onto buf[:0], or mark the buffer //xnuma:scratch")
				}
			case isFmtCall(pass, n):
				report(n, types.ExprString(n.Fun)+" call", "fmt allocates on every call; format off the hot path")
			default:
				checkBoxedArgs(pass, n, report)
			}
			if conv, boxes := isBoxingConversion(pass, n); conv {
				if boxes {
					report(n, "conversion "+types.ExprString(n.Fun)+"(...)", "boxing a value into an interface allocates")
				}
				return true
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				if !guarded(n) {
					report(n, "slice literal "+types.ExprString(n.Type)+"{...}", "hot-path allocation; use a scratch buffer")
				}
				return false
			case *types.Map:
				if !guarded(n) {
					report(n, "map literal "+types.ExprString(n.Type)+"{...}", "hot-path allocation; use a scratch structure")
				}
				return false
			default:
				if u, ok := parents[n].(*ast.UnaryExpr); ok && u.Op == token.AND && !guarded(n) {
					report(u, "&"+types.ExprString(n.Type)+"{...}", "heap-allocates a new object per call; reuse one")
					return false
				}
			}
		case *ast.FuncLit:
			report(n, "function literal", "closures allocate; hoist to a named function or method value stored once")
			return false
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n, "string concatenation", "builds a new string per call")
					}
				}
			}
		case *ast.AssignStmt:
			checkBoxedAssign(pass, n, report)
		}
		return true
	})
}

// parentMap records each node's parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// condIsCapacityTest reports whether cond mentions cap()/len() or
// compares against nil — the shapes of the amortized-growth guard.
func condIsCapacityTest(pass *Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(pass, n.Fun, "cap") || isBuiltin(pass, n.Fun, "len") {
				found = true
			}
		case *ast.Ident:
			if n.Name == "nil" {
				found = true
			}
		}
		return !found
	})
	return found
}

// appendsToScratch reports whether the append's destination is a
// reused buffer: a slice expression (buf[:0]) or a declaration marked
// //xnuma:scratch.
func appendsToScratch(pass *Pass, call *ast.CallExpr, scratch map[string]map[int]bool) bool {
	if len(call.Args) == 0 {
		return false
	}
	switch dst := call.Args[0].(type) {
	case *ast.SliceExpr:
		return true
	case *ast.StarExpr:
		// *p where p points at a scratch buffer (the pageSet move log).
		inner := *call
		inner.Args = append([]ast.Expr{dst.X}, call.Args[1:]...)
		return appendsToScratch(pass, &inner, scratch)
	case *ast.Ident:
		if obj := pass.TypesInfo.ObjectOf(dst); obj != nil {
			return scratchAnnotated(pass.Fset, scratch, obj.Pos())
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[dst]; ok {
			return scratchAnnotated(pass.Fset, scratch, sel.Obj().Pos())
		}
		if obj := pass.TypesInfo.ObjectOf(dst.Sel); obj != nil {
			return scratchAnnotated(pass.Fset, scratch, obj.Pos())
		}
	}
	return false
}

// isFmtCall reports whether call invokes a function from package fmt.
func isFmtCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == "fmt"
}

// isBoxingConversion reports whether call is a type conversion, and if
// so whether it boxes a concrete non-pointer value into an interface or
// builds a string from a byte/rune slice.
func isBoxingConversion(pass *Pass, call *ast.CallExpr) (conv, boxes bool) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false, false
	}
	dst := tv.Type
	src := pass.TypesInfo.TypeOf(call.Args[0])
	if src == nil {
		return true, false
	}
	if types.IsInterface(dst.Underlying()) {
		return true, boxingValue(src)
	}
	if b, ok := dst.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		if _, fromSlice := src.Underlying().(*types.Slice); fromSlice {
			return true, true
		}
	}
	return true, false
}

// boxingValue reports whether storing a value of type t into an
// interface allocates: anything but a pointer, an existing interface,
// or untyped nil.
func boxingValue(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UntypedNil
	}
	return true
}

// checkBoxedArgs flags concrete non-pointer arguments passed to
// interface-typed parameters — each one boxes.
func checkBoxedArgs(pass *Pass, call *ast.CallExpr, report func(ast.Node, string, string)) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no boxing
			}
			last := params.At(params.Len() - 1).Type()
			sl, ok := last.Underlying().(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || !boxingValue(at) {
			continue
		}
		report(arg, "interface argument "+types.ExprString(arg),
			"boxing a value into an interface parameter allocates")
	}
}

// checkBoxedAssign flags assignments of concrete non-pointer values to
// interface-typed destinations.
func checkBoxedAssign(pass *Pass, as *ast.AssignStmt, report func(ast.Node, string, string)) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, l := range as.Lhs {
		lt := pass.TypesInfo.TypeOf(l)
		if lt == nil || !types.IsInterface(lt.Underlying()) {
			continue
		}
		rt := pass.TypesInfo.TypeOf(as.Rhs[i])
		if rt == nil || !boxingValue(rt) {
			continue
		}
		report(as.Rhs[i], "interface assignment to "+types.ExprString(l),
			"boxing a value into an interface allocates")
	}
}
