package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path    string
	Name    string
	Dir     string
	GoFiles []string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Match      []string
	Incomplete bool
	Error      *struct{ Err string }
}

// LoadPackages loads and type-checks the packages matching patterns,
// rooted at dir (any directory inside the module). It shells out to
// `go list -export -deps` so export data comes from the build cache —
// the same data `go vet` hands a vettool — keeping the loader free of
// any dependency beyond the standard library and the go tool.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Name,Dir,Export,GoFiles,Standard,Match,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exportFile := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exportFile[lp.ImportPath] = lp.Export
		}
		if len(lp.Match) > 0 {
			p := lp
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	imp := newCachedImporter(fset, func(path string) (string, bool) {
		f, ok := exportFile[path]
		return f, ok
	})

	var pkgs []*Package
	for _, lp := range targets {
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, imp, lp.ImportPath, lp.Dir, absFiles(lp.Dir, lp.GoFiles))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if filepath.IsAbs(n) {
			out[i] = n
		} else {
			out[i] = filepath.Join(dir, n)
		}
	}
	return out
}

// typeCheck parses files and type-checks them as package path, resolving
// imports through imp.
func typeCheck(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	return typeCheckConfig(fset, imp, path, dir, files, nil)
}

// typeCheckConfig is typeCheck with a hook to adjust the types.Config
// (the vettool driver pins GoVersion from vet.cfg).
func typeCheckConfig(fset *token.FileSet, imp types.Importer, path, dir string, files []string, tune func(*types.Config)) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", f, err)
		}
		syntax = append(syntax, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	if tune != nil {
		tune(&conf)
	}
	tpkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	name := ""
	if len(syntax) > 0 {
		name = syntax[0].Name.Name
	}
	return &Package{
		Path: path, Name: name, Dir: dir, GoFiles: files,
		Fset: fset, Files: syntax, Types: tpkg, Info: info,
	}, nil
}

// newCachedImporter returns a types.Importer that reads gc export data
// through lookup (import path -> export file), memoizing results so one
// load session type-checks shared dependencies once.
func newCachedImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	base := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return &cachedImporter{base: base, seen: map[string]*types.Package{}}
}

type cachedImporter struct {
	base types.Importer
	seen map[string]*types.Package
}

func (c *cachedImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.seen[path]; ok {
		return p, nil
	}
	p, err := c.base.Import(path)
	if err != nil {
		return nil, err
	}
	c.seen[path] = p
	return p, nil
}

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}
