package analysis

import (
	"go/token"
	"strings"
)

// The suppression grammar: a finding on line L of file F is silenced by
// a comment `//xnuma:<analyzer>-ok <reason>` placed either at the end of
// line L or alone on line L-1. The reason is mandatory — a bare
// suppression does not suppress and is reported as a diagnostic — and a
// suppression that silences nothing is reported as unused, so stale
// suppressions are flushed out as the code they excused improves.

// Suppression is one parsed //xnuma:<name>-ok comment.
type Suppression struct {
	Pos      token.Pos
	Analyzer string
	Reason   string
	// Line is the comment's own line; it suppresses findings on Line
	// and Line+1.
	Line int
	File string
}

const suppressPrefix = "//xnuma:"
const suppressSuffix = "-ok"

// parseSuppression parses one comment's text, returning ok=false for
// comments that are not suppressions at all. A suppression with an
// empty Reason is returned with ok=true so callers can flag it.
func parseSuppression(text string) (analyzer, reason string, ok bool) {
	if !strings.HasPrefix(text, suppressPrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, suppressPrefix)
	name, reason, _ := strings.Cut(rest, " ")
	if !strings.HasSuffix(name, suppressSuffix) {
		return "", "", false
	}
	// A `//` inside the reason starts a nested note (e.g. a reference, or
	// the test harness's `// want` expectations) — not part of the reason.
	reason, _, _ = strings.Cut(reason, "//")
	return strings.TrimSuffix(name, suppressSuffix), strings.TrimSpace(reason), true
}

// applySuppressions matches raw findings against the package's
// suppression comments for the active analyzers and produces the final
// diagnostic set, including the meta-diagnostics of the hygiene rules.
func applySuppressions(pkg *Package, active []string, raw []Diagnostic) RunResult {
	activeSet := make(map[string]bool, len(active))
	for _, a := range active {
		activeSet[a] = true
	}

	var res RunResult
	var valid []*Suppression
	// index: file -> line -> suppressions covering that line.
	type key struct {
		file string
		line int
	}
	covering := make(map[key][]*Suppression)

	for _, f := range pkg.Files {
		if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			// The analyzers skip test files, so suppressions there
			// could only ever be unused.
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseSuppression(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if !activeSet[name] {
					res.Diagnostics = append(res.Diagnostics, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: name,
						Message:  "suppression names unknown analyzer " + name,
					})
					continue
				}
				if reason == "" {
					// A reasonless suppression is a diagnostic and does
					// not suppress: the pressure to justify is the point.
					res.Diagnostics = append(res.Diagnostics, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: name,
						Message:  "//xnuma:" + name + "-ok needs a reason (//xnuma:" + name + "-ok <why this order/alloc/alias is safe>)",
					})
					continue
				}
				s := &Suppression{
					Pos: c.Pos(), Analyzer: name, Reason: reason,
					Line: pos.Line, File: pos.Filename,
				}
				valid = append(valid, s)
				covering[key{pos.Filename, pos.Line}] = append(covering[key{pos.Filename, pos.Line}], s)
				covering[key{pos.Filename, pos.Line + 1}] = append(covering[key{pos.Filename, pos.Line + 1}], s)
			}
		}
	}

	used := make(map[*Suppression]bool)
	for _, d := range raw {
		pos := pkg.Fset.Position(d.Pos)
		var hit *Suppression
		for _, s := range covering[key{pos.Filename, pos.Line}] {
			if s.Analyzer == d.Analyzer {
				hit = s
				break
			}
		}
		if hit != nil {
			used[hit] = true
			res.Suppressed = append(res.Suppressed, d)
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}

	for _, s := range valid {
		res.Suppressions = append(res.Suppressions, *s)
		if !used[s] {
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Pos:      s.Pos,
				Analyzer: s.Analyzer,
				Message:  "unused //xnuma:" + s.Analyzer + "-ok suppression (no " + s.Analyzer + " finding here — delete it)",
			})
		}
	}
	return res
}
