package analysis

import "strings"

// DetCriticalPackages are the packages whose outputs feed the
// deterministic result tables: everything the golden engine fixture,
// the seed-keyed cell cache and the (planned) resident sweep service
// assume is bit-for-bit reproducible at any worker count. maporder
// polices these.
var DetCriticalPackages = []string{
	"repro/internal/engine",
	"repro/internal/exp",
	"repro/internal/mem",
	"repro/internal/carrefour",
	"repro/internal/xen",
	"repro/internal/guest",
}

// simPackagePrefix scopes detrand: every package under internal/ models
// the simulated machine and must take randomness and time only from
// internal/sim's seeded streams and virtual clock. The cmd/ layer (CLI
// progress timing, profiling) legitimately reads the wall clock.
const simPackagePrefix = "repro/internal/"

// detCritical reports whether pkgPath is determinism-critical.
// go vet hands test variants paths like "repro/internal/engine
// [repro/internal/engine.test]"; the variant analyses the same source
// plus test files (which the analyzers skip), so the decoration is
// stripped before matching.
func detCritical(pkgPath string) bool {
	pkgPath = canonicalPath(pkgPath)
	for _, p := range DetCriticalPackages {
		if pkgPath == p {
			return true
		}
	}
	return false
}

// simPackage reports whether pkgPath is a simulation-model package.
func simPackage(pkgPath string) bool {
	return strings.HasPrefix(canonicalPath(pkgPath), simPackagePrefix)
}

// canonicalPath strips the " [pkg.test]" variant decoration and the
// "_test" external-test suffix go vet uses for test packages.
func canonicalPath(pkgPath string) string {
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	return strings.TrimSuffix(pkgPath, "_test")
}
