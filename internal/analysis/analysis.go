// Package analysis is the repo's invariant-analyzer suite: a small,
// dependency-free analogue of golang.org/x/tools/go/analysis (which this
// module deliberately does not depend on) plus four repo-specific
// analyzers that turn conventions the code base holds by discipline into
// machine-checked invariants:
//
//   - maporder: no order-dependent work inside `for range` over a map in
//     the determinism-critical packages (bit-for-bit reproducibility).
//   - detrand: no math/rand, time.Now or os.Getenv in simulation
//     packages — all randomness flows through internal/sim's seeded
//     streams and all time is virtual.
//   - noalloc: functions annotated //xnuma:noalloc (the epoch hot path)
//     contain no AST-level allocation forms, giving source-level
//     attribution that complements the allocs/op bench gate.
//   - aliasretain: results of the documented internal-slice accessors
//     (Region.Dist/AccessDist/HotDist, stream.distFor, Instance.row)
//     are not stored into struct fields or globals.
//
// The invariants exist because the repo's claim to reproduce the
// paper's result tables (Tables 2-3, Figures 5-8) rests on runs being a
// pure function of the seed: the golden engine fixture and the
// seed-keyed cell cache both assume bit-for-bit determinism, and the
// epoch benchmark's allocs/op gate assumes a zero-alloc hot path.
//
// The suite runs via cmd/xnuma-vet, either standalone over package
// patterns or as a `go vet -vettool` (see driver.go); scripts/vet.sh is
// the CI entry point. Findings are suppressed line-by-line with
// `//xnuma:<analyzer>-ok <reason>` comments; a suppression without a
// reason, or one that no longer matches a diagnostic, is itself a
// diagnostic, so suppressions cannot silently accumulate (suppress.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one invariant check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the checks could migrate to
// the real framework if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// comments (//xnuma:<name>-ok).
	Name string
	// Doc is the one-paragraph description shown by `xnuma-vet -help`.
	Doc string
	// Scope reports whether the analyzer applies to the package with the
	// given import path. It is consulted by drivers, not by Run, so
	// tests can exercise analyzers on testdata packages with arbitrary
	// paths. A nil Scope means every package.
	Scope func(pkgPath string) bool
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// isTestFile reports whether the file at pos is a _test.go file. The
// analyzers police production simulation code; tests iterate maps for
// their own order-independent assertions and are exempt.
func (p *Pass) isTestFile(pos token.Pos) bool {
	name := p.Fset.Position(pos).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// RunResult is what running the suite over one package yields.
type RunResult struct {
	// Diagnostics are the surviving findings, position-sorted. This
	// includes the meta-diagnostics from suppression hygiene (missing
	// reason, unused suppression).
	Diagnostics []Diagnostic
	// Suppressed are findings silenced by a valid suppression comment.
	Suppressed []Diagnostic
	// Suppressions is every valid suppression found in the package,
	// whether or not it fired, for the -suppressions inventory.
	Suppressions []Suppression
}

// RunAnalyzers runs the given analyzers over one loaded package,
// honoring each analyzer's Scope unless ignoreScope is set (the test
// harness sets it to exercise analyzers on testdata packages). It
// applies the //xnuma:<name>-ok suppression protocol to the raw
// findings.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, ignoreScope bool) (RunResult, error) {
	var raw []Diagnostic
	var active []string
	for _, a := range analyzers {
		active = append(active, a.Name)
		if !ignoreScope && a.Scope != nil && !a.Scope(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return RunResult{}, fmt.Errorf("%s: %w", a.Name, err)
		}
		raw = append(raw, pass.diags...)
	}
	res := applySuppressions(pkg, active, raw)
	sort.Slice(res.Diagnostics, func(i, j int) bool {
		return res.Diagnostics[i].Pos < res.Diagnostics[j].Pos
	})
	return res, nil
}
