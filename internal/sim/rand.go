package sim

// Rand is a small, fast, deterministic PRNG (xorshift64*). It is used
// instead of math/rand so that the simulation's random streams are fully
// under our control, splittable, and stable across Go releases.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is remapped to
// a fixed non-zero constant because the xorshift state must be non-zero.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Split derives an independent generator from r's current state. The two
// generators produce uncorrelated streams, which lets each subsystem own
// its randomness without perturbing the others when call orders change.
func (r *Rand) Split() *Rand {
	// Mix the state through SplitMix64 so the child stream diverges.
	z := r.Uint64() + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return NewRand(z ^ (z >> 31))
}

// Uint64 returns the next 64 random bits.
//
//xnuma:noalloc
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
//
//xnuma:noalloc
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
//
//xnuma:noalloc
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	// Inverse-CDF sampling; clamp the uniform away from 0 to avoid +Inf.
	u := r.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	return -mean * ln(1-u)
}

// ln is a minimal natural logarithm good to ~1e-9 for the range used by
// Exp (0 < x <= 1). Implemented locally to keep math imports obvious; it
// delegates to the bit-twiddling free series around ln(1+y).
func ln(x float64) float64 {
	// Range-reduce x = m * 2^k with m in [sqrt(1/2), sqrt(2)).
	if x <= 0 {
		panic("sim: ln of non-positive value")
	}
	k := 0
	for x < 0.7071067811865476 {
		x *= 2
		k--
	}
	for x >= 1.4142135623730951 {
		x /= 2
		k++
	}
	y := (x - 1) / (x + 1)
	y2 := y * y
	// atanh series: ln(x) = 2*(y + y^3/3 + y^5/5 + ...)
	sum, term := 0.0, y
	for i := 1; i < 40; i += 2 {
		sum += term / float64(i)
		term *= y2
	}
	const ln2 = 0.6931471805599453
	return 2*sum + float64(k)*ln2
}
