// Package sim provides the deterministic discrete-event core shared by
// every simulated subsystem: a virtual clock, an event queue and a
// reproducible pseudo-random number generator.
//
// Nothing in this package (or in any package built on it) reads the wall
// clock; all time is virtual and advances only through Engine.Step or
// Engine.Run. Two runs with the same seed and the same event sequence are
// bit-identical — the property that lets the paper's evaluation (§5) be
// regenerated reproducibly and the golden engine fixture hold
// bit-for-bit.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation.
type Time int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a scheduled callback. The callback runs with the engine clock
// set to the event's deadline.
type Event struct {
	deadline Time
	seq      uint64 // tie-breaker: FIFO among equal deadlines
	fn       func(now Time)
	index    int // heap index, -1 once popped or cancelled
}

// Deadline reports when the event fires.
func (e *Event) Deadline() Time { return e.deadline }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler.
// The zero value is ready to use.
type Engine struct {
	now    Time
	nextID uint64
	queue  eventHeap
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled, uncancelled events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at the absolute virtual time t.
// Scheduling in the past (t < Now) panics: it indicates a model bug.
func (e *Engine) At(t Time, fn func(now Time)) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{deadline: t, seq: e.nextID, fn: fn}
	e.nextID++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func(now Time)) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	return true
}

// Step fires the next event, advancing the clock to its deadline.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.deadline
	ev.fn(e.now)
	return true
}

// Run fires events until the queue drains or the clock would pass limit.
// Events scheduled exactly at limit still fire. It returns the number of
// events fired.
func (e *Engine) Run(limit Time) int {
	fired := 0
	for len(e.queue) > 0 && e.queue[0].deadline <= limit {
		e.Step()
		fired++
	}
	if e.now < limit && len(e.queue) == 0 {
		e.now = limit
	}
	return fired
}

// RunAll fires events until none remain and returns the number fired.
func (e *Engine) RunAll() int {
	fired := 0
	for e.Step() {
		fired++
	}
	return fired
}

// Advance moves the clock forward by d without firing events scheduled in
// the skipped window; it panics if any exist, since silently skipping
// events is always a model bug.
func (e *Engine) Advance(d Time) {
	target := e.now + d
	if len(e.queue) > 0 && e.queue[0].deadline <= target {
		panic(fmt.Sprintf("sim: Advance(%v) would skip event at %v", d, e.queue[0].deadline))
	}
	e.now = target
}
