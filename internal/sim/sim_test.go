package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func(Time) { order = append(order, 3) })
	e.At(10, func(Time) { order = append(order, 1) })
	e.At(20, func(Time) { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAmongEqualDeadlines(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(Time) { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-deadline events not FIFO: %v", order)
		}
	}
}

func TestEngineAfterAndCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(100, func(Time) { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for a pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("Cancel returned true for an already-cancelled event")
	}
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(10); i <= 100; i += 10 {
		e.At(i, func(Time) { count++ })
	}
	if n := e.Run(50); n != 5 {
		t.Fatalf("Run(50) fired %d events, want 5", n)
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", e.Pending())
	}
	// Clock does not advance past the limit when events remain.
	if e.Now() != 50 {
		t.Fatalf("Now() = %v, want 50", e.Now())
	}
}

func TestEngineRunAdvancesToLimitWhenEmpty(t *testing.T) {
	e := NewEngine()
	e.Run(1000)
	if e.Now() != 1000 {
		t.Fatalf("Now() = %v, want 1000 after draining", e.Now())
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func(Time) {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func(Time) {})
}

func TestEngineAdvance(t *testing.T) {
	e := NewEngine()
	e.Advance(100)
	if e.Now() != 100 {
		t.Fatalf("Now() = %v after Advance", e.Now())
	}
	e.At(150, func(Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("Advance over a pending event did not panic")
		}
	}()
	e.Advance(100)
}

func TestEventsScheduledDuringEvents(t *testing.T) {
	e := NewEngine()
	var log []Time
	e.At(10, func(now Time) {
		log = append(log, now)
		e.After(5, func(now Time) { log = append(log, now) })
	})
	e.RunAll()
	if len(log) != 2 || log[0] != 10 || log[1] != 15 {
		t.Fatalf("nested scheduling log = %v", log)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(7)
	child := r.Split()
	// The child stream must differ from the parent's continuation.
	diff := false
	for i := 0; i < 100; i++ {
		if r.Uint64() != child.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("split stream mirrors the parent")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(1)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRandFloat64Mean(t *testing.T) {
	r := NewRand(99)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandExpPositiveWithMean(t *testing.T) {
	r := NewRand(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(10)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 9.5 || mean > 10.5 {
		t.Fatalf("Exp mean = %v, want ~10", mean)
	}
}

func TestLnAccuracy(t *testing.T) {
	// Compare against known values.
	cases := []struct{ x, want float64 }{
		{1, 0},
		{2, 0.6931471805599453},
		{0.5, -0.6931471805599453},
		{10, 2.302585092994046},
		{1e-6, -13.815510557964274},
	}
	for _, c := range cases {
		got := ln(c.x)
		if d := got - c.want; d > 1e-9 || d < -1e-9 {
			t.Errorf("ln(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}
