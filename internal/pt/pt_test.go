package pt

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestGuestTableMapUnmap(t *testing.T) {
	g := NewGuestTable()
	g.Map(5, 100)
	if p, ok := g.Lookup(5); !ok || p != 100 {
		t.Fatalf("Lookup(5) = %d,%v", p, ok)
	}
	if _, ok := g.Lookup(6); ok {
		t.Fatal("Lookup(6) found an unmapped entry")
	}
	if got := g.Unmap(5); got != 100 {
		t.Fatalf("Unmap returned %d", got)
	}
	if g.Len() != 0 {
		t.Fatal("table not empty after unmap")
	}
}

func TestGuestTableDoubleMapPanics(t *testing.T) {
	g := NewGuestTable()
	g.Map(1, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("double map did not panic")
		}
	}()
	g.Map(1, 11)
}

func TestGuestTableUnmapAbsentPanics(t *testing.T) {
	g := NewGuestTable()
	defer func() {
		if recover() == nil {
			t.Fatal("unmapping absent entry did not panic")
		}
	}()
	g.Unmap(9)
}

func TestHypervisorTableFaultResolution(t *testing.T) {
	h := NewHypervisorTable()
	faults := 0
	h.SetFaultHandler(func(pfn mem.PFN, write bool, kind FaultKind) {
		faults++
		if kind != FaultNotPresent {
			t.Fatalf("unexpected fault kind %v", kind)
		}
		h.Map(pfn, mem.MFN(1000+pfn))
	})
	mfn := h.Translate(7, false)
	if mfn != 1007 {
		t.Fatalf("Translate = %d", mfn)
	}
	if faults != 1 {
		t.Fatalf("faults = %d, want 1", faults)
	}
	// Second access hits the fast path.
	h.Translate(7, false)
	if faults != 1 {
		t.Fatalf("fast path faulted: %d", faults)
	}
}

func TestHypervisorTableWriteProtect(t *testing.T) {
	h := NewHypervisorTable()
	h.Map(3, 300)
	h.WriteProtect(3)
	// Reads pass through.
	if got := h.Translate(3, false); got != 300 {
		t.Fatalf("read through WP entry = %d", got)
	}
	// Writes fault until unprotected.
	wpFaults := 0
	h.SetFaultHandler(func(pfn mem.PFN, write bool, kind FaultKind) {
		if kind != FaultWriteProtected || !write {
			t.Fatalf("unexpected fault %v write=%v", kind, write)
		}
		wpFaults++
		h.Unprotect(pfn)
	})
	if got := h.Translate(3, true); got != 300 {
		t.Fatalf("write after WP fault = %d", got)
	}
	if wpFaults != 1 {
		t.Fatalf("wpFaults = %d", wpFaults)
	}
	if h.WriteProtFaults != 1 {
		t.Fatalf("counter = %d", h.WriteProtFaults)
	}
}

func TestHypervisorTableInvalidate(t *testing.T) {
	h := NewHypervisorTable()
	h.Map(1, 11)
	if got := h.Invalidate(1); got != 11 {
		t.Fatalf("Invalidate returned %d", got)
	}
	if got := h.Invalidate(1); got != mem.NoMFN {
		t.Fatalf("second Invalidate returned %d, want NoMFN", got)
	}
	if _, ok := h.TranslateNoFault(1); ok {
		t.Fatal("invalidated entry still translates")
	}
}

func TestTranslateNoFaultNeverCallsHandler(t *testing.T) {
	h := NewHypervisorTable()
	h.SetFaultHandler(func(mem.PFN, bool, FaultKind) {
		t.Fatal("IOMMU-style translation must not fault into software (§4.4.1)")
	})
	if _, ok := h.TranslateNoFault(42); ok {
		t.Fatal("invalid entry translated")
	}
	h.entries[42] = HypervisorEntry{MFN: 420, Valid: true}
	mfn, ok := h.TranslateNoFault(42)
	if !ok || mfn != 420 {
		t.Fatalf("TranslateNoFault = %d,%v", mfn, ok)
	}
}

func TestUnresolvedFaultPanics(t *testing.T) {
	h := NewHypervisorTable()
	h.SetFaultHandler(func(mem.PFN, bool, FaultKind) {}) // never resolves
	defer func() {
		if recover() == nil {
			t.Fatal("unresolved fault did not panic")
		}
	}()
	h.Translate(1, false)
}

func TestWriteProtectInvalidPanics(t *testing.T) {
	h := NewHypervisorTable()
	defer func() {
		if recover() == nil {
			t.Fatal("write-protecting invalid entry did not panic")
		}
	}()
	h.WriteProtect(1)
}

func TestWalkVisitsAll(t *testing.T) {
	h := NewHypervisorTable()
	for p := mem.PFN(0); p < 100; p++ {
		h.Map(p, mem.MFN(p*2))
	}
	count := 0
	h.Walk(func(p mem.PFN, e HypervisorEntry) {
		count++
		if e.MFN != mem.MFN(p*2) {
			t.Fatalf("entry %d has MFN %d", p, e.MFN)
		}
	})
	if count != 100 {
		t.Fatalf("walked %d entries", count)
	}
}

// TestQuickMapInvalidate property-tests that map/invalidate keeps the
// table consistent: an entry translates iff it was mapped after its last
// invalidation.
func TestQuickMapInvalidate(t *testing.T) {
	check := func(ops []uint16) bool {
		h := NewHypervisorTable()
		expect := make(map[mem.PFN]mem.MFN)
		for i, op := range ops {
			pfn := mem.PFN(op % 64)
			if op%3 == 0 {
				h.Invalidate(pfn)
				delete(expect, pfn)
			} else {
				mfn := mem.MFN(i)
				h.Map(pfn, mfn)
				expect[pfn] = mfn
			}
		}
		for pfn, want := range expect {
			got, ok := h.TranslateNoFault(pfn)
			if !ok || got != want {
				return false
			}
		}
		return h.Len() == len(expect)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultKindString(t *testing.T) {
	if FaultNotPresent.String() != "not-present" || FaultWriteProtected.String() != "write-protected" {
		t.Fatal("FaultKind strings wrong")
	}
}
