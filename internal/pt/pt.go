// Package pt models the two page-table layers the paper's mechanisms act
// on: the guest page table, owned by the guest operating system and
// mapping process-virtual pages to physical pages of the virtual machine,
// and the hypervisor page table (EPT/NPT), owned by the hypervisor and
// mapping physical pages to machine pages.
//
// The hypervisor table is the heart of the paper's internal interface
// (§4.1): a NUMA policy places a physical page on a node by choosing
// which machine frame backs it, and migrates a page by write-protecting
// the entry, copying, and remapping.
package pt

import (
	"fmt"

	"repro/internal/mem"
)

// VPN is a virtual page number within one process address space.
type VPN uint64

// GuestEntry is one guest page-table entry.
type GuestEntry struct {
	PFN     mem.PFN
	Present bool
}

// GuestTable maps the virtual pages of a single process to physical pages
// of its virtual machine. The guest OS populates it lazily (first-touch
// faulting happens in the guest, not here).
type GuestTable struct {
	entries map[VPN]mem.PFN
}

// NewGuestTable returns an empty table.
func NewGuestTable() *GuestTable {
	return &GuestTable{entries: make(map[VPN]mem.PFN)}
}

// Lookup translates a virtual page; ok is false on a guest page fault.
func (g *GuestTable) Lookup(v VPN) (mem.PFN, bool) {
	p, ok := g.entries[v]
	return p, ok
}

// Map installs a translation. Mapping an already-present entry panics:
// the guest OS must unmap first (it indicates an allocator bug).
func (g *GuestTable) Map(v VPN, p mem.PFN) {
	if old, ok := g.entries[v]; ok {
		panic(fmt.Sprintf("pt: VPN %d already mapped to PFN %d", v, old))
	}
	g.entries[v] = p
}

// Unmap removes a translation and returns the physical page it pointed
// to. Unmapping an absent entry panics.
func (g *GuestTable) Unmap(v VPN) mem.PFN {
	p, ok := g.entries[v]
	if !ok {
		panic(fmt.Sprintf("pt: VPN %d not mapped", v))
	}
	delete(g.entries, v)
	return p
}

// Reset returns the table to its freshly constructed state. The entry
// storage is kept: clearing a Go map retains its buckets, so a recycled
// table refilled to a similar size allocates nothing — the point of
// reusing tables across warm-pool leases instead of rebuilding them.
func (g *GuestTable) Reset() {
	clear(g.entries)
}

// Len reports the number of present entries.
func (g *GuestTable) Len() int { return len(g.entries) }

// Walk calls fn for every present entry. Iteration order is unspecified.
func (g *GuestTable) Walk(fn func(VPN, mem.PFN)) {
	for v, p := range g.entries {
		fn(v, p)
	}
}

// HypervisorEntry is one hypervisor page-table entry for a physical page.
type HypervisorEntry struct {
	MFN          mem.MFN
	Valid        bool
	WriteProtect bool
}

// FaultKind distinguishes hypervisor page faults.
type FaultKind int

const (
	// FaultNotPresent fires on any access to an invalid entry — the hook
	// the first-touch policy uses to place the page (§4.2.2).
	FaultNotPresent FaultKind = iota
	// FaultWriteProtected fires on a write to a write-protected entry —
	// the hook the migration mechanism uses to quiesce writers (§4.1).
	FaultWriteProtected
)

func (k FaultKind) String() string {
	switch k {
	case FaultNotPresent:
		return "not-present"
	case FaultWriteProtected:
		return "write-protected"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultHandler resolves a hypervisor page fault. It must leave the entry
// in a state that allows the access to proceed (valid, and writable if
// write is true) or the simulated access panics.
type FaultHandler func(pfn mem.PFN, write bool, kind FaultKind)

// HypervisorTable maps one domain's physical pages to machine frames.
type HypervisorTable struct {
	entries map[mem.PFN]HypervisorEntry
	handler FaultHandler

	// Counters for the evaluation.
	Faults          uint64
	WriteProtFaults uint64
}

// NewHypervisorTable returns an empty table with no fault handler; every
// entry is invalid until mapped.
func NewHypervisorTable() *HypervisorTable {
	return &HypervisorTable{entries: make(map[mem.PFN]HypervisorEntry)}
}

// SetFaultHandler installs the fault resolution hook (the active NUMA
// policy registers itself here).
func (h *HypervisorTable) SetFaultHandler(fn FaultHandler) { h.handler = fn }

// Lookup returns the entry for pfn (zero entry when absent).
func (h *HypervisorTable) Lookup(pfn mem.PFN) HypervisorEntry {
	return h.entries[pfn]
}

// Map installs pfn→mfn, overwriting any previous entry. The entry becomes
// valid and writable.
func (h *HypervisorTable) Map(pfn mem.PFN, mfn mem.MFN) {
	h.entries[pfn] = HypervisorEntry{MFN: mfn, Valid: true}
}

// Invalidate clears the entry for pfn and returns the machine frame it
// held (NoMFN when it was already invalid). Subsequent accesses fault.
func (h *HypervisorTable) Invalidate(pfn mem.PFN) mem.MFN {
	e, ok := h.entries[pfn]
	if !ok || !e.Valid {
		return mem.NoMFN
	}
	delete(h.entries, pfn)
	return e.MFN
}

// WriteProtect marks pfn's entry read-only. It panics on invalid entries:
// migration must only target mapped pages.
func (h *HypervisorTable) WriteProtect(pfn mem.PFN) {
	e, ok := h.entries[pfn]
	if !ok || !e.Valid {
		panic(fmt.Sprintf("pt: write-protecting invalid PFN %d", pfn))
	}
	e.WriteProtect = true
	h.entries[pfn] = e
}

// Unprotect clears the write-protect bit.
func (h *HypervisorTable) Unprotect(pfn mem.PFN) {
	e, ok := h.entries[pfn]
	if !ok || !e.Valid {
		panic(fmt.Sprintf("pt: unprotecting invalid PFN %d", pfn))
	}
	e.WriteProtect = false
	h.entries[pfn] = e
}

// Translate resolves pfn for an access, delivering hypervisor page faults
// to the handler until the entry permits the access. It returns the
// backing machine frame.
func (h *HypervisorTable) Translate(pfn mem.PFN, write bool) mem.MFN {
	for attempt := 0; ; attempt++ {
		if attempt > 2 {
			panic(fmt.Sprintf("pt: fault handler did not resolve PFN %d", pfn))
		}
		e := h.entries[pfn]
		if !e.Valid {
			h.Faults++
			if h.handler == nil {
				panic(fmt.Sprintf("pt: fault on PFN %d with no handler", pfn))
			}
			h.handler(pfn, write, FaultNotPresent)
			continue
		}
		if write && e.WriteProtect {
			h.WriteProtFaults++
			if h.handler == nil {
				panic(fmt.Sprintf("pt: write-protect fault on PFN %d with no handler", pfn))
			}
			h.handler(pfn, write, FaultWriteProtected)
			continue
		}
		return e.MFN
	}
}

// TranslateNoFault resolves pfn without delivering faults, as the IOMMU
// does: devices cannot wait for software fault resolution (§4.4.1).
// ok is false on an invalid entry, which aborts the DMA.
func (h *HypervisorTable) TranslateNoFault(pfn mem.PFN) (mem.MFN, bool) {
	e := h.entries[pfn]
	if !e.Valid {
		return mem.NoMFN, false
	}
	return e.MFN, true
}

// Reset returns the table to its freshly constructed state — no
// entries, no fault handler, zeroed counters — keeping the entry
// storage (map buckets) so a recycled domain's table refills without
// rehashing.
func (h *HypervisorTable) Reset() {
	clear(h.entries)
	h.handler = nil
	h.Faults, h.WriteProtFaults = 0, 0
}

// Len reports the number of valid entries.
func (h *HypervisorTable) Len() int { return len(h.entries) }

// Walk calls fn for every valid entry. Iteration order is unspecified.
func (h *HypervisorTable) Walk(fn func(mem.PFN, HypervisorEntry)) {
	for p, e := range h.entries {
		fn(p, e)
	}
}
