package iosim

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/pt"
	"repro/internal/sim"
)

func TestRead4KLatencies(t *testing.T) {
	// §2.2.2 calibration points.
	if PathNative.Read4KLatency() != 74*sim.Microsecond {
		t.Fatal("native latency wrong")
	}
	if PathPassthrough.Read4KLatency() != 186*sim.Microsecond {
		t.Fatal("passthrough latency wrong")
	}
	if PathDom0.Read4KLatency() != 307*sim.Microsecond {
		t.Fatal("dom0 latency wrong")
	}
}

func TestThroughputAmortizesWithRequestSize(t *testing.T) {
	d := DefaultDisk()
	// "The larger the amount of bytes read, the lower the overhead"
	// (§2.2.2): dom0-path throughput must grow with the request size.
	small := PathDom0.Throughput(d, 4096)
	big := PathDom0.Throughput(d, 1<<20)
	if small >= big {
		t.Fatalf("throughput did not amortize: 4K %v, 1M %v", small, big)
	}
	// Native always at least matches the virtualized paths.
	for _, req := range []float64{4096, 65536, 1 << 20} {
		n := PathNative.Throughput(d, req)
		if PathDom0.Throughput(d, req) > n || PathPassthrough.Throughput(d, req) > n {
			t.Fatalf("virtualized path beats native at req %v", req)
		}
	}
}

func TestStreamCapOrdering(t *testing.T) {
	d := DefaultDisk()
	if !(PathDom0.StreamCap(d) < PathPassthrough.StreamCap(d)) {
		t.Fatal("dom0 cap not below passthrough")
	}
	if !(PathPassthrough.StreamCap(d) < PathNative.StreamCap(d)) {
		t.Fatal("passthrough cap not below native")
	}
}

func TestDeliveredUnimpeded(t *testing.T) {
	s := Stream{DemandBps: 10e6, ReqBytes: 65536, Placement: BufferScattered}
	bps, prog := s.Delivered(PathNative, DefaultDisk())
	if bps != 10e6 || prog != 1 {
		t.Fatalf("unimpeded stream throttled: %v %v", bps, prog)
	}
}

func TestDeliveredThrottledByDom0(t *testing.T) {
	s := Stream{DemandBps: 240e6, ReqBytes: 1 << 20, Placement: BufferScattered}
	bps, prog := s.Delivered(PathDom0, DefaultDisk())
	if prog >= 0.5 {
		t.Fatalf("X-Stream-like demand not throttled by the dom0 path: %v/%v", bps, prog)
	}
	_, progPass := s.Delivered(PathPassthrough, DefaultDisk())
	if progPass <= prog {
		t.Fatal("passthrough no better than dom0")
	}
}

func TestDeliveredSingleNodePenalty(t *testing.T) {
	scat := Stream{DemandBps: 260e6, ReqBytes: 1 << 20, Placement: BufferScattered}
	single := scat
	single.Placement = BufferSingleNode
	_, ps := scat.Delivered(PathPassthrough, DefaultDisk())
	_, p1 := single.Delivered(PathPassthrough, DefaultDisk())
	if p1 >= ps {
		t.Fatalf("single-node buffer not penalized: %v vs %v", p1, ps)
	}
}

func TestDeliveredIOPenalty(t *testing.T) {
	s := Stream{DemandBps: 54e6, ReqBytes: 65536, Placement: BufferScattered, Penalty: 7}
	// The psearchy-style penalty applies to virtualized paths only.
	_, progNative := s.Delivered(PathNative, DefaultDisk())
	if progNative < 0.85 {
		t.Fatalf("penalty applied natively: %v", progNative)
	}
	_, progPass := s.Delivered(PathPassthrough, DefaultDisk())
	if progPass > 0.75 {
		t.Fatalf("penalty not applied to passthrough: %v", progPass)
	}
}

func TestDeliveredZeroDemand(t *testing.T) {
	var s Stream
	bps, prog := s.Delivered(PathDom0, DefaultDisk())
	if bps != 0 || prog != 1 {
		t.Fatal("zero-demand stream mishandled")
	}
}

func TestIOMMUTranslateAbortsOnInvalid(t *testing.T) {
	table := pt.NewHypervisorTable()
	table.SetFaultHandler(func(p mem.PFN, w bool, k pt.FaultKind) {
		t.Fatal("IOMMU translation must never fault into software (§4.4.1)")
	})
	var u IOMMU
	if _, ok := u.Translate(table, 5); ok {
		t.Fatal("invalid entry translated")
	}
	if u.Faults != 1 {
		t.Fatalf("faults = %d", u.Faults)
	}
	table.Map(5, 55)
	mfn, ok := u.Translate(table, 5)
	if !ok || mfn != 55 {
		t.Fatalf("valid translation failed: %v %v", mfn, ok)
	}
}

func TestFirstTouchIOMMUConflict(t *testing.T) {
	// A DMA buffer straddling a released (invalidated) page aborts —
	// the structural incompatibility of §4.4.1.
	table := pt.NewHypervisorTable()
	table.Map(1, 11)
	table.Map(2, 22)
	table.Map(3, 33)
	var u IOMMU
	buf := []mem.PFN{1, 2, 3}
	if u.CheckFirstTouchConflict(table, buf) {
		t.Fatal("fully mapped buffer reported a conflict")
	}
	table.Invalidate(2) // first-touch released this page
	if !u.CheckFirstTouchConflict(table, buf) {
		t.Fatal("invalidated buffer page not detected")
	}
}

func TestPathString(t *testing.T) {
	if PathNative.String() != "native" || PathPassthrough.String() != "passthrough" || PathDom0.String() != "dom0" {
		t.Fatal("path strings wrong")
	}
}
