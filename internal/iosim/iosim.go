// Package iosim models the I/O subsystem: the three DMA paths of §2.2
// (native, PCI passthrough with IOMMU, dom0-mediated), their per-request
// latencies, the throughput they sustain for streaming workloads, the
// NUMA placement of DMA buffers, and the IOMMU's inability to resolve
// invalid hypervisor page-table entries that makes it incompatible with
// the first-touch policy (§4.4.1).
package iosim

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/pt"
	"repro/internal/sim"
)

// Path is a DMA path.
type Path int

const (
	// PathNative is an unvirtualized OS driving the device directly.
	PathNative Path = iota
	// PathPassthrough is a domU using the PCI passthrough driver: the
	// device translates guest physical addresses through the IOMMU and
	// writes guest memory directly.
	PathPassthrough
	// PathDom0 is the para-virtualized split-driver path: the domU
	// forwards requests to dom0, which performs the I/O and copies the
	// result back.
	PathDom0
)

func (p Path) String() string {
	switch p {
	case PathNative:
		return "native"
	case PathPassthrough:
		return "passthrough"
	case PathDom0:
		return "dom0"
	default:
		return fmt.Sprintf("Path(%d)", int(p))
	}
}

// Request latency for one 4 KiB O_DIRECT read, calibrated to the paper's
// measurements (§2.2.2): 74 µs native, 186 µs with the passthrough
// driver, 307 µs through dom0.
func (p Path) Read4KLatency() sim.Time {
	switch p {
	case PathNative:
		return 74 * sim.Microsecond
	case PathPassthrough:
		return 186 * sim.Microsecond
	case PathDom0:
		return 307 * sim.Microsecond
	default:
		panic("iosim: unknown path")
	}
}

// Disk describes the physical device.
type Disk struct {
	// StreamBps is the device's sustained transfer bandwidth.
	StreamBps float64
	// Node is the NUMA node whose PCI bus hosts the device.
	Node numa.NodeID
}

// DefaultDisk returns the benchmark disk of AMD48 (on node 6's bus),
// sized so the fastest X-Stream readers (~260 MB/s, Table 2) run close
// to device speed natively.
func DefaultDisk() Disk {
	return Disk{StreamBps: 280e6, Node: 6}
}

// Throughput returns the streaming throughput the path sustains against
// disk for the given average request size in bytes. The virtualization
// penalty is the per-request software overhead (the latency gap versus
// native), amortized over the request: big requests approach device
// speed, small ones are dominated by the fixed cost — "the larger the
// amount of bytes read, the lower the overhead" (§2.2.2).
func (p Path) Throughput(d Disk, reqBytes float64) float64 {
	if reqBytes <= 0 {
		panic("iosim: request size must be positive")
	}
	deviceNs := reqBytes / d.StreamBps * 1e9
	// Per-request software cost: total 4 KiB latency minus the device's
	// share of a 4 KiB transfer.
	device4K := 4096 / d.StreamBps * 1e9
	softNs := float64(p.Read4KLatency()) - device4K
	if softNs < 0 {
		softNs = 0
	}
	// Requests pipeline against the device, but the software cost
	// serializes on the submitting CPU / dom0 backend.
	perReq := deviceNs
	if softNs > deviceNs {
		perReq = softNs
	}
	return reqBytes / perReq * 1e9
}

// StreamCap returns the streaming capacity of the path for pipelined
// sequential I/O. The dom0 path is bounded by the split-driver ring and
// the copy through dom0; the passthrough path runs close to device
// speed. (The per-request Read4KLatency model above explains these caps:
// small-request software cost dominates the dom0 path.)
//
//xnuma:noalloc
func (p Path) StreamCap(d Disk) float64 {
	switch p {
	case PathNative:
		return d.StreamBps
	case PathPassthrough:
		return 0.92 * d.StreamBps
	case PathDom0:
		return 90e6
	default:
		panic("iosim: unknown path")
	}
}

// SingleNodeCapFactor is the throughput penalty of funneling all DMA
// into one physically contiguous buffer on a single node (§5.3.3: Linux
// allocates DMA buffers contiguously, so one node's controller absorbs
// the whole stream; Xen's hypervisor page table scatters them).
const SingleNodeCapFactor = 0.86

// BufferPlacement describes where DMA target pages live, which decides
// which memory controllers absorb the traffic (§5.3.3: Linux allocates a
// physically contiguous buffer on one node; Xen's hypervisor page table
// scatters the guest's "contiguous" buffer across nodes).
type BufferPlacement int

const (
	// BufferSingleNode concentrates DMA traffic on one node.
	BufferSingleNode BufferPlacement = iota
	// BufferScattered spreads DMA traffic over the home nodes.
	BufferScattered
)

// Stream is one application's steady-state disk activity.
type Stream struct {
	DemandBps float64 // what the app consumes when unimpeded
	ReqBytes  float64 // average request size
	Placement BufferPlacement
	// BufferNode is the target node for BufferSingleNode.
	BufferNode numa.NodeID
	// HomeNodes are the targets for BufferScattered.
	HomeNodes []numa.NodeID
	// Penalty is an extra divisor on the virtualized path capacity for
	// applications that hit pathological virtual-I/O behaviour the paper
	// could not fully attribute (psearchy, §5.5).
	Penalty float64
}

// Delivered returns the bytes/s the stream actually receives on path p
// and the resulting progress factor (delivered/demand, ≤ 1) for the
// application's threads.
//
//xnuma:noalloc
func (s Stream) Delivered(p Path, d Disk) (bps, progress float64) {
	if s.DemandBps <= 0 {
		return 0, 1
	}
	limit := p.StreamCap(d)
	if s.Placement == BufferSingleNode {
		limit *= SingleNodeCapFactor
	}
	if p != PathNative && s.Penalty > 1 {
		limit /= s.Penalty
	}
	bps = s.DemandBps
	if limit < bps {
		bps = limit
	}
	return bps, bps / s.DemandBps
}

// IOMMU models the hardware translation unit used by the passthrough
// path.
type IOMMU struct {
	// Faults counts aborted translations (invalid entries).
	Faults uint64
}

// Translate performs a device-side translation of one guest physical
// page through the domain's hypervisor page table. Unlike a CPU access,
// the IOMMU cannot wait for software to resolve a fault: an invalid
// entry aborts the DMA and the error is delivered asynchronously —
// usually after the guest OS has already failed the I/O (§4.4.1). The
// returned ok is false in that case.
func (u *IOMMU) Translate(table *pt.HypervisorTable, pfn mem.PFN) (mem.MFN, bool) {
	mfn, ok := table.TranslateNoFault(pfn)
	if !ok {
		u.Faults++
	}
	return mfn, ok
}

// CheckFirstTouchConflict scans a DMA buffer through the IOMMU and
// reports whether any page would abort the transfer. With the first-touch
// policy active, freshly released pages have invalid entries, so a
// buffer allocated from the free list fails — the structural reason the
// paper disables the IOMMU under first-touch.
func (u *IOMMU) CheckFirstTouchConflict(table *pt.HypervisorTable, buf []mem.PFN) (aborted bool) {
	for _, p := range buf {
		if _, ok := u.Translate(table, p); !ok {
			return true
		}
	}
	return false
}
