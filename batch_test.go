package xennuma

import (
	"reflect"
	"testing"
)

// TestBatchKernelMatchesReference pins the batched epoch kernel — the
// shared cost-matrix fill, the hoisted run constants, the fold-skip and
// the runner row arena — against the per-instance reference kernel
// (Options.noBatch): every transform is value-preserving, so a
// representative suite cell must produce bit-for-bit identical results
// down both paths. The cell mirrors the golden configuration (two-VM
// consolidated pair plus a native run: Carrefour migrations, misleading
// bursts, disk DMA and the TLB model all live).
func TestBatchKernelMatchesReference(t *testing.T) {
	run := func(noBatch bool) []goldenResult {
		o := Options{Scale: 64, Seed: 7, XenPlus: true, TLB: true, LargePages: true, noBatch: noBatch}
		a, b, err := RunXenPair("facesim", MustPolicy("first-touch/carrefour"),
			"psearchy", MustPolicy("round-4k/carrefour"), Consolidated, false, o)
		if err != nil {
			t.Fatalf("RunXenPair: %v", err)
		}
		c, err := RunLinux("dc.B", MustPolicy("first-touch/carrefour"), o)
		if err != nil {
			t.Fatalf("RunLinux: %v", err)
		}
		return []goldenResult{toGolden(a), toGolden(b), toGolden(c)}
	}
	batched := run(false)
	reference := run(true)
	for i := range batched {
		if !reflect.DeepEqual(batched[i], reference[i]) {
			t.Errorf("result %d diverges:\nbatched:   %+v\nreference: %+v",
				i, batched[i], reference[i])
		}
	}
}
