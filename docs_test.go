package xennuma

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocsPresent keeps the godoc audit from rotting: the root
// package and every package under internal/ must carry a substantive
// package comment that states the package's role and anchors it to the
// paper (a §, Table or Figure reference, or at least the word "paper").
// A new package without one fails here, not in review.
func TestPackageDocsPresent(t *testing.T) {
	dirs := []string{"."}
	ents, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join("internal", e.Name()))
		}
	}

	for _, dir := range dirs {
		doc := packageDoc(t, dir)
		if doc == "" {
			t.Errorf("%s: no package comment on any file", dir)
			continue
		}
		if len(doc) < 100 {
			t.Errorf("%s: package comment too thin to state the package's role (%d chars): %q",
				dir, len(doc), doc)
		}
		if !strings.ContainsAny(doc, "§") &&
			!strings.Contains(doc, "Table") &&
			!strings.Contains(doc, "Figure") &&
			!strings.Contains(doc, "paper") {
			t.Errorf("%s: package comment does not anchor the package to the paper:\n%s", dir, doc)
		}
	}
}

// packageDoc returns the package comment of the (single) non-test
// package in dir, or "" when no file carries one.
func packageDoc(t *testing.T, dir string) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if af.Doc != nil {
			return af.Doc.Text()
		}
	}
	return ""
}
