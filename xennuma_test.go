package xennuma

import (
	"testing"

	"repro/internal/policy"
)

// fastOpts keeps integration tests quick: a heavily scaled machine and a
// small application.
func fastOpts() Options {
	return Options{Scale: 256, XenPlus: true}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in        string
		static    policy.Kind
		carrefour bool
	}{
		{"round-1g", policy.Round1G, false},
		{"R4K", policy.Round4K, false},
		{"first-touch", policy.FirstTouch, false},
		{"ft", policy.FirstTouch, false},
		{"round-4k/carrefour", policy.Round4K, true},
		{"first-touch/carrefour", policy.FirstTouch, true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", c.in, err)
		}
		if got.Static != c.static || got.Carrefour != c.carrefour {
			t.Errorf("ParsePolicy(%q) = %v", c.in, got)
		}
	}
	if _, err := ParsePolicy("numa-magic"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestParsePolicyRoundTrip: for every policy in the registry
// (parameterized kinds instantiated with their default argument) and
// every legal Carrefour suffix, ParsePolicy(cfg.String()) == cfg.
func TestParsePolicyRoundTrip(t *testing.T) {
	for _, d := range policy.List() {
		name := d.Name
		if d.Parameterized {
			name += ":" + d.DefaultArg
		}
		variants := []string{name}
		if d.Carrefour {
			variants = append(variants, name+"/carrefour")
		}
		for _, v := range variants {
			cfg, err := ParsePolicy(v)
			if err != nil {
				t.Fatalf("ParsePolicy(%q): %v", v, err)
			}
			again, err := ParsePolicy(cfg.String())
			if err != nil {
				t.Fatalf("ParsePolicy(%q): %v", cfg.String(), err)
			}
			if again != cfg {
				t.Errorf("round trip broke: %q → %+v → %q → %+v", v, cfg, cfg.String(), again)
			}
		}
	}
}

// TestRegisteredPoliciesEndToEnd proves the registry is open: the three
// policies added on top of the paper's set complete under both the Xen
// stack and the native baseline without any layer special-casing them.
func TestRegisteredPoliciesEndToEnd(t *testing.T) {
	for _, pol := range []string{"interleave", "bind:3", "least-loaded"} {
		p := MustPolicy(pol)
		x, err := RunXen("swaptions", p, fastOpts())
		if err != nil {
			t.Fatalf("RunXen(%s): %v", pol, err)
		}
		if x.Completion <= 0 || x.TimedOut {
			t.Fatalf("RunXen(%s): bad result %+v", pol, x)
		}
		l, err := RunLinux("swaptions", p, Options{Scale: 256})
		if err != nil {
			t.Fatalf("RunLinux(%s): %v", pol, err)
		}
		if l.Completion <= 0 || l.TimedOut {
			t.Fatalf("RunLinux(%s): bad result %+v", pol, l)
		}
	}
}

func TestMustPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPolicy did not panic")
		}
	}()
	MustPolicy("bogus")
}

func TestApps(t *testing.T) {
	if len(Apps()) != 29 {
		t.Fatalf("Apps() = %d, want 29", len(Apps()))
	}
}

func TestRunXenBasic(t *testing.T) {
	r, err := RunXen("swaptions", MustPolicy("round-4k"), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.Completion <= 0 || r.TimedOut {
		t.Fatalf("bad result: %+v", r)
	}
	if r.Backend != "xen/round-4K" {
		t.Fatalf("backend = %q", r.Backend)
	}
}

func TestRunXenUnknownApp(t *testing.T) {
	if _, err := RunXen("doom", MustPolicy("round-4k"), fastOpts()); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunXenDeterminism(t *testing.T) {
	a, err := RunXen("bodytrack", MustPolicy("first-touch/carrefour"), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunXen("bodytrack", MustPolicy("first-touch/carrefour"), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Completion != b.Completion || a.Imbalance != b.Imbalance {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", a.Completion, a.Imbalance, b.Completion, b.Imbalance)
	}
}

func TestRunXenSeedChangesCarrefourRuns(t *testing.T) {
	o1, o2 := fastOpts(), fastOpts()
	o1.Seed, o2.Seed = 1, 2
	// Burst-driven Carrefour behaviour depends on the seed; completions
	// may or may not differ, but both runs must succeed.
	if _, err := RunXen("fluidanimate", MustPolicy("first-touch/carrefour"), o1); err != nil {
		t.Fatal(err)
	}
	if _, err := RunXen("fluidanimate", MustPolicy("first-touch/carrefour"), o2); err != nil {
		t.Fatal(err)
	}
}

// TestPolicyOrderingCgC is the paper's headline anchor (§5.4.1, Figure
// 7): for cg.C, first-touch beats round-4K, which beats round-1G, by a
// large factor end to end.
func TestPolicyOrderingCgC(t *testing.T) {
	o := Options{Scale: 64, XenPlus: true}
	ft, err := RunXen("cg.C", MustPolicy("first-touch"), o)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunXen("cg.C", MustPolicy("round-4k"), o)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunXen("cg.C", MustPolicy("round-1g"), o)
	if err != nil {
		t.Fatal(err)
	}
	if !(ft.Completion < r4.Completion && r4.Completion < r1.Completion) {
		t.Fatalf("ordering wrong: ft %v, r4k %v, r1g %v", ft.Completion, r4.Completion, r1.Completion)
	}
	if speedup := float64(r1.Completion) / float64(ft.Completion); speedup < 3 {
		t.Fatalf("cg.C best-policy speedup = %.2fx, paper reports ~6x; want ≥ 3x", speedup)
	}
}

// TestFirstTouchHurtsDiskApps checks the §4.4.1 consequence end to end:
// selecting first-touch disables the PCI passthrough driver, so
// disk-intensive applications regress.
func TestFirstTouchHurtsDiskApps(t *testing.T) {
	o := Options{Scale: 128, XenPlus: true}
	r4, err := RunXen("bfs", MustPolicy("round-4k"), o)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := RunXen("bfs", MustPolicy("first-touch"), o)
	if err != nil {
		t.Fatal(err)
	}
	if float64(ft.Completion) < 1.5*float64(r4.Completion) {
		t.Fatalf("first-touch (%v) did not regress the disk app vs round-4K (%v)",
			ft.Completion, r4.Completion)
	}
}

func TestRunLinuxBasic(t *testing.T) {
	r, err := RunLinux("swaptions", MustPolicy("first-touch"), Options{Scale: 256})
	if err != nil {
		t.Fatal(err)
	}
	if r.Completion <= 0 {
		t.Fatal("no completion")
	}
}

func TestRunLinuxRejectsRound1G(t *testing.T) {
	if _, err := RunLinux("swaptions", MustPolicy("round-1g"), Options{Scale: 256}); err == nil {
		t.Fatal("Linux round-1G accepted")
	}
}

func TestRunXenPairColocated(t *testing.T) {
	a, b, err := RunXenPair("swaptions", MustPolicy("round-4k"), "bodytrack", MustPolicy("round-4k"),
		Colocated, false, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Completion <= 0 || b.Completion <= 0 {
		t.Fatal("pair run incomplete")
	}
}

func TestRunXenPairConsolidatedSlower(t *testing.T) {
	o := fastOpts()
	solo, err := RunXen("bodytrack", MustPolicy("round-4k"), o)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := RunXenPair("bodytrack", MustPolicy("round-4k"), "bodytrack", MustPolicy("round-4k"),
		Consolidated, false, o)
	if err != nil {
		t.Fatal(err)
	}
	if float64(a.Completion) < 1.4*float64(solo.Completion) {
		t.Fatalf("consolidation too cheap: %v vs solo %v", a.Completion, solo.Completion)
	}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalized()
	if o.Scale != 64 || o.Seed != 1 || o.Threads != 48 || o.Queue.Queues != 4 {
		t.Fatalf("defaults wrong: %+v", o)
	}
}
