package xennuma

import (
	"crypto/sha256"
	_ "embed"
	"encoding/hex"
)

// goldenFixture is the committed behaviour lock of the engine
// (TestGoldenEngineResults): any intentional change to the simulation
// model regenerates it in a dedicated commit. That makes its bytes the
// natural version stamp of the model's observable behaviour.
//
//go:embed testdata/golden_engine.json
var goldenFixture []byte

// ModelVersion identifies the simulation model's observable behaviour:
// a hash of the golden engine fixture. Persisted caches of simulation
// results (the sweep service's -cache-dir) are keyed by it, so a model
// change — which by policy regenerates the fixture — invalidates every
// cached cell instead of silently serving results the current engine
// would no longer produce.
func ModelVersion() string {
	sum := sha256.Sum256(goldenFixture)
	return hex.EncodeToString(sum[:8])
}
