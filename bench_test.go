// Benchmark harness: one benchmark per table and figure of the paper
// (each regenerates and prints the artefact's rows), ablation benchmarks
// for the design choices called out in DESIGN.md, and micro-benchmarks
// of the hot mechanisms (buddy allocator, page-table walks, hypercalls).
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks share one memoized suite, so the full sweep
// of ~350 simulations runs once regardless of iteration counts.
package xennuma_test

import (
	"fmt"
	"sync"
	"testing"

	xennuma "repro"

	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/guest"
	"repro/internal/linux"
	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/policy"
	"repro/internal/pt"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xen"
)

var (
	benchSuite   = exp.NewSuite(64)
	printedMu    sync.Mutex
	printedTable = map[string]bool{}
)

// benchExperiment regenerates one paper artefact; the rendered rows are
// printed the first time only.
func benchExperiment(b *testing.B, id string) {
	fn := exp.ByID(id)
	if fn == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	var tab *exp.Table
	for i := 0; i < b.N; i++ {
		tab = fn(benchSuite)
	}
	printedMu.Lock()
	if !printedTable[id] {
		printedTable[id] = true
		fmt.Println(tab.Render())
	}
	printedMu.Unlock()
}

func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }

// BenchmarkIOPaths regenerates the §2.2.2 DMA-path numbers.
func BenchmarkIOPaths(b *testing.B) { benchExperiment(b, "io") }

// BenchmarkHypercallBatching regenerates the §4.2.3–4.2.4 analysis.
func BenchmarkHypercallBatching(b *testing.B) { benchExperiment(b, "hcall") }

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationQueueDesign reports the per-release cost of the three
// notification designs at wrmem's rate: the strawman hypercall per
// release, a single batched global queue, and the paper's partitioned
// queues.
func BenchmarkAblationQueueDesign(b *testing.B) {
	designs := []struct {
		name string
		cfg  guest.QueueConfig
	}{
		{"unbatched", guest.QueueConfig{Queues: 1, BatchSize: 1, Unbatched: true}},
		{"global-batched", guest.QueueConfig{Queues: 1, BatchSize: 64}},
		{"partitioned", guest.DefaultQueueConfig()},
	}
	for _, d := range designs {
		b.Run(d.name, func(b *testing.B) {
			m := guest.ChurnModel{Cfg: d.cfg, Threads: 48}
			var per float64
			for i := 0; i < b.N; i++ {
				per = m.PerReleaseNs(15000)
			}
			b.ReportMetric(per, "ns/release")
			b.ReportMetric(1+per/15000, "slowdown")
		})
	}
}

// BenchmarkAblationBatchSize sweeps the page-queue batch size.
func BenchmarkAblationBatchSize(b *testing.B) {
	for _, batch := range []int{8, 16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			m := guest.ChurnModel{Cfg: guest.QueueConfig{Queues: 4, BatchSize: batch}, Threads: 48}
			var per float64
			for i := 0; i < b.N; i++ {
				per = m.PerReleaseNs(15000)
			}
			b.ReportMetric(per, "ns/release")
		})
	}
}

// BenchmarkAblationQueueCount sweeps the partition count at batch 64.
func BenchmarkAblationQueueCount(b *testing.B) {
	for _, q := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("queues=%d", q), func(b *testing.B) {
			m := guest.ChurnModel{Cfg: guest.QueueConfig{Queues: q, BatchSize: 64}, Threads: 48}
			var per float64
			for i := 0; i < b.N; i++ {
				per = m.PerReleaseNs(15000)
			}
			b.ReportMetric(per, "ns/release")
		})
	}
}

// BenchmarkAblationMCS isolates the MCS-lock mitigation on the two
// pthread-blocking applications (§5.3.2): same policy, Xen+ on/off.
// Neither application touches the disk, so the only Xen+ ingredient that
// matters is the lock replacement.
func BenchmarkAblationMCS(b *testing.B) {
	for _, app := range []string{"facesim", "streamcluster"} {
		b.Run(app, func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				off := benchSuite.Xen(app, "round-4k", false)
				on := benchSuite.Xen(app, "round-4k", true)
				gain = float64(off.Completion)/float64(on.Completion) - 1
			}
			b.ReportMetric(100*gain, "improvement-%")
		})
	}
}

// BenchmarkAblationCarrefourBudget sweeps the migration budget of the
// dynamic policy on a master-slave workload under first-touch.
func BenchmarkAblationCarrefourBudget(b *testing.B) {
	topo := numa.AMD48Scaled(64)
	prof, err := workload.Get("facesim")
	if err != nil {
		b.Fatal(err)
	}
	prof.BaselineSeconds = 0.5
	for _, budget := range []int{0, 256, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			var completion sim.Time
			for i := 0; i < b.N; i++ {
				lb, err := linux.New(topo, policy.Config{Static: policy.FirstTouch, Carrefour: true})
				if err != nil {
					b.Fatal(err)
				}
				cfg := engine.DefaultConfig(topo, 64)
				cfg.Carrefour.BudgetPages = budget
				res, err := engine.Run(cfg, &engine.Instance{
					Prof: prof, Backend: lb, NThreads: 48, Carrefour: budget > 0,
				})
				if err != nil {
					b.Fatal(err)
				}
				completion = res[0].Completion
			}
			b.ReportMetric(float64(completion)/1e6, "completion-ms")
		})
	}
}

// --- Micro-benchmarks of the real mechanisms ---

func BenchmarkBuddyAllocFree(b *testing.B) {
	a := mem.NewAllocator(numa.SmallMachine(2, 2, 512<<20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mfn, err := a.Alloc(0, mem.Order4K)
		if err != nil {
			b.Fatal(err)
		}
		a.Free(mfn, mem.Order4K)
	}
}

func BenchmarkHypervisorTableTranslate(b *testing.B) {
	t := pt.NewHypervisorTable()
	for p := mem.PFN(0); p < 1024; p++ {
		t.Map(p, mem.MFN(p))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Translate(mem.PFN(i)%1024, false)
	}
}

func BenchmarkDomainTouchFastPath(b *testing.B) {
	topo := numa.SmallMachine(4, 4, 64<<20)
	hv, err := xen.New(topo, sim.NewEngine(), xen.Config{HugeOrder: 10, MidOrder: 3}, 4<<20)
	if err != nil {
		b.Fatal(err)
	}
	d, err := hv.CreateDomain(xen.DomainSpec{
		Name: "bench", VCPUs: 4, MemBytes: 16 << 20,
		PinCPUs: []numa.CPUID{0, 4, 8, 12}, Boot: policy.Round4K,
	})
	if err != nil {
		b.Fatal(err)
	}
	pages := mem.PFN(d.PhysPages())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Touch(mem.PFN(i)%pages, 0, false)
	}
}

func BenchmarkFirstTouchFaultPath(b *testing.B) {
	topo := numa.SmallMachine(4, 4, 256<<20)
	hv, err := xen.New(topo, sim.NewEngine(), xen.Config{HugeOrder: 10, MidOrder: 3}, 4<<20)
	if err != nil {
		b.Fatal(err)
	}
	d, err := hv.CreateDomain(xen.DomainSpec{
		Name: "bench", VCPUs: 4, MemBytes: 64 << 20,
		PinCPUs: []numa.CPUID{0, 4, 8, 12}, Boot: policy.Round4K,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := d.HypercallSetPolicy(policy.Config{Static: policy.FirstTouch}); err != nil {
		b.Fatal(err)
	}
	pages := d.PhysPages()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pfn := mem.PFN(uint64(i) % pages)
		// Release then re-touch: invalidation + fault + placement.
		d.HypercallPageQueue([]policy.PageOp{{Kind: policy.OpRelease, PFN: pfn}})
		d.Touch(pfn, numa.NodeID(i%4), true)
	}
}

func BenchmarkPageQueueAdd(b *testing.B) {
	topo := numa.SmallMachine(4, 4, 64<<20)
	hv, err := xen.New(topo, sim.NewEngine(), xen.Config{HugeOrder: 10, MidOrder: 3}, 4<<20)
	if err != nil {
		b.Fatal(err)
	}
	d, err := hv.CreateDomain(xen.DomainSpec{
		Name: "bench", VCPUs: 4, MemBytes: 16 << 20,
		PinCPUs: []numa.CPUID{0, 4, 8, 12}, Boot: policy.Round4K,
	})
	if err != nil {
		b.Fatal(err)
	}
	d.HypercallSetPolicy(policy.Config{Static: policy.FirstTouch})
	q := guest.NewPageQueue(d, guest.DefaultQueueConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate alloc/release so flushed batches do not free pages
		// twice.
		kind := policy.OpAlloc
		if i%2 == 1 {
			kind = policy.OpRelease
		}
		q.Add(kind, mem.PFN(i%4096))
	}
}

// BenchmarkSingleVMRun measures one full end-to-end simulation (machine
// boot, domain build, policy selection, epoch loop) — the unit of work
// behind every figure.
func BenchmarkSingleVMRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := xennuma.RunXen("bodytrack", xennuma.MustPolicy("round-4k"), xennuma.Options{Scale: 64, XenPlus: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionLargePages quantifies the paper's §7 extension: how
// much would 2 MiB mappings gain once address translation is modeled?
// Reported per application class: a big-footprint NPB code and a small
// Parsec one.
func BenchmarkExtensionLargePages(b *testing.B) {
	for _, app := range []string{"mg.D", "bodytrack"} {
		b.Run(app, func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				base := xennuma.Options{Scale: 64, XenPlus: true, TLB: true}
				small, err := xennuma.RunXen(app, xennuma.MustPolicy("round-4k"), base)
				if err != nil {
					b.Fatal(err)
				}
				base.LargePages = true
				large, err := xennuma.RunXen(app, xennuma.MustPolicy("round-4k"), base)
				if err != nil {
					b.Fatal(err)
				}
				gain = float64(small.Completion)/float64(large.Completion) - 1
			}
			b.ReportMetric(100*gain, "improvement-%")
		})
	}
}

// BenchmarkExtensionReplication measures the replication heuristic the
// paper discarded (§3.4). In this model, replicating a heavily contended
// read-only hot page can pay off noticeably — which matches the original
// Carrefour paper; Voron et al. leave it out of the Xen port because it
// had marginal effect on *their* workload mix and would require radical
// memory-manager changes, not because it can never help.
func BenchmarkExtensionReplication(b *testing.B) {
	for _, app := range []string{"kmeans", "streamcluster"} {
		b.Run(app, func(b *testing.B) {
			var delta float64
			for i := 0; i < b.N; i++ {
				off, err := xennuma.RunXen(app, xennuma.MustPolicy("round-4k/carrefour"),
					xennuma.Options{Scale: 64, XenPlus: true})
				if err != nil {
					b.Fatal(err)
				}
				on, err := xennuma.RunXen(app, xennuma.MustPolicy("round-4k/carrefour"),
					xennuma.Options{Scale: 64, XenPlus: true, Replication: true})
				if err != nil {
					b.Fatal(err)
				}
				delta = float64(off.Completion)/float64(on.Completion) - 1
			}
			b.ReportMetric(100*delta, "improvement-%")
		})
	}
}
