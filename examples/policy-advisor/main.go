// Policy advisor: pick a NUMA policy from a cheap profiling run.
//
//	go run ./examples/policy-advisor [app...]
//
// The paper closes by noting that "automatically selecting the most
// efficient NUMA policy in an hypervisor ... remains an open subject"
// (§7). This example implements the selection rule the paper's own
// analysis suggests (§3.5.2): measure the memory-access imbalance under
// first-touch, classify the application, and map the class to a policy —
// high → round-4K/Carrefour, moderate → first-touch/Carrefour,
// low → first-touch. It then validates the advice against an exhaustive
// sweep.
package main

import (
	"fmt"
	"log"
	"os"

	xennuma "repro"
	"repro/internal/metrics"
)

func advise(imbalance float64) string {
	switch metrics.Classify(imbalance) {
	case metrics.ClassHigh:
		return "round-4k/carrefour"
	case metrics.ClassModerate:
		return "first-touch/carrefour"
	default:
		return "first-touch"
	}
}

func main() {
	apps := os.Args[1:]
	if len(apps) == 0 {
		apps = []string{"facesim", "bt.C", "cg.C", "kmeans", "mg.D"}
	}
	opts := xennuma.Options{XenPlus: true, Scale: 64}
	policies := []string{"round-1g", "round-4k", "first-touch", "round-4k/carrefour", "first-touch/carrefour"}

	fmt.Printf("%-12s  %-9s  %-5s  %-22s  %-22s  %s\n",
		"app", "imbalance", "class", "advised", "best (sweep)", "advice gap")
	for _, app := range apps {
		// Profile: one run under first-touch to measure the imbalance.
		probe, err := xennuma.RunXen(app, xennuma.MustPolicy("first-touch"), opts)
		if err != nil {
			log.Fatal(err)
		}
		advice := advise(probe.Imbalance)

		// Validate against the exhaustive sweep.
		bestPol, bestTime := "", probe.Completion
		times := map[string]float64{}
		for _, pol := range policies {
			r, err := xennuma.RunXen(app, xennuma.MustPolicy(pol), opts)
			if err != nil {
				log.Fatal(err)
			}
			times[pol] = float64(r.Completion)
			if bestPol == "" || r.Completion < bestTime {
				bestPol, bestTime = pol, r.Completion
			}
		}
		gap := times[advice]/float64(bestTime) - 1
		fmt.Printf("%-12s  %7.0f%%   %-5s  %-22s  %-22s  %+.0f%%\n",
			app, probe.Imbalance, metrics.Classify(probe.Imbalance),
			advice, bestPol, 100*gap)
	}
	fmt.Println("\nadvice gap = completion of the advised policy versus the true best;")
	fmt.Println("the paper measures the same rule at 1-2% average loss (§3.5.2).")
}
