// Policy advisor: pick a NUMA policy from a cheap profiling run.
//
//	go run ./examples/policy-advisor [app...]
//
// The paper closes by noting that "automatically selecting the most
// efficient NUMA policy in an hypervisor ... remains an open subject"
// (§7). The selection rule its own analysis suggests (§3.5.2) — measure
// the memory-access imbalance under first-touch, classify the
// application, and map the class to a policy — lives in
// internal/advisor; this example is a thin consumer: it asks the
// library for a recommendation per application and prints the advice
// gap against the exhaustive sweep of the advisor's registry-bounded
// candidate set (every runtime-selectable policy, including the ones
// the paper never measured — interleave, bind:<node>, least-loaded,
// adaptive — and the Carrefour variant knobs), fanned out across the
// experiment scheduler's worker pool. The same table is available as
// `xnuma advise`.
package main

import (
	"fmt"
	"os"

	"repro/internal/advisor"
	"repro/internal/exp"
)

func main() {
	// A failing simulation (e.g. an unknown application name) surfaces
	// as a panic from the suite; exit non-zero with the message.
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintln(os.Stderr, "policy-advisor:", p)
			os.Exit(1)
		}
	}()

	apps := os.Args[1:]
	if len(apps) == 0 {
		apps = advisor.DefaultApps
	}
	s := exp.NewSuite(64)
	fmt.Printf("sweeping %d registry-bounded candidates per app: %v\n\n",
		len(advisor.Candidates(advisor.TargetXen)), advisor.Candidates(advisor.TargetXen))
	fmt.Println(advisor.Table(s, advisor.TargetXen, apps).Render())
}
