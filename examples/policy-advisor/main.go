// Policy advisor: pick a NUMA policy from a cheap profiling run.
//
//	go run ./examples/policy-advisor [app...]
//
// The paper closes by noting that "automatically selecting the most
// efficient NUMA policy in an hypervisor ... remains an open subject"
// (§7). This example implements the selection rule the paper's own
// analysis suggests (§3.5.2): measure the memory-access imbalance under
// first-touch, classify the application, and map the class to a policy —
// high → round-4K/Carrefour, moderate → first-touch/Carrefour,
// low → first-touch. It then validates the advice against an exhaustive
// sweep over every policy in the registry — including the ones the
// paper never measured (interleave, bind:<node>, least-loaded) — fanned
// out across the experiment scheduler's worker pool.
package main

import (
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/metrics"
)

func advise(imbalance float64) string {
	switch metrics.Classify(imbalance) {
	case metrics.ClassHigh:
		return "round-4k/carrefour"
	case metrics.ClassModerate:
		return "first-touch/carrefour"
	default:
		return "first-touch"
	}
}

func main() {
	// A failing simulation (e.g. an unknown application name) surfaces
	// as a panic from the suite; exit non-zero with the message.
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintln(os.Stderr, "policy-advisor:", p)
			os.Exit(1)
		}
	}()

	apps := os.Args[1:]
	if len(apps) == 0 {
		apps = []string{"facesim", "bt.C", "cg.C", "kmeans", "mg.D"}
	}
	s := exp.NewSuite(64)
	// The probe run and the whole validation sweep — every registered
	// policy, not just the paper's five — are independent cells: submit
	// them all up front and join once.
	pols := exp.RegisteredXenPolicies()
	for _, app := range apps {
		for _, pol := range pols {
			s.PrefetchXen(app, pol, true)
		}
	}
	s.Join()

	fmt.Printf("sweeping %d registered policies: %v\n\n", len(pols), pols)
	fmt.Printf("%-12s  %-9s  %-5s  %-22s  %-22s  %s\n",
		"app", "imbalance", "class", "advised", "best (sweep)", "advice gap")
	for _, app := range apps {
		// Profile: one run under first-touch to measure the imbalance
		// (a cache hit after the joined sweep).
		probe := s.Xen(app, "first-touch", true)
		advice := advise(probe.Imbalance)

		// Validate against the exhaustive registry sweep.
		bestPol, best := "", probe
		for _, pol := range pols {
			if r := s.Xen(app, pol, true); bestPol == "" || r.Completion < best.Completion {
				bestPol, best = pol, r
			}
		}
		advised := s.Xen(app, advice, true)
		gap := float64(advised.Completion)/float64(best.Completion) - 1
		fmt.Printf("%-12s  %7.0f%%   %-5s  %-22s  %-22s  %+.0f%%\n",
			app, probe.Imbalance, metrics.Classify(probe.Imbalance),
			advice, bestPol, 100*gap)
	}
	fmt.Println("\nadvice gap = completion of the advised policy versus the true best")
	fmt.Println("across every registered policy; the paper measures the same rule at")
	fmt.Println("1-2% average loss over its five policies (§3.5.2).")
}
