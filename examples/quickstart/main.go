// Quickstart: run one application in a Xen virtual machine under two
// NUMA policies and compare.
//
//	go run ./examples/quickstart
//
// cg.C is the paper's headline case (§5.4.1): with Xen's default
// round-1G placement its 889 MB land on one NUMA node and the 48 threads
// saturate that node's memory controller; selecting the first-touch
// policy through the paper's hypercall interface makes each thread's
// memory local and divides the completion time by several times.
package main

import (
	"fmt"
	"log"

	xennuma "repro"
)

func main() {
	opts := xennuma.Options{
		XenPlus: true, // passthrough I/O + MCS locks (§5.3)
		Scale:   64,   // 1/64-scale machine: fast and faithful
	}

	fmt.Println("cg.C in a 48-vCPU VM on the simulated AMD48:")
	var base xennuma.Result
	for _, pol := range []string{"round-1g", "round-4k", "first-touch"} {
		res, err := xennuma.RunXen("cg.C", xennuma.MustPolicy(pol), opts)
		if err != nil {
			log.Fatal(err)
		}
		if pol == "round-1g" {
			base = res
		}
		fmt.Printf("  %-12s completion %8v   imbalance %3.0f%%   locality %.2f   speedup vs default %.2fx\n",
			pol, res.Completion, res.Imbalance, res.Locality,
			float64(base.Completion)/float64(res.Completion))
	}
	fmt.Println("\nThe hypercall interface lets the hypervisor place pages where the")
	fmt.Println("guest's threads actually use them — without exposing the NUMA")
	fmt.Println("topology to the virtual machine.")
}
