// Consolidation: two virtual machines sharing the 48-core machine, the
// scenario of the paper's Figures 8 and 9.
//
//	go run ./examples/consolidation
//
// Two VMs run cg.C and sp.C side by side, first both with Xen's default
// round-1G policy, then each with its best policy selected through the
// SetPolicy hypercall. In the colocated setting each VM owns half the
// NUMA nodes (24 vCPUs each); in the consolidated setting both span all
// 48 CPUs and every physical CPU runs two vCPUs. All four configurations
// are submitted to the experiment scheduler up front and simulated
// concurrently.
package main

import (
	"fmt"
	"os"

	xennuma "repro"
	"repro/internal/exp"
)

func main() {
	// A failing simulation surfaces as a panic from the suite; exit
	// non-zero with the message instead of a stack trace.
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintln(os.Stderr, "consolidation:", p)
			os.Exit(1)
		}
	}()

	s := exp.NewSuite(64)
	const def = "round-1g"
	const bestA = "first-touch"        // cg.C's best (Table 4)
	const bestB = "round-4k/carrefour" // sp.C's best (Table 4)

	modes := []struct {
		name string
		m    xennuma.PairMode
	}{
		{"colocated (24 vCPUs each, split nodes)", xennuma.Colocated},
		{"consolidated (48 vCPUs each, 2 vCPUs per CPU)", xennuma.Consolidated},
	}
	// Warm every cell on the worker pool, then read the cached results.
	for _, mode := range modes {
		s.PrefetchXenPair("cg.C", def, "sp.C", def, mode.m, false)
		s.PrefetchXenPair("cg.C", bestA, "sp.C", bestB, mode.m, false)
	}
	s.Join()

	for _, mode := range modes {
		fmt.Printf("== %s ==\n", mode.name)
		a0, b0 := s.XenPair("cg.C", def, "sp.C", def, mode.m, false)
		a1, b1 := s.XenPair("cg.C", bestA, "sp.C", bestB, mode.m, false)
		fmt.Printf("  cg.C: default %8v  best(first-touch)    %8v  → %+.0f%%\n",
			a0.Completion, a1.Completion,
			100*(float64(a0.Completion)/float64(a1.Completion)-1))
		fmt.Printf("  sp.C: default %8v  best(r4k/carrefour)  %8v  → %+.0f%%\n",
			b0.Completion, b1.Completion,
			100*(float64(b0.Completion)/float64(b1.Completion)-1))
	}
	fmt.Println("\nBecause the policy is selected per virtual machine, consolidated")
	fmt.Println("workloads with different access patterns each get the placement")
	fmt.Println("they need (§5.4.2).")
}
