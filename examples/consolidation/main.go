// Consolidation: two virtual machines sharing the 48-core machine, the
// scenario of the paper's Figures 8 and 9.
//
//	go run ./examples/consolidation
//
// Two VMs run cg.C and sp.C side by side, first both with Xen's default
// round-1G policy, then each with its best policy selected through the
// SetPolicy hypercall. In the colocated setting each VM owns half the
// NUMA nodes (24 vCPUs each); in the consolidated setting both span all
// 48 CPUs and every physical CPU runs two vCPUs.
package main

import (
	"fmt"
	"log"

	xennuma "repro"
)

func main() {
	opts := xennuma.Options{XenPlus: true, Scale: 64}
	def := xennuma.MustPolicy("round-1g")
	bestA := xennuma.MustPolicy("first-touch")        // cg.C's best (Table 4)
	bestB := xennuma.MustPolicy("round-4k/carrefour") // sp.C's best (Table 4)

	for _, mode := range []struct {
		name string
		m    xennuma.PairMode
	}{
		{"colocated (24 vCPUs each, split nodes)", xennuma.Colocated},
		{"consolidated (48 vCPUs each, 2 vCPUs per CPU)", xennuma.Consolidated},
	} {
		fmt.Printf("== %s ==\n", mode.name)
		a0, b0, err := xennuma.RunXenPair("cg.C", def, "sp.C", def, mode.m, false, opts)
		if err != nil {
			log.Fatal(err)
		}
		a1, b1, err := xennuma.RunXenPair("cg.C", bestA, "sp.C", bestB, mode.m, false, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cg.C: default %8v  best(first-touch)    %8v  → %+.0f%%\n",
			a0.Completion, a1.Completion,
			100*(float64(a0.Completion)/float64(a1.Completion)-1))
		fmt.Printf("  sp.C: default %8v  best(r4k/carrefour)  %8v  → %+.0f%%\n",
			b0.Completion, b1.Completion,
			100*(float64(b0.Completion)/float64(b1.Completion)-1))
	}
	fmt.Println("\nBecause the policy is selected per virtual machine, consolidated")
	fmt.Println("workloads with different access patterns each get the placement")
	fmt.Println("they need (§5.4.2).")
}
