// Carrefour trace: watch the dynamic policy's decision loop converge.
//
//	go run ./examples/carrefour-trace
//
// This example drives the Carrefour user component (§3.4, §4.3) directly
// against a synthetic master-slave placement: 4096 hot pages sit on node
// 0 and every node's threads hammer them, overloading node 0's memory
// controller. Each tick the controller interleaves hot pages away from
// the overloaded node; the trace shows controller utilization and the
// migration counts until the load is balanced — exactly the interleave
// heuristic the paper ports into Xen.
package main

import (
	"fmt"

	"repro/internal/carrefour"
	"repro/internal/numa"
	"repro/internal/sim"
)

// set is a trivial in-memory PageSet.
type set struct{ nodes []numa.NodeID }

func (s *set) Len() int                 { return len(s.nodes) }
func (s *set) NodeOf(i int) numa.NodeID { return s.nodes[i] }
func (s *set) Migrate(i int, to numa.NodeID) bool {
	if s.nodes[i] == to {
		return false
	}
	s.nodes[i] = to
	return true
}

func main() {
	const nodes = 8
	pages := &set{nodes: make([]numa.NodeID, 4096)} // all on node 0

	cfg := carrefour.DefaultConfig()
	cfg.BudgetPages = 1024 // migrate at most 1024 pages per interval
	ctl := carrefour.New(cfg)
	rng := sim.NewRand(1)

	accessors := make([]float64, nodes)
	for i := range accessors {
		accessors[i] = 1.0 / nodes // every node accesses the set
	}

	fmt.Println("tick  ctrl-util(node0..7)                          moved  note")
	for tick := 1; tick <= 8; tick++ {
		// Controller load follows the placement: each node's utilization
		// is proportional to the pages it hosts (plus a background 5%).
		util := make([]float64, nodes)
		for _, n := range pages.nodes {
			util[n] += 0.9 / float64(pages.Len())
		}
		for i := range util {
			util[i] += 0.05
		}

		res := ctl.Step(carrefour.Tick{
			CtrlUtil: util,
			Samples: []carrefour.Sample{{
				Set:         pages,
				AccessShare: 0.9,
				Accessors:   accessors,
				Hot:         true,
			}},
			Rand: rng,
		})

		note := ""
		if res.Migrated == 0 {
			note = "balanced — interleave heuristic idle"
		}
		fmt.Printf("%4d  [", tick)
		for i, u := range util {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%4.2f", u)
		}
		fmt.Printf("]  %5d  %s\n", res.Migrated, note)
		if res.Migrated == 0 {
			break
		}
	}
	fmt.Printf("\ncontroller totals: %d interleaved, %d locality moves over %d ticks\n",
		ctl.Interleaved, ctl.LocalityMoved, ctl.Ticks)
}
