// IOMMU conflict: demonstrate why first-touch and the PCI passthrough
// driver cannot coexist (§4.4.1 of the paper).
//
//	go run ./examples/iommu-conflict
//
// The first-touch policy invalidates the hypervisor page-table entries
// of freshly released pages so the next CPU access faults and places the
// page. The IOMMU translates device addresses through the same table —
// but a device cannot wait for software: an invalid entry aborts the
// DMA, and because the error is delivered asynchronously the guest OS
// has usually already failed the I/O by the time the hypervisor could
// react. This example reproduces the failure with a real DMA buffer, a
// page release, and an IOMMU walk.
package main

import (
	"fmt"
	"log"

	"repro/internal/guest"
	"repro/internal/iosim"
	"repro/internal/mem"
	"repro/internal/numa"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/xen"
)

func main() {
	topo := numa.AMD48Scaled(64)
	hv, err := xen.New(topo, sim.NewEngine(), xen.ScaledConfig(64), 32<<20)
	if err != nil {
		log.Fatal(err)
	}
	var pins []numa.CPUID
	for c := 0; c < 12; c++ {
		pins = append(pins, numa.CPUID(c))
	}
	dom, err := hv.CreateDomain(xen.DomainSpec{
		Name: "demo", VCPUs: 12, MemBytes: 64 << 20, PinCPUs: pins, Boot: policy.Round4K,
	})
	if err != nil {
		log.Fatal(err)
	}
	os := guest.NewOS(dom, 64, guest.DefaultQueueConfig())

	// A DMA buffer: eight pages allocated by the guest.
	var buf []mem.PFN
	for i := 0; i < 8; i++ {
		p, _, err := os.AllocPage()
		if err != nil {
			log.Fatal(err)
		}
		buf = append(buf, p)
	}
	var iommu iosim.IOMMU

	fmt.Println("round-4K policy: every entry is populated")
	fmt.Printf("  IOMMU walk over the buffer aborts: %v (faults: %d)\n",
		iommu.CheckFirstTouchConflict(dom.Table(), buf), iommu.Faults)

	// Switch to first-touch: the guest flushes its free list, and from
	// now on releases invalidate entries.
	if _, err := os.SetPolicy(policy.Config{Static: policy.FirstTouch}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nswitched to first-touch (free list flushed to the hypervisor)")
	fmt.Printf("  passthrough driver active: %v  ← force-disabled by the hypervisor\n", dom.Passthrough())

	// The guest recycles one buffer page (e.g. the allocator reused it);
	// the notification invalidates its entry.
	os.FreePage(buf[3])
	os.Queue.FlushAll() // the batch reaches the hypervisor
	fmt.Println("  guest released one buffer page → entry invalidated")
	fmt.Printf("  IOMMU walk over the buffer aborts: %v (faults: %d)\n",
		iommu.CheckFirstTouchConflict(dom.Table(), buf), iommu.Faults)

	// A CPU touch resolves the fault — but a device cannot fault.
	node, _ := dom.Touch(buf[3], 1, true)
	fmt.Printf("  CPU touch resolves it (page placed on node %d); the DMA had already failed\n", node)

	fmt.Println("\nThis is why the paper disables the IOMMU when evaluating")
	fmt.Println("first-touch, and why disk-heavy applications regress under it")
	fmt.Println("(Figure 7: dc.B, bfs, cc, pagerank, sssp, mongodb).")
}
