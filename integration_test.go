package xennuma

import (
	"testing"

	"repro/internal/numa"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xen"
)

// TestTLBExtensionEndToEnd: enabling the translation model slows a
// big-working-set application down, and large pages win most of it back
// (the paper's §7 projection).
func TestTLBExtensionEndToEnd(t *testing.T) {
	base := Options{Scale: 64, XenPlus: true}
	off, err := RunXen("mg.D", MustPolicy("first-touch"), base)
	if err != nil {
		t.Fatal(err)
	}
	withTLB := base
	withTLB.TLB = true
	small, err := RunXen("mg.D", MustPolicy("first-touch"), withTLB)
	if err != nil {
		t.Fatal(err)
	}
	if small.Completion <= off.Completion {
		t.Fatalf("TLB model free: %v vs %v", small.Completion, off.Completion)
	}
	withTLB.LargePages = true
	large, err := RunXen("mg.D", MustPolicy("first-touch"), withTLB)
	if err != nil {
		t.Fatal(err)
	}
	if large.Completion >= small.Completion {
		t.Fatalf("large pages did not help: %v vs %v", large.Completion, small.Completion)
	}
	// A small-footprint application is unaffected by any of it.
	s1, _ := RunXen("swaptions", MustPolicy("round-4k"), base)
	s2, _ := RunXen("swaptions", MustPolicy("round-4k"), withTLB)
	if s1.Completion != s2.Completion {
		t.Fatalf("TLB model affected an in-reach working set: %v vs %v", s1.Completion, s2.Completion)
	}
}

// TestReplicationExtensionEndToEnd: the gated heuristic helps a
// read-mostly hot-page application and never hurts determinism.
func TestReplicationExtensionEndToEnd(t *testing.T) {
	base := Options{Scale: 128, XenPlus: true}
	off, err := RunXen("streamcluster", MustPolicy("round-4k/carrefour"), base)
	if err != nil {
		t.Fatal(err)
	}
	on := base
	on.Replication = true
	rep, err := RunXen("streamcluster", MustPolicy("round-4k/carrefour"), on)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completion > off.Completion {
		t.Fatalf("replication hurt a read-mostly hot set: %v vs %v", rep.Completion, off.Completion)
	}
}

// TestHypervisorTraceIntegration: attaching a ring records the policy
// switch, the free-list flush hypercalls and first-touch faults.
func TestHypervisorTraceIntegration(t *testing.T) {
	topo := numa.AMD48Scaled(256)
	hv, err := xen.New(topo, sim.NewEngine(), xen.ScaledConfig(256), 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	hv.Trace = trace.NewRing(4096)
	var pins []numa.CPUID
	for c := 0; c < 8; c++ {
		pins = append(pins, numa.CPUID(c))
	}
	dom, err := hv.CreateDomain(xen.DomainSpec{
		Name: "traced", VCPUs: 8, MemBytes: 16 << 20, PinCPUs: pins,
		Boot: MustPolicy("round-4k").Static,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dom.HypercallSetPolicy(MustPolicy("first-touch")); err != nil {
		t.Fatal(err)
	}
	dom.HypercallPageQueue(nil)
	dom.InvalidatePage(77)
	dom.Touch(77, 2, true)
	if hv.Trace.Count(trace.KindPolicySwitch) != 1 {
		t.Fatalf("policy switches traced: %d", hv.Trace.Count(trace.KindPolicySwitch))
	}
	if hv.Trace.Count(trace.KindHypercall) == 0 {
		t.Fatal("no hypercalls traced")
	}
	if hv.Trace.Count(trace.KindFault) == 0 {
		t.Fatal("no faults traced")
	}
	faults := hv.Trace.Filter(trace.KindFault)
	last := faults[len(faults)-1]
	if last.Arg0 != 77 || last.Arg1 != 2 {
		t.Fatalf("fault event = %+v", last)
	}
}

// TestPairSwapSymmetry: colocated runs with swapped node halves must
// both complete, and the node assignment must actually change which
// half hosts which application (observable through the disk node's
// proximity for an I/O-free app the effect is small, so just check both
// runs work and give plausible, positive times).
func TestPairSwapSymmetry(t *testing.T) {
	o := Options{Scale: 128, XenPlus: true}
	a1, b1, err := RunXenPair("bodytrack", MustPolicy("round-4k"), "swaptions", MustPolicy("round-4k"),
		Colocated, false, o)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := RunXenPair("bodytrack", MustPolicy("round-4k"), "swaptions", MustPolicy("round-4k"),
		Colocated, true, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Result{a1, b1, a2, b2} {
		if r.Completion <= 0 || r.TimedOut {
			t.Fatalf("bad pair result: %+v", r)
		}
	}
}

// TestMCSMitigationEndToEnd reproduces §5.3.2: Xen+ improves facesim and
// streamcluster substantially through the lock replacement alone.
func TestMCSMitigationEndToEnd(t *testing.T) {
	for _, app := range []string{"facesim", "streamcluster"} {
		off, err := RunXen(app, MustPolicy("round-4k"), Options{Scale: 128})
		if err != nil {
			t.Fatal(err)
		}
		on, err := RunXen(app, MustPolicy("round-4k"), Options{Scale: 128, XenPlus: true})
		if err != nil {
			t.Fatal(err)
		}
		gain := float64(off.Completion)/float64(on.Completion) - 1
		if gain < 0.10 {
			t.Fatalf("%s: MCS gain = %.2f, want ≥ 0.10 (paper: 30-55%%)", app, gain)
		}
	}
}

// TestChurnVisibleUnderFirstTouch reproduces the §4.2.3 concern end to
// end: the Streamflow churner (wrmem) pays a visible but small cost for
// the notification path only when first-touch is active.
func TestChurnVisibleUnderFirstTouch(t *testing.T) {
	o := Options{Scale: 128, XenPlus: true}
	r4, err := RunXen("wrmem", MustPolicy("round-4k"), o)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := RunXen("wrmem", MustPolicy("first-touch"), o)
	if err != nil {
		t.Fatal(err)
	}
	// With batching the overhead must be bounded: first-touch may lose
	// on placement but not collapse.
	if float64(ft.Completion) > 2*float64(r4.Completion) {
		t.Fatalf("batched notification path collapsed wrmem: %v vs %v", ft.Completion, r4.Completion)
	}
}
